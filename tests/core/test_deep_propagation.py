"""Multi-level propagation: transitivity and mid-chain blocking.

The semantics matrix (test_semantics_matrix.py) pins two-level
behaviour exhaustively; these tests pin the *transitive* behaviour over
longer chains — propagation through intermediate unlabeled nodes and
overriding at arbitrary depths.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import EPSILON
from repro.core.labeling import TreeLabeler
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.traversal import node_path

URI = "d.xml"
DTD_URI = "d.dtd"

# A 6-level chain: n1/n2/n3/n4/n5/n6.
CHAIN = "<n1><n2><n3><n4><n5><n6/></n5></n4></n3></n2></n1>"


def auth(path, sign, auth_type, schema=False):
    uri = DTD_URI if schema else URI
    return Authorization.build(("Public", "*", "*"), f"{uri}:{path}", sign, auth_type)


def finals(*auths):
    document = parse_document(CHAIN, uri=URI)
    instance = [a for a in auths if a.object.uri == URI]
    schema = [a for a in auths if a.object.uri == DTD_URI]
    labels = TreeLabeler(document, instance, schema, SubjectHierarchy()).run().labels
    return {
        node_path(node).rsplit("/", 1)[-1]: label.final
        for node, label in labels.items()
    }


class TestTransitivePropagation:
    def test_recursive_reaches_every_level(self):
        signs = finals(auth("//n1", "+", "R"))
        for level in range(1, 7):
            assert signs[f"n{level}"] == "+"

    def test_schema_recursive_reaches_every_level(self):
        signs = finals(auth("//n1", "-", "R", schema=True))
        for level in range(1, 7):
            assert signs[f"n{level}"] == "-"

    def test_override_resumes_below(self):
        signs = finals(
            auth("//n1", "+", "R"),
            auth("//n3", "-", "R"),
            auth("//n5", "+", "R"),
        )
        assert signs["n1"] == signs["n2"] == "+"
        assert signs["n3"] == signs["n4"] == "-"
        assert signs["n5"] == signs["n6"] == "+"

    def test_local_never_travels(self):
        signs = finals(auth("//n2", "+", "L"))
        assert signs["n2"] == "+"
        for level in (1, 3, 4, 5, 6):
            assert signs[f"n{level}"] == EPSILON

    def test_weak_blocks_strong_for_entire_subtree(self):
        # n3's weak grant blocks n1's strong R for n3 AND everything
        # below (the pair propagates from n3 downward).
        signs = finals(
            auth("//n1", "-", "R"),
            auth("//n3", "+", "RW"),
        )
        assert signs["n2"] == "-"
        assert signs["n3"] == signs["n4"] == signs["n5"] == signs["n6"] == "+"

    def test_weak_block_then_schema_denial_below(self):
        signs = finals(
            auth("//n1", "+", "R"),
            auth("//n3", "+", "RW"),
            auth("//n5", "-", "R", schema=True),
        )
        # n1..n2: strong +. n3..n4: weak + (blocked the strong).
        # n5..n6: the schema denial wins over the weak, and propagates.
        assert signs["n2"] == "+"
        assert signs["n3"] == signs["n4"] == "+"
        assert signs["n5"] == signs["n6"] == "-"

    def test_strong_grant_resumes_below_schema_denial(self):
        signs = finals(
            auth("//n3", "+", "RW"),
            auth("//n4", "-", "R", schema=True),
            auth("//n5", "+", "R"),
        )
        assert signs["n4"] == "-"
        assert signs["n5"] == signs["n6"] == "+"

    def test_interleaved_schema_and_instance_chains(self):
        signs = finals(
            auth("//n1", "+", "R", schema=True),   # RD+ everywhere
            auth("//n2", "-", "RW"),               # weak instance denial
            auth("//n4", "+", "L"),                # local island
        )
        assert signs["n1"] == "+"                  # RD+
        # n2: RW- is behind RD+ in priority -> schema wins.
        assert signs["n2"] == "+"
        assert signs["n3"] == "+"
        assert signs["n4"] == "+"
        assert signs["n5"] == "+"

    def test_instance_weak_alone_propagates_unhindered(self):
        signs = finals(auth("//n2", "+", "RW"))
        assert signs["n1"] == EPSILON
        for level in range(2, 7):
            assert signs[f"n{level}"] == "+"
