"""Exhaustive two-level semantics matrix.

An independent, minimal executable spec of the propagation rules
(written from the paper's prose, not from the implementation) is
compared against the real labeler for *every* combination of one
authorization on a parent element and one on its child — 6 slots x 2
signs on each side = 144 element cases, plus the parent x attribute
matrix. If the implementation and this spec ever disagree, one of them
misreads the paper.

Slot vocabulary: L/R/LW/RW are instance-level authorization types;
LD/RD stand for Local/Recursive specified at the schema (DTD) level.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.core.labeling import TreeLabeler
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document

URI = "d.xml"
DTD_URI = "d.dtd"
EPS = "ε"

SLOTS = ("L", "R", "LD", "RD", "LW", "RW")
SIGNS = ("+", "-")

# slot -> (attach to schema XACL?, authorization type string)
_SLOT_TO_AUTH = {
    "L": (False, "L"),
    "R": (False, "R"),
    "LW": (False, "LW"),
    "RW": (False, "RW"),
    "LD": (True, "L"),
    "RD": (True, "R"),
}


def first_def(*signs):
    for sign in signs:
        if sign != EPS:
            return sign
    return EPS


def spec_child_final(p_slot, p_sign, c_slot, c_sign):
    """The paper's rules for a child element, restated minimally.

    1. initial label: the child's own slot carries its sign.
    2. the recursive pair (R, RW) propagates from the parent only when
       the child has neither (paired blocking, Section 6.1 prose).
    3. RD propagates independently when the child has none.
    4. L/LD/LW never propagate to sub-elements.
    5. final = first_def(L, R, LD, RD, LW, RW).
    """
    label = {slot: EPS for slot in SLOTS}
    label[c_slot] = c_sign
    if label["R"] == EPS and label["RW"] == EPS:
        if p_slot == "R":
            label["R"] = p_sign
        if p_slot == "RW":
            label["RW"] = p_sign
    if label["RD"] == EPS and p_slot == "RD":
        label["RD"] = p_sign
    return first_def(*(label[slot] for slot in SLOTS))


def spec_parent_final(p_slot, p_sign):
    """The root element: its own slot wins by first_def ordering."""
    label = {slot: EPS for slot in SLOTS}
    label[p_slot] = p_sign
    return first_def(*(label[slot] for slot in SLOTS))


def spec_attribute_final(p_slot, p_sign, a_slot, a_sign):
    """The attribute rule (DESIGN.md decision 2).

    On attributes, recursive slots degrade to local (terminal nodes), so
    a_slot ranges over L/LD/LW only. The parent contributes instance
    signs (L then R), schema signs (LD then RD) and weak signs (LW then
    RW); the attribute's own weak authorization blocks parent *instance*
    propagation but yields to schema.
    """
    own = {"L": EPS, "LD": EPS, "LW": EPS}
    own[a_slot] = a_sign
    parent = {slot: EPS for slot in SLOTS}
    parent[p_slot] = p_sign
    ld_eff = first_def(own["LD"], parent["LD"], parent["RD"])
    lw_eff = first_def(own["LW"], parent["LW"], parent["RW"])
    if own["LW"] != EPS:
        return first_def(own["L"], ld_eff, own["LW"])
    return first_def(own["L"], parent["L"], parent["R"], ld_eff, lw_eff)


def run_labeler(parent_auth, child_path, child_auth):
    document = parse_document('<p k="v"><c/></p>', uri=URI)
    instance, schema = [], []
    for (path, slot, sign) in (("//p", *parent_auth), (child_path, *child_auth)):
        if slot is None:
            continue
        is_schema, auth_type = _SLOT_TO_AUTH[slot]
        uri = DTD_URI if is_schema else URI
        target = (schema if is_schema else instance)
        target.append(
            Authorization.build(("Public", "*", "*"), f"{uri}:{path}", sign, auth_type)
        )
    labels = TreeLabeler(document, instance, schema, SubjectHierarchy()).run().labels
    p = document.root
    c = next(p.child_elements())
    k = p.attribute_node("k")
    return labels[p].final, labels[c].final, labels[k].final


ELEMENT_CASES = [
    (p_slot, p_sign, c_slot, c_sign)
    for p_slot in SLOTS
    for p_sign in SIGNS
    for c_slot in SLOTS
    for c_sign in SIGNS
]


@pytest.mark.parametrize("p_slot,p_sign,c_slot,c_sign", ELEMENT_CASES)
def test_child_element_final(p_slot, p_sign, c_slot, c_sign):
    _, child_final, _ = run_labeler((p_slot, p_sign), "//c", (c_slot, c_sign))
    assert child_final == spec_child_final(p_slot, p_sign, c_slot, c_sign), (
        f"parent {p_slot}{p_sign}, child {c_slot}{c_sign}"
    )


@pytest.mark.parametrize("p_slot", SLOTS)
@pytest.mark.parametrize("p_sign", SIGNS)
def test_parent_final(p_slot, p_sign):
    parent_final, _, _ = run_labeler((p_slot, p_sign), "//c", (None, None))
    assert parent_final == spec_parent_final(p_slot, p_sign)


ATTR_CASES = [
    (p_slot, p_sign, a_slot, a_sign)
    for p_slot in SLOTS
    for p_sign in SIGNS
    for a_slot in ("L", "LD", "LW")
    for a_sign in SIGNS
]


@pytest.mark.parametrize("p_slot,p_sign,a_slot,a_sign", ATTR_CASES)
def test_attribute_final(p_slot, p_sign, a_slot, a_sign):
    _, __, attr_final = run_labeler((p_slot, p_sign), "//p/@k", (a_slot, a_sign))
    assert attr_final == spec_attribute_final(p_slot, p_sign, a_slot, a_sign), (
        f"parent {p_slot}{p_sign}, attribute {a_slot}{a_sign}"
    )


@pytest.mark.parametrize("slot", ("R", "RW", "RD"))
@pytest.mark.parametrize("sign", SIGNS)
def test_recursive_auth_on_attribute_degrades_to_local(slot, sign):
    """An R/RW authorization naming an attribute behaves as its local
    counterpart (attributes are terminal — Section 6.1)."""
    local = {"R": "L", "RW": "LW", "RD": "LD"}[slot]
    _, __, via_recursive = run_labeler((None, None), "//p/@k", (slot, sign))
    _, __, via_local = run_labeler((None, None), "//p/@k", (local, sign))
    assert via_recursive == via_local == sign
