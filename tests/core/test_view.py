"""Tests for compute_view orchestration (store selection, knobs, stats)."""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.store import AuthorizationStore
from repro.core.view import compute_view, compute_view_from_auths
from repro.subjects.hierarchy import Requester
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

URI = "http://x/d.xml"
DTD_URI = "http://x/d.dtd"

DOC = "<a name='r'><pub>open</pub><sec>hidden</sec></a>"


@pytest.fixture
def store():
    s = AuthorizationStore()
    directory = s.hierarchy.directory
    directory.add_group("Staff")
    directory.add_user("alice", groups=["Staff"])
    directory.add_user("bob")
    s.add(Authorization.build("Public", f"{URI}://pub", "+", "R"))
    s.add(Authorization.build("Staff", f"{URI}://sec", "+", "R"))
    s.add(Authorization.build("Public", f"{DTD_URI}://a", "-", "L"))
    return s


def doc():
    document = parse_document(DOC, uri=URI)
    return document


class TestComputeView:
    def test_requester_selection(self, store):
        alice = Requester("alice", "1.1.1.1", "a.x.org")
        bob = Requester("bob", "1.1.1.2", "b.x.org")
        alice_view = compute_view(doc(), alice, store, dtd_uri=DTD_URI)
        bob_view = compute_view(doc(), bob, store, dtd_uri=DTD_URI)
        assert "<sec>" in serialize(alice_view.document)
        assert "<sec>" not in serialize(bob_view.document)
        assert "<pub>" in serialize(bob_view.document)

    def test_schema_auths_selected_by_dtd_uri(self, store):
        alice = Requester("alice", "1.1.1.1", "a.x.org")
        with_dtd = compute_view(doc(), alice, store, dtd_uri=DTD_URI)
        assert len(with_dtd.schema_auths) == 1
        without = compute_view(doc(), alice, store)
        assert without.schema_auths == []

    def test_dtd_uri_from_system_id(self, store):
        document = doc()
        document.system_id = DTD_URI
        alice = Requester("alice", "1.1.1.1", "a.x.org")
        result = compute_view(document, alice, store)
        assert len(result.schema_auths) == 1

    def test_dtd_uri_from_attached_dtd(self, store):
        from repro.dtd.parser import parse_dtd

        document = doc()
        document.dtd = parse_dtd("<!ELEMENT a ANY>", uri=DTD_URI)
        alice = Requester("alice", "1.1.1.1", "a.x.org")
        result = compute_view(document, alice, store)
        assert len(result.schema_auths) == 1

    def test_stats(self, store):
        alice = Requester("alice", "1.1.1.1", "a.x.org")
        result = compute_view(doc(), alice, store)
        assert result.total_nodes == 6  # a, @name, pub, text, sec, text
        assert result.visible_nodes < result.total_nodes
        assert result.hidden_nodes == result.total_nodes - result.visible_nodes
        assert "visible" in result.summary()

    def test_empty_flag(self, store):
        stranger = Requester("ghost", "1.1.1.1", "a.x.org")
        empty_store = AuthorizationStore()
        result = compute_view(doc(), stranger, empty_store)
        assert result.empty

    def test_action_filtering(self, store):
        store.add(
            Authorization.build("Public", f"{URI}://a", "+", "R", action="write")
        )
        anonymous = Requester()
        read_view = compute_view(doc(), anonymous, store)
        assert "<sec>" not in serialize(read_view.document)
        write_view = compute_view(doc(), anonymous, store, action="write")
        assert "<sec>" in serialize(write_view.document)


class TestComputeViewFromAuths:
    def test_without_hierarchy(self):
        result = compute_view_from_auths(
            doc(),
            [Authorization.build("Public", f"{URI}://pub", "+", "R")],
            [],
        )
        assert "<pub>" in serialize(result.document)

    def test_open_policy(self):
        result = compute_view_from_auths(
            doc(),
            [Authorization.build("Public", f"{URI}://sec", "-", "R")],
            [],
            open_policy=True,
        )
        text = serialize(result.document)
        assert "<pub>" in text
        assert "<sec>" not in text

    def test_closed_policy_default(self):
        result = compute_view_from_auths(
            doc(),
            [Authorization.build("Public", f"{URI}://sec", "-", "R")],
            [],
        )
        assert result.empty

    def test_relative_mode_passthrough(self):
        auths = [Authorization.build("Public", f"{URI}:pub", "+", "R")]
        anchored = compute_view_from_auths(doc(), auths, [])
        assert not anchored.empty
        # Fresh authorization: compiled paths are cached per relative mode.
        auths2 = [Authorization.build("Public", f"{URI}:pub", "+", "R")]
        strict = compute_view_from_auths(doc(), auths2, [], relative_mode="root")
        assert strict.empty
