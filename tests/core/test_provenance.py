"""Differential tests for the provenance recorder and explain engine.

The acceptance bar: re-deriving visibility from an :class:`Explanation`
alone must reproduce ``LabelingResult.final`` for 100 % of nodes, under
all four conflict policies, over generated corpora — and every non-ε
final must name the winning authorizations (or its propagation source).
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import (
    EPSILON,
    DenialsTakePrecedence,
    MajorityTakesPrecedence,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
)
from repro.core.explain import Explanation, explain_from_auths, explain_view
from repro.core.labeling import ProvenanceRecorder, TreeLabeler
from repro.core.view import compute_view_from_auths
from repro.workloads.generator import build_workload
from repro.workloads.scenarios import lab_scenario
from repro.xml.parser import parse_document
from repro.xpath.evaluator import select

ALL_POLICIES = [
    DenialsTakePrecedence,
    PermissionsTakePrecedence,
    NothingTakesPrecedence,
    MajorityTakesPrecedence,
]


def _assert_rederivation_matches(workload, policy):
    plain = TreeLabeler(
        workload.document,
        workload.instance_auths,
        workload.schema_auths,
        workload.store.hierarchy,
        policy=policy,
    ).run()
    explanation = explain_from_auths(
        workload.document,
        workload.instance_auths,
        workload.schema_auths,
        workload.store.hierarchy,
        policy=policy,
    )
    assert len(explanation) == len(plain.labels)
    mismatches = [
        explanation[node].path
        for node in plain.labels
        if explanation.rederive_final(node) != plain.labels[node].final
    ]
    assert mismatches == []
    # The recorded final agrees with the labeler too (sanity on the
    # assembly itself, not just the re-derivation formula).
    assert all(
        explanation[node].final == plain.labels[node].final
        for node in plain.labels
    )
    return explanation, plain


class TestDifferentialRederivation:
    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_generated_corpus_all_policies(self, policy_cls, seed):
        workload = build_workload(nodes=400, auth_count=24, seed=seed)
        _assert_rederivation_matches(workload, policy_cls())

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_lab_scenario_all_policies(self, policy_cls):
        s = lab_scenario()

        class _W:
            document = s.document
            instance_auths = s.store.applicable(s.tom, s.document.uri, "read")
            schema_auths = s.store.applicable(
                s.tom, s.document.system_id or "", "read"
            )
            store = s.store

        _assert_rederivation_matches(_W, policy_cls())

    @pytest.mark.parametrize("open_policy", [False, True])
    def test_in_view_matches_pruned_view_counts(self, open_policy):
        workload = build_workload(nodes=350, auth_count=20, seed=3)
        view = compute_view_from_auths(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
            open_policy=open_policy,
        )
        explanation = explain_from_auths(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
            open_policy=open_policy,
        )
        assert explanation.visible_nodes == view.visible_nodes

    def test_every_decided_node_names_its_source(self):
        workload = build_workload(nodes=400, auth_count=24, seed=11)
        explanation = explain_from_auths(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
        )
        for node in explanation:
            ne = explanation[node]
            if ne.final == EPSILON:
                continue
            assert ne.source_path is not None, ne.path
            assert ne.source_slot is not None, ne.path
            assert ne.winning, f"{ne.path} has no winning authorization"


class TestRecorderSemantics:
    URI = "d.xml"

    def _explain(self, xml, *auths, requester=None, hierarchy=None):
        from repro.authz.store import AuthorizationStore
        from repro.subjects.hierarchy import Requester

        document = parse_document(xml, uri=self.URI)
        store = AuthorizationStore(hierarchy) if hierarchy else None
        if store is None:
            from repro.authz.store import AuthorizationStore as _S

            store = _S()
        store.add_all(auths)
        return document, explain_view(
            document, requester or Requester(), store
        )

    def test_recursive_blocking_recorded(self):
        document, report = self._explain(
            "<a><b/></a>",
            Authorization.build("Public", f"{self.URI}://a", "-", "R"),
            Authorization.build("Public", f"{self.URI}://b", "+", "RW"),
        )
        b = select("//b", document)[0]
        ne = report[b]
        assert ne.final == "+"
        assert ne.blocked == ("R",)
        assert "blocked the parent's recursive sign" in ne.describe()

    def test_weak_override_flagged(self):
        document, report = self._explain(
            "<a><b/></a>",
            Authorization.build("Public", f"{self.URI}://b", "+", "RW"),
            Authorization.build("Public", f"{self.URI}://b", "-", "L"),
        )
        b = select("//b", document)[0]
        ne = report[b]
        assert ne.final == "-"
        assert ne.weak_overridden
        assert ne.source_slot == "L"

    def test_exact_propagation_source_deep_chain(self):
        document, report = self._explain(
            "<a><b><c><d/></c></b></a>",
            Authorization.build("Public", f"{self.URI}://a", "+", "R"),
            Authorization.build("Public", f"{self.URI}://c", "-", "R"),
        )
        b, c, d = (select(f"//{name}", document)[0] for name in "bcd")
        # b inherits from a; d inherits from c (not a — the override cuts
        # the chain, exactly).
        b_origin = next(o for o in report[b].origins if o.slot == "R")
        assert b_origin.inherited_from.name == "a"
        d_origin = next(o for o in report[d].origins if o.slot == "R")
        assert d_origin.inherited_from.name == "c"
        assert report[d].final == "-"
        assert report[d].source_path.endswith("/c")

    def test_attribute_parent_instance_source(self):
        document, report = self._explain(
            '<a k="v"><b/></a>',
            Authorization.build("Public", f"{self.URI}://a", "+", "L"),
        )
        attr = select("//a/@k", document)[0]
        ne = report[attr]
        assert ne.final == "+"
        assert ne.node_kind == "attribute"
        assert ne.parent_instance_sign == "+"
        assert ne.source_path == "/a"
        assert ne.source_slot == "L"
        assert ne.winning  # names the parent's authorization
        assert report.rederive_final(attr) == "+"

    def test_value_nodes_follow_parent(self):
        document, report = self._explain(
            "<a><b>text</b></a>",
            Authorization.build("Public", f"{self.URI}://b", "+", "R"),
        )
        b = select("//b", document)[0]
        text = b.children[0]
        assert report[text].final == "+"
        assert report[text].node_kind == "value"
        assert report.rederive_final(text) == "+"
        assert report[text].source_path == report[b].source_path

    def test_conflict_candidates_and_verdict_recorded(self):
        recorder = ProvenanceRecorder()
        document = parse_document("<a><b/></a>", uri=self.URI)
        plus = Authorization.build("Public", f"{self.URI}://b", "+", "R")
        minus = Authorization.build("Public", f"{self.URI}://b", "-", "R")
        from repro.authz.store import AuthorizationStore

        store = AuthorizationStore()
        store.add_all([plus, minus])
        TreeLabeler(
            document,
            [plus, minus],
            [],
            store.hierarchy,
            policy=NothingTakesPrecedence(),
            recorder=recorder,
        ).run()
        b = select("//b", document)[0]
        decision = recorder.decisions[b]["R"]
        assert decision.sign == EPSILON  # the conflict dissolved
        assert len(decision.candidates) == 2
        assert plus in decision.candidates and minus in decision.candidates
        assert recorder.final_origin[b] is None
        from repro.xml.traversal import preorder

        assert recorder.nodes_recorded == len(list(preorder(document.root)))

    def test_disabled_recorder_records_nothing(self):
        document = parse_document("<a><b/></a>", uri=self.URI)
        from repro.authz.store import AuthorizationStore

        store = AuthorizationStore()
        labeler = TreeLabeler(document, [], [], store.hierarchy)
        labeler.run()
        assert labeler._recorder is None


class TestExplanationRendering:
    def test_as_dict_and_json_round_trip(self):
        import json

        workload = build_workload(nodes=120, auth_count=10, seed=4)
        explanation = explain_from_auths(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
            uri="w.xml",
            requester="someone",
        )
        data = json.loads(explanation.to_json())
        assert data["uri"] == "w.xml"
        assert data["total_nodes"] == len(explanation)
        assert len(data["nodes"]) == len(explanation)
        assert data["visible_nodes"] == explanation.visible_nodes

    def test_describe_targets_subset(self):
        s = lab_scenario()
        explanation = explain_view(s.document, s.tom, s.store)
        node = select("/laboratory/project[1]/paper[1]", s.document)[0]
        explanation.targets = [node]
        text = explanation.describe()
        assert "explanation for" in text
        assert explanation[node].path in text
        assert len(explanation.target_explanations) == 1
