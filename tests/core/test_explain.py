"""Tests for the decision-explanation facility."""

import pytest

from repro.authz.authorization import Authorization
from repro.core.explain import TracingLabeler, explain, explain_view
from repro.errors import ReproError
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.workloads.scenarios import lab_scenario
from repro.xml.parser import parse_document
from repro.xpath.evaluator import select


@pytest.fixture
def lab_setup():
    return lab_scenario()


class TestPaperScenarioExplanations:
    def test_private_paper_denied_by_schema_auth(self, lab_setup):
        s = lab_setup
        e = explain(s.document, "/laboratory/project[1]/paper[1]", s.tom, s.store)
        assert e.final == "-"
        assert e.deciding_slot == "RD"
        deciding = next(o for o in e.origins if o.slot == "RD")
        assert deciding.kind == "direct"
        assert any("Foreign" in a.unparse() for a in deciding.winners)
        assert not e.in_view
        assert "Foreign" in e.describe()

    def test_flname_inherited_from_manager(self, lab_setup):
        s = lab_setup
        e = explain(
            s.document, "/laboratory/project[1]/manager/flname", s.tom, s.store
        )
        assert e.final == "+"
        assert e.deciding_slot == "RW"
        deciding = next(o for o in e.origins if o.slot == "RW")
        assert deciding.kind == "inherited"
        assert deciding.inherited_from is not None
        assert e.in_view

    def test_structural_survivor_flagged(self, lab_setup):
        s = lab_setup
        e = explain(s.document, "/laboratory/project[1]", s.tom, s.store)
        assert e.final == "ε"
        assert e.deciding_slot is None
        assert e.in_view
        assert e.structural_only
        assert "bare tag" in e.describe()

    def test_fully_hidden_node(self, lab_setup):
        s = lab_setup
        e = explain(s.document, "/laboratory/project[2]/manager", s.tom, s.store)
        assert not e.in_view
        assert "not in view" in e.describe()

    def test_attribute_inheritance_explained(self, lab_setup):
        s = lab_setup
        e = explain(
            s.document, "/laboratory/project[1]/paper[2]/@category", s.tom, s.store
        )
        assert e.final == "+"
        assert e.in_view


class TestExplainApi:
    URI = "d.xml"

    def store_with(self, *auths):
        from repro.authz.store import AuthorizationStore

        store = AuthorizationStore()
        store.add_all(auths)
        return store

    def test_ambiguous_path_rejected(self, lab_setup):
        s = lab_setup
        with pytest.raises(ReproError, match="exactly one node"):
            explain(s.document, "//paper", s.tom, s.store)

    def test_no_match_rejected(self, lab_setup):
        s = lab_setup
        with pytest.raises(ReproError, match="exactly one node"):
            explain(s.document, "//nosuch", s.tom, s.store)

    def test_node_object_accepted(self, lab_setup):
        s = lab_setup
        node = select("//fund", s.document)[0]
        e = explain(s.document, node, s.tom, s.store)
        assert e.path.endswith("/fund")

    def test_foreign_node_rejected(self, lab_setup):
        s = lab_setup
        other = parse_document("<x/>").root
        with pytest.raises(ReproError, match="does not belong"):
            explain(s.document, other, s.tom, s.store)

    def test_explain_view_covers_every_node(self, lab_setup):
        s = lab_setup
        from repro.xml.traversal import preorder

        report = explain_view(s.document, s.tom, s.store)
        assert set(report) == set(preorder(s.document.root))

    def test_overridden_subjects_reported(self):
        document = parse_document("<a><b/></a>", uri=self.URI)
        hierarchy = SubjectHierarchy()
        hierarchy.directory.add_group("CS")
        hierarchy.directory.add_group("Grad", parents=["CS"])
        from repro.authz.store import AuthorizationStore

        store = AuthorizationStore(hierarchy)
        loser = Authorization.build(("CS", "*", "*"), f"{self.URI}://b", "-", "R")
        winner = Authorization.build(("Grad", "*", "*"), f"{self.URI}://b", "+", "R")
        store.add_all([loser, winner])
        requester = Requester("anonymous")
        # Build explanations directly from auth lists (requester-agnostic).
        report = explain_view(document, requester, store)
        # anonymous matches neither CS nor Grad: nothing applies.
        b = select("//b", document)[0]
        assert report[b].final == "ε"

        hierarchy.directory.add_user("gina", groups=["Grad"])
        gina = Requester("gina", "1.1.1.1", "g.x")
        report = explain_view(document, gina, store)
        origin = next(o for o in report[b].origins if o.slot == "R")
        assert origin.winners == [winner]
        assert origin.overridden == [loser]
        assert report[b].final == "+"

    def test_open_policy_reflected_in_view_membership(self):
        document = parse_document("<a><b/></a>", uri=self.URI)
        store = self.store_with()
        report = explain_view(document, Requester(), store, open_policy=True)
        b = select("//b", document)[0]
        assert report[b].final == "ε"
        assert report[b].in_view  # ε = permit under the open policy

    def test_deep_propagation_source(self):
        document = parse_document("<a><b><c><d/></c></b></a>", uri=self.URI)
        store = self.store_with(
            Authorization.build("Public", f"{self.URI}://a", "+", "R")
        )
        report = explain_view(document, Requester(), store)
        d = select("//d", document)[0]
        origin = next(o for o in report[d].origins if o.slot == "R")
        assert origin.kind == "inherited"
        assert origin.inherited_from.name == "a"


class TestTracingMatchesPlainLabeler:
    def test_same_finals_on_workload(self):
        from repro.core.labeling import TreeLabeler
        from repro.workloads.generator import build_workload

        workload = build_workload(nodes=300, auth_count=16, seed=5)
        plain = TreeLabeler(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
        ).run()
        traced = TracingLabeler(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
        ).run()
        for node in plain.labels:
            assert plain.labels[node].final == traced.labels[node].final
