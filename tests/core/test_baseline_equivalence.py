"""The naive baseline must agree with the propagation algorithm.

This is the central cross-validation of the reproduction: two
independent implementations of the paper's semantics (single preorder
pass vs per-node ancestor walks) must produce identical labels and
views on hand-written corner cases and on synthetic workloads.
"""

import pytest

from repro.core.baseline import NaiveLabeler, compute_view_naive
from repro.core.labeling import TreeLabeler
from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.serializer import element_signature
from repro.xml.traversal import node_path
from repro.authz.authorization import Authorization
from repro.workloads.generator import build_workload, synthetic_authorizations, synthetic_document

URI = "d.xml"
DTD_URI = "d.dtd"

DOC = """\
<lab name="CSlab">
  <project type="public" name="P1">
    <manager><flname>Ann</flname></manager>
    <paper cat="private"><title>S</title></paper>
    <paper cat="public"><title>O</title></paper>
  </project>
  <project type="internal" name="P2"><manager><flname>Bob</flname></manager></project>
</lab>
"""


def auth(obj, sign, auth_type):
    return Authorization.build(("Public", "*", "*"), obj, sign, auth_type)


def assert_equivalent(document, instance, schema):
    hierarchy = SubjectHierarchy()
    fast = TreeLabeler(document, instance, schema, hierarchy).run()
    naive = NaiveLabeler(document, instance, schema, hierarchy).run()
    assert set(fast.labels) == set(naive.labels)
    for node in fast.labels:
        assert fast.labels[node].final == naive.labels[node].final, (
            f"disagreement at {node_path(node)}: "
            f"fast={fast.labels[node]} naive={naive.labels[node]}"
        )


CASES = [
    [],
    [("//manager", "+", "R")],
    [("//project", "+", "R"), ("//paper[./@cat='private']", "-", "R")],
    [("//lab", "-", "R"), ("//flname", "+", "R")],
    [("//project", "+", "L")],
    [("//project", "-", "R"), ("//paper", "+", "RW")],
    [("//project", "+", "R"), ("//paper", "+", "RW")],
    [("//lab", "+", "RW"), ("//paper", "-", "LW")],
    [("//project/@name", "+", "L"), ("//project", "-", "R")],
    [("//project/@name", "+", "LW"), ("//project", "-", "R")],
    [("//lab", "+", "R"), ("//manager", "-", "L"), ("//flname", "+", "R")],
]

SCHEMA_CASES = [
    ([], [("//paper[./@cat='private']", "-", "R")]),
    ([("//paper", "+", "RW")], [("//paper[./@cat='private']", "-", "R")]),
    ([("//project", "+", "R")], [("//manager", "-", "L")]),
    ([("//project", "-", "RW")], [("//project", "+", "R")]),
    (
        [("//project", "+", "R"), ("//paper", "+", "RW")],
        [("//paper[./@cat='private']", "-", "R")],
    ),
]


class TestHandWrittenCases:
    @pytest.mark.parametrize("case", CASES)
    def test_instance_only(self, case):
        document = parse_document(DOC, uri=URI)
        instance = [auth(f"{URI}:{p}", s, t) for p, s, t in case]
        assert_equivalent(document, instance, [])

    @pytest.mark.parametrize("case", SCHEMA_CASES)
    def test_with_schema(self, case):
        document = parse_document(DOC, uri=URI)
        instance = [auth(f"{URI}:{p}", s, t) for p, s, t in case[0]]
        schema = [auth(f"{DTD_URI}:{p}", s, t) for p, s, t in case[1]]
        assert_equivalent(document, instance, schema)


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_equivalence(self, seed):
        document = synthetic_document(300, seed=seed)
        instance, schema = synthetic_authorizations(
            document,
            16,
            seed=seed,
            dtd_uri=DTD_URI,
            schema_share=0.3,
        )
        assert_equivalent(document, instance, schema)

    def test_views_identical_on_workload(self):
        workload = build_workload(nodes=400, auth_count=24, seed=3)
        fast = compute_view_from_auths(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
        )
        naive = compute_view_naive(
            workload.document,
            workload.instance_auths,
            workload.schema_auths,
            workload.store.hierarchy,
        )
        assert element_signature(fast.document.root) == element_signature(
            naive.document.root
        )
        assert fast.visible_nodes == naive.visible_nodes
