"""Tests for the four-step security processor (paper, Section 7)."""

import pytest

from repro.authz.authorization import Authorization
from repro.core.processor import SecurityProcessor
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.errors import ValidationError, XMLSyntaxError
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document

URI = "http://x/d.xml"

XML_TEXT = """\
<!DOCTYPE lab [
<!ELEMENT lab (item+)>
<!ATTLIST lab name CDATA #REQUIRED>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item kind (pub|sec) #REQUIRED>
]>
<lab name="L"><item kind="pub">open</item><item kind="sec">hidden</item></lab>
"""


def auth(obj, sign, auth_type):
    return Authorization.build(("Public", "*", "*"), obj, sign, auth_type)


class TestPipeline:
    def test_full_cycle(self):
        processor = SecurityProcessor()
        output = processor.process_text(
            XML_TEXT,
            [auth(f"{URI}://item[./@kind='pub']", "+", "R")],
            [],
            uri=URI,
        )
        assert "open" in output.xml_text
        assert "hidden" not in output.xml_text
        assert output.view.visible_nodes > 0

    def test_output_reparses(self):
        processor = SecurityProcessor()
        output = processor.process_text(
            XML_TEXT, [auth(f"{URI}://lab", "+", "R")], [], uri=URI
        )
        document = parse_document(output.xml_text)
        assert document.root.name == "lab"

    def test_view_valid_against_loosened_dtd(self):
        processor = SecurityProcessor()
        output = processor.process_text(
            XML_TEXT,
            [auth(f"{URI}://item[./@kind='pub']", "+", "R")],
            [],
            uri=URI,
        )
        assert output.loosened_dtd is not None
        view_document = parse_document(output.xml_text)
        report = validate(view_document, output.loosened_dtd)
        assert report.valid, report.violations

    def test_loosened_dtd_text_emitted(self):
        processor = SecurityProcessor()
        output = processor.process_text(
            XML_TEXT, [auth(f"{URI}://lab", "+", "R")], [], uri=URI
        )
        assert "<!ELEMENT lab (item*)" in output.loosened_dtd_text
        assert "#IMPLIED" in output.loosened_dtd_text

    def test_timings_populated(self):
        processor = SecurityProcessor()
        output = processor.process_text(
            XML_TEXT, [auth(f"{URI}://lab", "+", "R")], [], uri=URI
        )
        timings = output.timings.as_dict()
        assert timings["parse"] > 0
        assert timings["label"] > 0
        assert timings["transform"] >= 0
        assert timings["unparse"] >= 0
        assert timings["total"] == pytest.approx(
            timings["parse"] + timings["label"] + timings["transform"] + timings["unparse"]
        )

    def test_malformed_input_rejected_at_parse_step(self):
        processor = SecurityProcessor()
        with pytest.raises(XMLSyntaxError):
            processor.process_text("<broken", [], [], uri=URI)

    def test_validating_processor_rejects_invalid(self):
        processor = SecurityProcessor(validate_input=True)
        invalid = XML_TEXT.replace('kind="sec"', 'kind="nope"')
        with pytest.raises(ValidationError):
            processor.process_text(invalid, [], [], uri=URI)

    def test_external_dtd_attachment(self):
        processor = SecurityProcessor()
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        output = processor.process_text(
            "<a/>", [auth(f"{URI}://a", "+", "R")], [], uri=URI, dtd=dtd
        )
        assert output.loosened_dtd is not None

    def test_empty_view_output(self):
        processor = SecurityProcessor()
        output = processor.process_text(XML_TEXT, [], [], uri=URI)
        assert output.view.empty
        # The body contains no element at all (only the XML declaration).
        body = output.xml_text.replace('<?xml version="1.0"?>', "").strip()
        assert body == ""

    def test_open_policy_processor(self):
        processor = SecurityProcessor(open_policy=True)
        output = processor.process_text(
            XML_TEXT, [auth(f"{URI}://item[./@kind='sec']", "-", "R")], [], uri=URI
        )
        assert "open" in output.xml_text
        assert "hidden" not in output.xml_text

    def test_process_document_directly(self):
        processor = SecurityProcessor(hierarchy=SubjectHierarchy())
        document = parse_document(XML_TEXT, uri=URI)
        output = processor.process_document(
            document, [auth(f"{URI}://lab", "+", "R")], []
        )
        assert output.timings.parse == 0.0
        assert "open" in output.xml_text
