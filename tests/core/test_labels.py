"""Tests for label 6-tuples and first_def."""

from repro.authz.conflict import EPSILON
from repro.core.labels import Label, first_def


class TestFirstDef:
    def test_returns_first_defined(self):
        assert first_def(EPSILON, "+", "-") == "+"
        assert first_def("-", "+") == "-"

    def test_all_epsilon(self):
        assert first_def(EPSILON, EPSILON) == EPSILON
        assert first_def() == EPSILON

    def test_single(self):
        assert first_def("+") == "+"
        assert first_def(EPSILON) == EPSILON


class TestLabel:
    def test_default_all_epsilon(self):
        label = Label()
        assert label.as_tuple() == (EPSILON,) * 6
        assert label.final == EPSILON

    def test_compute_final_priority_order(self):
        # L beats everything.
        assert Label(L="-", R="+", LD="+", RD="+", LW="+", RW="+").compute_final() == "-"
        # R beats schema and weak.
        assert Label(R="+", LD="-", RD="-", LW="-", RW="-").compute_final() == "+"
        # LD beats RD and weak.
        assert Label(LD="-", RD="+", LW="+", RW="+").compute_final() == "-"
        # RD beats weak.
        assert Label(RD="+", LW="-", RW="-").compute_final() == "+"
        # LW beats RW.
        assert Label(LW="-", RW="+").compute_final() == "-"
        # RW alone.
        assert Label(RW="+").compute_final() == "+"

    def test_permitted(self):
        assert Label(final="+").permitted
        assert not Label(final="-").permitted
        assert not Label(final=EPSILON).permitted

    def test_permitted_under_open_policy(self):
        assert Label(final=EPSILON).permitted_under(open_policy=True)
        assert not Label(final=EPSILON).permitted_under(open_policy=False)
        assert not Label(final="-").permitted_under(open_policy=True)
        assert Label(final="+").permitted_under(open_policy=False)

    def test_str_rendering(self):
        label = Label(L="+", final="+")
        assert "+" in str(label)
