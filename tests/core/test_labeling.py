"""Tests for the tree-labeling algorithm (paper, Figure 2 / Section 6.1).

Each test encodes one rule of the propagation/overriding semantics; the
helper returns the final sign per node path so assertions read like the
paper's own examples.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import (
    EPSILON,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
)
from repro.core.labeling import TreeLabeler
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.traversal import node_path, preorder

URI = "d.xml"
DTD_URI = "d.dtd"

DOC = """\
<lab name="CSlab">
  <project type="public" name="P1">
    <manager><flname>Ann</flname></manager>
    <paper cat="private"><title>S</title></paper>
    <paper cat="public"><title>O</title></paper>
  </project>
  <project type="internal" name="P2">
    <manager><flname>Bob</flname></manager>
  </project>
</lab>
"""


def auth(obj, sign, auth_type, subject="Public"):
    if isinstance(subject, tuple):
        pass
    else:
        subject = (subject, "*", "*")
    return Authorization.build(subject, obj, sign, auth_type)


def finals(
    instance=(),
    schema=(),
    xml=DOC,
    hierarchy=None,
    policy=None,
):
    document = parse_document(xml, uri=URI)
    labeler = TreeLabeler(
        document,
        list(instance),
        list(schema),
        hierarchy or SubjectHierarchy(),
        policy=policy,
    )
    result = labeler.run()
    return {
        node_path(node): label.final for node, label in result.labels.items()
    }, result


class TestNoAuthorizations:
    def test_everything_epsilon(self):
        signs, result = finals()
        assert set(signs.values()) == {EPSILON}
        document = parse_document(DOC, uri=URI)
        assert result.labeled_nodes == sum(1 for _ in preorder(document.root))


class TestRecursivePropagation:
    def test_recursive_plus_covers_subtree(self):
        signs, _ = finals([auth(f"{URI}://project[./@type='public']", "+", "R")])
        assert signs["/lab/project[1]"] == "+"
        assert signs["/lab/project[1]/manager"] == "+"
        assert signs["/lab/project[1]/manager/flname"] == "+"
        assert signs["/lab/project[1]/manager/flname/text()"] == "+"
        assert signs["/lab/project[1]/@type"] == "+"

    def test_recursive_does_not_leak_upward_or_sideways(self):
        signs, _ = finals([auth(f"{URI}://project[./@type='public']", "+", "R")])
        assert signs["/lab"] == EPSILON
        assert signs["/lab/@name"] == EPSILON
        assert signs["/lab/project[2]"] == EPSILON
        assert signs["/lab/project[2]/manager"] == EPSILON

    def test_most_specific_object_overrides(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "+", "R"),
                auth(f"{URI}://paper[./@cat='private']", "-", "R"),
            ]
        )
        assert signs["/lab/project[1]"] == "+"
        assert signs["/lab/project[1]/paper[1]"] == "-"
        assert signs["/lab/project[1]/paper[1]/title"] == "-"
        assert signs["/lab/project[1]/paper[2]"] == "+"

    def test_deeper_override_flips_back(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R"),
                auth(f"{URI}://paper[./@cat='private']/title", "+", "R"),
            ]
        )
        assert signs["/lab/project[1]/paper[1]"] == "-"
        assert signs["/lab/project[1]/paper[1]/title"] == "+"

    def test_root_recursive_covers_document(self):
        signs, _ = finals([auth(URI, "+", "R")])
        assert all(sign == "+" for sign in signs.values())


class TestLocalAuthorizations:
    def test_local_covers_element_attrs_and_text_only(self):
        signs, _ = finals([auth(f"{URI}://manager", "+", "L")])
        assert signs["/lab/project[1]/manager"] == "+"
        # Sub-elements are NOT covered by a local authorization.
        assert signs["/lab/project[1]/manager/flname"] == EPSILON

    def test_local_on_parent_covers_attributes(self):
        signs, _ = finals([auth(f"{URI}://paper[./@cat='private']", "+", "L")])
        assert signs["/lab/project[1]/paper[1]"] == "+"
        assert signs["/lab/project[1]/paper[1]/@cat"] == "+"
        assert signs["/lab/project[1]/paper[1]/title"] == EPSILON

    def test_local_beats_propagated_recursive(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "+", "R"),
                auth(f"{URI}://project[1]/paper[1]", "-", "L"),
            ]
        )
        # L on the paper wins over R propagated from project...
        assert signs["/lab/project[1]/paper[1]"] == "-"
        # ...for its attributes too (local propagates to attributes)...
        assert signs["/lab/project[1]/paper[1]/@cat"] == "-"
        # ...but not its sub-elements: those get the project's R.
        assert signs["/lab/project[1]/paper[1]/title"] == "+"

    def test_attribute_object_granularity(self):
        signs, _ = finals([auth(f"{URI}://project/@name", "+", "L")])
        assert signs["/lab/project[1]/@name"] == "+"
        assert signs["/lab/project[1]/@type"] == EPSILON
        assert signs["/lab/project[1]"] == EPSILON


class TestSchemaLevelAuthorizations:
    def test_schema_recursive_propagates(self):
        signs, _ = finals(schema=[auth(f"{DTD_URI}://project[1]", "+", "R")])
        assert signs["/lab/project[1]"] == "+"
        assert signs["/lab/project[1]/manager/flname"] == "+"

    def test_instance_overrides_schema(self):
        signs, _ = finals(
            [auth(f"{URI}://project[1]", "+", "R")],
            [auth(f"{DTD_URI}://project[1]", "-", "R")],
        )
        assert signs["/lab/project[1]"] == "+"
        assert signs["/lab/project[1]/manager"] == "+"

    def test_schema_overrides_weak_instance(self):
        signs, _ = finals(
            [auth(f"{URI}://project[1]", "+", "RW")],
            [auth(f"{DTD_URI}://project[1]", "-", "R")],
        )
        assert signs["/lab/project[1]"] == "-"

    def test_weak_without_schema_behaves_normally(self):
        signs, _ = finals([auth(f"{URI}://project[1]", "+", "RW")])
        assert signs["/lab/project[1]"] == "+"
        assert signs["/lab/project[1]/manager"] == "+"

    def test_schema_local_maps_to_ld(self):
        signs, _ = finals(schema=[auth(f"{DTD_URI}://manager", "+", "L")])
        assert signs["/lab/project[1]/manager"] == "+"
        assert signs["/lab/project[1]/manager/flname"] == EPSILON

    def test_schema_weak_degrades_to_strong(self):
        # Weakness only inverts instance/schema priority; at schema level
        # it is meaningless and maps to the strong slot.
        signs, _ = finals(schema=[auth(f"{DTD_URI}://project[1]", "-", "RW")])
        assert signs["/lab/project[1]"] == "-"

    def test_most_specific_object_within_schema(self):
        signs, _ = finals(
            schema=[
                auth(f"{DTD_URI}://project[1]", "+", "R"),
                auth(f"{DTD_URI}://paper[./@cat='private']", "-", "R"),
            ]
        )
        assert signs["/lab/project[1]/paper[1]"] == "-"
        assert signs["/lab/project[1]/paper[2]"] == "+"


class TestWeakSemantics:
    def test_own_weak_blocks_parent_strong_propagation(self):
        # Paper prose: R/RW propagate only if the node has NO recursive
        # authorization of either strength.
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R"),
                auth(f"{URI}://project[1]/paper[1]", "+", "RW"),
            ]
        )
        assert signs["/lab/project[1]/paper[1]"] == "+"
        assert signs["/lab/project[1]/paper[1]/title"] == "+"
        # Sibling still denied by the propagated strong R.
        assert signs["/lab/project[1]/paper[2]"] == "-"

    def test_weak_blocked_node_still_yields_to_schema(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "+", "R"),
                auth(f"{URI}://project[1]/paper[1]", "+", "RW"),
            ],
            [auth(f"{DTD_URI}://paper[./@cat='private']", "-", "R")],
        )
        # The paper's RW blocks project's R; the schema denial then wins.
        assert signs["/lab/project[1]/paper[1]"] == "-"

    def test_local_weak_on_element(self):
        signs, _ = finals([auth(f"{URI}://manager", "+", "LW")])
        assert signs["/lab/project[1]/manager"] == "+"
        assert signs["/lab/project[1]/manager/flname"] == EPSILON

    def test_local_weak_overridden_by_schema_local(self):
        signs, _ = finals(
            [auth(f"{URI}://manager", "+", "LW")],
            [auth(f"{DTD_URI}://manager", "-", "L")],
        )
        assert signs["/lab/project[1]/manager"] == "-"


class TestAttributeRules:
    def test_recursive_reaches_attributes(self):
        signs, _ = finals([auth(f"{URI}://project[1]", "+", "R")])
        assert signs["/lab/project[1]/@name"] == "+"
        assert signs["/lab/project[1]/paper[1]/@cat"] == "+"

    def test_attribute_own_auth_beats_parent(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "+", "R"),
                auth(f"{URI}://project[1]/@name", "-", "L"),
            ]
        )
        assert signs["/lab/project[1]/@name"] == "-"
        assert signs["/lab/project[1]/@type"] == "+"

    def test_attribute_weak_blocks_parent_instance(self):
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R"),
                auth(f"{URI}://project[1]/@name", "+", "LW"),
            ]
        )
        assert signs["/lab/project[1]/@name"] == "+"
        assert signs["/lab/project[1]/@type"] == "-"

    def test_attribute_weak_yields_to_schema(self):
        signs, _ = finals(
            [auth(f"{URI}://project[1]/@name", "+", "LW")],
            [auth(f"{DTD_URI}://project[1]/@name", "-", "L")],
        )
        assert signs["/lab/project[1]/@name"] == "-"

    def test_schema_recursive_reaches_attributes(self):
        signs, _ = finals(schema=[auth(f"{DTD_URI}://project[1]", "+", "R")])
        assert signs["/lab/project[1]/@name"] == "+"
        assert signs["/lab/project[1]/manager"] == "+"


class TestSubjectResolution:
    def build_hierarchy(self):
        hierarchy = SubjectHierarchy()
        directory = hierarchy.directory
        directory.add_group("CS")
        directory.add_group("Grad", parents=["CS"])
        return hierarchy

    def test_most_specific_subject_wins(self):
        hierarchy = self.build_hierarchy()
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R", subject="CS"),
                auth(f"{URI}://project[1]", "+", "R", subject="Grad"),
            ],
            hierarchy=hierarchy,
        )
        # Grad < CS, so the Grad permission overrides the CS denial.
        assert signs["/lab/project[1]"] == "+"

    def test_incomparable_subjects_denial_wins(self):
        hierarchy = self.build_hierarchy()
        directory = hierarchy.directory
        directory.add_group("Other")
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R", subject="CS"),
                auth(f"{URI}://project[1]", "+", "R", subject="Other"),
            ],
            hierarchy=hierarchy,
        )
        assert signs["/lab/project[1]"] == "-"

    def test_location_specificity(self):
        hierarchy = self.build_hierarchy()
        signs, _ = finals(
            [
                auth(f"{URI}://project[1]", "-", "R", subject=("CS", "*", "*")),
                auth(
                    f"{URI}://project[1]",
                    "+",
                    "R",
                    subject=("CS", "150.100.30.8", "*"),
                ),
            ],
            hierarchy=hierarchy,
        )
        assert signs["/lab/project[1]"] == "+"


class TestConflictPolicies:
    def conflicting(self):
        return [
            auth(f"{URI}://project[1]", "+", "R", subject="A"),
            auth(f"{URI}://project[1]", "-", "R", subject="B"),
        ]

    def hierarchy_with_groups(self):
        hierarchy = SubjectHierarchy()
        hierarchy.directory.add_group("A")
        hierarchy.directory.add_group("B")
        return hierarchy

    def test_default_denials_take_precedence(self):
        signs, _ = finals(self.conflicting(), hierarchy=self.hierarchy_with_groups())
        assert signs["/lab/project[1]"] == "-"

    def test_permissions_take_precedence(self):
        signs, _ = finals(
            self.conflicting(),
            hierarchy=self.hierarchy_with_groups(),
            policy=PermissionsTakePrecedence(),
        )
        assert signs["/lab/project[1]"] == "+"

    def test_nothing_takes_precedence(self):
        signs, _ = finals(
            self.conflicting(),
            hierarchy=self.hierarchy_with_groups(),
            policy=NothingTakesPrecedence(),
        )
        assert signs["/lab/project[1]"] == EPSILON


class TestBookkeeping:
    def test_every_node_labeled(self):
        document = parse_document(DOC, uri=URI)
        total = sum(1 for _ in preorder(document.root))
        _, result = finals()
        assert result.labeled_nodes == total

    def test_counts(self):
        _, result = finals([auth(f"{URI}://project[1]", "+", "R")])
        counts = result.counts()
        assert counts["+"] > 0
        assert counts[EPSILON] > 0
        assert counts["-"] == 0

    def test_evaluated_authorizations_counted(self):
        _, result = finals(
            [auth(f"{URI}://project[1]", "+", "R")],
            [auth(f"{DTD_URI}://manager", "-", "L")],
        )
        assert result.evaluated_authorizations == 2

    def test_empty_document(self):
        from repro.xml.nodes import Document

        labeler = TreeLabeler(Document(), [], [], SubjectHierarchy())
        assert labeler.run().labels == {}
