"""Single-walk NFA binding vs the legacy per-authorization xpath scan.

``TreeLabeler._bin_authorizations`` now tries to bind every
authorization in one preorder walk driven by the shared
:class:`~repro.stream.paths.PatternDispatch` automaton, falling back to
the legacy per-auth ``xpath.eval`` loop whenever any path fails
*exact-mode* stream compilation. These tests pin the contract: both
binders must produce the same per-node slot bins **in the same order**
(binning order feeds conflict resolution), and therefore the same
final labels.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.core.labeling import TreeLabeler
from repro.stream.paths import StreamPathUnsupported, compile_stream_pattern
from repro.subjects.hierarchy import SubjectHierarchy
from repro.workloads.generator import synthetic_authorizations, synthetic_document
from repro.xml.parser import parse_document


def auth(path, sign, auth_type):
    # AuthObject notation is URI[:PE]; None means the bare-URI object,
    # which denotes the document root.
    obj = "d.xml" if path is None else f"d.xml:{path}"
    return Authorization.build(("Public", "*", "*"), obj, sign, auth_type)


def bind_both_ways(document, instance, schema):
    hierarchy = SubjectHierarchy()
    nfa = TreeLabeler(document, instance, schema, hierarchy)
    legacy = TreeLabeler(document, instance, schema, hierarchy)
    legacy._bin_via_nfa = lambda: False  # force the per-auth xpath path
    used_nfa = nfa._bin_via_nfa()
    legacy._bin_authorizations()
    return nfa, legacy, used_nfa


def assert_equivalent(document, instance, schema, expect_nfa=None):
    nfa, legacy, used_nfa = bind_both_ways(document, instance, schema)
    if expect_nfa is not None:
        assert used_nfa is expect_nfa
    if not used_nfa:
        nfa._bin_authorizations()  # let the fallback fill the bins
    bins_nfa, bins_legacy = nfa._node_slot_auths, legacy._node_slot_auths
    assert set(bins_nfa) == set(bins_legacy)
    for node in bins_nfa:
        assert bins_nfa[node] == bins_legacy[node], node
    finals_nfa = nfa.run().labels
    finals_legacy = legacy.run().labels
    assert set(finals_nfa) == set(finals_legacy)
    for node in finals_nfa:
        assert finals_nfa[node].final == finals_legacy[node].final


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("seed", range(6))
    def test_bins_and_finals_match_legacy(self, seed):
        document = synthetic_document(nodes=300, seed=seed)
        instance, schema = synthetic_authorizations(
            document, count=10, seed=seed * 7 + 1,
            dtd_uri="d.dtd", schema_share=0.3,
        )
        assert_equivalent(document, instance, schema)


DOC = (
    '<lab name="x"><project type="public"><paper cat="private">'
    "<title>S</title></paper><paper cat='public'/></project>"
    '<project type="internal"/></lab>'
)

EXACT_CASES = [
    [("//paper[./@cat='private']", "-", "R")],
    [("//project/@type", "+", "L")],
    [("//project/@*", "-", "LW")],
    [(None, "+", "R")],  # bare URI: binds the root
    [("/lab/project", "+", "L"), ("//paper", "-", "RW")],
    [("//paper/@cat | //title", "+", "R")],
    [("/lab//title", "+", "R")],
    [("//project[./@type='public']//title", "+", "R")],
]

LOSSY_CASES = [
    [("//title/text()", "+", "R")],
    [("//comment()", "-", "L")],
    [("//node()", "+", "R")],
    [("/", "+", "R")],
    [("//paper[1]", "+", "R")],
]


class TestHandWrittenCases:
    @pytest.mark.parametrize("case", EXACT_CASES, ids=range(len(EXACT_CASES)))
    def test_exact_paths_bind_via_nfa(self, case):
        document = parse_document(DOC, uri="d.xml")
        auths = [auth(path, sign, slot) for path, sign, slot in case]
        assert_equivalent(document, auths, [], expect_nfa=True)

    @pytest.mark.parametrize("case", LOSSY_CASES, ids=range(len(LOSSY_CASES)))
    def test_lossy_paths_fall_back_and_still_agree(self, case):
        document = parse_document(DOC, uri="d.xml")
        auths = [auth(path, sign, slot) for path, sign, slot in case]
        assert_equivalent(document, auths, [], expect_nfa=False)


class TestExactModeCompilation:
    """exact=True must reject exactly the paths whose stream semantics
    diverge from ``xpath.eval`` — anything not selecting elements or
    attributes by a final child/descendant/attribute step."""

    @pytest.mark.parametrize(
        "path",
        ["//paper", "/lab/project", "//project/@type", "//paper/@*",
         "//a//b", "//paper[./@cat='x']", "//title/self::node()"],
    )
    def test_accepts(self, path):
        compile_stream_pattern(path, exact=True)

    @pytest.mark.parametrize(
        "path",
        ["//title/text()", "//comment()", "//node()", "/", "/self::node()"],
    )
    def test_rejects(self, path):
        with pytest.raises(StreamPathUnsupported):
            compile_stream_pattern(path, exact=True)

    @pytest.mark.parametrize(
        "path", ["//title/text()", "//node()", "//comment()"]
    )
    def test_non_exact_mode_still_accepts_lossy(self, path):
        compile_stream_pattern(path, exact=False)
