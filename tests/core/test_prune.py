"""Tests for the transformation (pruning) step — Section 6.2."""

import pytest

from repro.authz.authorization import Authorization
from repro.core.labeling import TreeLabeler
from repro.core.prune import build_view, prune_in_place
from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.serializer import element_signature, serialize
from repro.xml.traversal import preorder

URI = "d.xml"

DOC = """\
<lab name="CSlab"><project type="public" name="P1">\
<manager><flname>Ann</flname></manager>\
<paper cat="private"><title>S</title></paper>\
<paper cat="public"><title>O</title></paper>\
</project></lab>
"""


def auth(obj, sign, auth_type):
    return Authorization.build(("Public", "*", "*"), obj, sign, auth_type)


def labeled(xml, instance, schema=()):
    document = parse_document(xml, uri=URI)
    labels = TreeLabeler(
        document, list(instance), list(schema), SubjectHierarchy()
    ).run().labels
    return document, labels


class TestBuildView:
    def test_only_permitted_subtree_survives(self):
        document, labels = labeled(DOC, [auth(f"{URI}://manager", "+", "R")])
        view = build_view(document, labels)
        assert serialize(view, xml_declaration=False) == (
            "<lab><project><manager><flname>Ann</flname></manager></project></lab>"
        )

    def test_structural_ancestors_are_bare_tags(self):
        document, labels = labeled(DOC, [auth(f"{URI}://flname", "+", "R")])
        view = build_view(document, labels)
        lab = view.root
        assert lab.attributes == {}  # name attribute hidden
        project = lab.children[0]
        assert project.attributes == {}

    def test_denied_node_with_permitted_descendant_keeps_tags(self):
        document, labels = labeled(
            DOC,
            [
                auth(f"{URI}://project", "-", "R"),
                auth(f"{URI}://flname", "+", "R"),
            ],
        )
        view = build_view(document, labels)
        assert serialize(view, xml_declaration=False) == (
            "<lab><project><manager><flname>Ann</flname></manager></project></lab>"
        )

    def test_denied_element_content_hidden(self):
        # Denied element keeps its tag (descendant permitted) but its own
        # text and attributes are hidden.
        document, labels = labeled(
            "<a k='1'>secret<b>ok</b></a>",
            [
                auth(f"{URI}://a", "-", "L"),
                auth(f"{URI}://b", "+", "R"),
            ],
        )
        view = build_view(document, labels)
        assert serialize(view, xml_declaration=False) == "<a><b>ok</b></a>"

    def test_empty_view_when_nothing_permitted(self):
        document, labels = labeled(DOC, [])
        view = build_view(document, labels)
        assert view.root is None
        assert view.doctype_name is None

    def test_denial_only_view_empty(self):
        document, labels = labeled(DOC, [auth(f"{URI}://lab", "-", "R")])
        assert build_view(document, labels).root is None

    def test_attributes_filtered_individually(self):
        document, labels = labeled(
            DOC,
            [
                auth(f"{URI}://project", "+", "L"),
                auth(f"{URI}://project/@name", "-", "L"),
            ],
        )
        view = build_view(document, labels)
        project = view.root.children[0]
        assert project.get_attribute("type") == "public"
        assert not project.has_attribute("name")

    def test_open_policy_keeps_epsilon(self):
        document, labels = labeled(DOC, [auth(f"{URI}://paper[1]", "-", "R")])
        view = build_view(document, labels, open_policy=True)
        # Everything except the denied paper subtree is visible.
        assert len(view.root.children[0].find_children("paper").__iter__().__next__().children) > 0
        papers = list(view.root.children[0].find_children("paper"))
        assert len(papers) == 1
        assert papers[0].get_attribute("cat") == "public"

    def test_original_document_untouched(self):
        document, labels = labeled(DOC, [auth(f"{URI}://manager", "+", "R")])
        before = serialize(document)
        build_view(document, labels)
        assert serialize(document) == before

    def test_comments_follow_parent_visibility(self):
        document, labels = labeled(
            "<a><!--note--><b/></a>",
            [auth(f"{URI}://a", "+", "R")],
        )
        view = build_view(document, labels)
        assert "<!--note-->" in serialize(view, xml_declaration=False)

    def test_comments_hidden_with_denied_parent(self):
        document, labels = labeled(
            "<a><!--note--><b/></a>",
            [auth(f"{URI}://a", "-", "L"), auth(f"{URI}://b", "+", "R")],
        )
        view = build_view(document, labels)
        assert "<!--note-->" not in serialize(view, xml_declaration=False)

    def test_dtd_loosened_on_view(self):
        from repro.dtd.parser import parse_dtd

        document = parse_document("<a><b/></a>", uri=URI)
        document.dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        labels = TreeLabeler(
            document, [auth(f"{URI}://a", "+", "R")], [], SubjectHierarchy()
        ).run().labels
        view = build_view(document, labels, loosen_dtd=True)
        particle = view.dtd.element("a").content.particle
        assert particle.unparse().endswith("?")

    def test_loosening_can_be_disabled(self):
        from repro.dtd.parser import parse_dtd

        document = parse_document("<a/>", uri=URI)
        document.dtd = parse_dtd("<!ELEMENT a EMPTY>")
        labels = TreeLabeler(
            document, [auth(f"{URI}://a", "+", "R")], [], SubjectHierarchy()
        ).run().labels
        view = build_view(document, labels, loosen_dtd=False)
        assert view.dtd is document.dtd


class TestPruneInPlaceEquivalence:
    @pytest.mark.parametrize(
        "instance",
        [
            [],
            [("//manager", "+", "R")],
            [("//project", "+", "R"), ("//paper[./@cat='private']", "-", "R")],
            [("//lab", "-", "R"), ("//flname", "+", "R")],
            [("//project", "+", "L")],
            [("//project/@name", "+", "L")],
            [("//lab", "+", "R"), ("//title", "-", "L")],
        ],
    )
    def test_matches_build_view(self, instance):
        auths = [auth(f"{URI}:{path}", sign, t) for path, sign, t in instance]
        document, labels = labeled(DOC, auths)
        constructed = build_view(document, labels, loosen_dtd=False)

        # The in-place variant needs the labels keyed by the clone's nodes.
        clone = document.clone()
        mapping = dict(zip(preorder(document), preorder(clone)))
        clone_labels = {mapping[node]: label for node, label in labels.items()}
        prune_in_place(clone, clone_labels)

        assert element_signature(constructed.root) == element_signature(clone.root)

    def test_in_place_empty_document(self):
        document, labels = labeled(DOC, [])
        clone = document.clone()
        mapping = dict(zip(preorder(document), preorder(clone)))
        clone_labels = {mapping[node]: label for node, label in labels.items()}
        prune_in_place(clone, clone_labels)
        assert clone.root is None
