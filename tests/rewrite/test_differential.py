"""Differential suite: rewritten ≡ materialized, byte for byte.

For every (conflict policy × open/closed × query) combination, the
virtual answer — guarded query over the source document, matches
serialized through the oracle — must equal the materialized answer —
query over the computed view, matches serialized directly. This is the
correctness contract of :mod:`repro.rewrite` (docs/VIEWS.md).
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import policy_by_name
from repro.core import compute_view_from_auths
from repro.rewrite import VisibilityOracle, compile_rewrite
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xpath.evaluator import select

URI = "http://d/records.xml"

DOC = (
    "<records>"
    "<patient id='p1'><name>Alice P</name><diagnosis code='d1'>flu"
    "<note>mild</note></diagnosis><bill>100</bill></patient>"
    "<patient id='p2'><name>Bob Q</name><diagnosis code='d2'>measles"
    "<note>severe</note></diagnosis><bill>250</bill></patient>"
    "<admin><bill>999</bill><audit>internal</audit></admin>"
    "</records>"
)

POLICIES = [
    "denials-take-precedence",
    "permissions-take-precedence",
    "nothing-takes-precedence",
    "majority-takes-precedence",
]

#: Authorization sets designed to exercise conflicts (both signs on the
#: same nodes), bare-tag survivors (admin denied, bill below permitted)
#: and attribute-level decisions.
AUTH_SETS = {
    "plain": [
        Authorization.build("Public", f"{URI}://patient", "+", "R"),
        Authorization.build("Public", f"{URI}://admin", "-", "R"),
    ],
    "conflicted": [
        Authorization.build("Public", f"{URI}://patient", "+", "R"),
        Authorization.build("Public", f"{URI}://patient", "-", "R"),
        Authorization.build("Public", f"{URI}://diagnosis", "-", "R"),
        Authorization.build("Public", f"{URI}://diagnosis", "+", "R"),
        Authorization.build("Public", f"{URI}://name", "+", "R"),
    ],
    "survivor": [
        Authorization.build("Public", f"{URI}://admin", "-", "R"),
        Authorization.build("Public", f"{URI}://admin/bill", "+", "R"),
        Authorization.build("Public", f"{URI}://patient/name", "+", "R"),
    ],
    "attributes": [
        Authorization.build("Public", f"{URI}://patient", "+", "R"),
        Authorization.build("Public", f"{URI}://patient/@id", "-", "R"),
        Authorization.build("Public", f"{URI}://diagnosis/@code", "-", "R"),
    ],
}

QUERIES = [
    "//patient",
    "//patient/name",
    "//name/text()",
    "/records/patient[1]",
    "//patient[2]/bill",
    "//patient[@id='p2']",
    "//*[@code]",
    "//@id",
    "//bill | //name",
    "//patient[name='Alice P']",
    "//patient[diagnosis/note]",
    "//patient[bill > 150]",
    "//bill[. > 150]",
    "//patient[contains(name, 'Q')]",
    "//patient[starts-with(name, 'A')]",
    "//patient[string-length(name) > 5]",
    "//*[count(*) > 1]",
    "//patient[position() = last()]",
    "//note/..",
    "//note/ancestor::patient",
    "//name/following-sibling::bill",
    "//bill/preceding-sibling::name",
    "//patient/descendant::note",
    "//records/child::*",
    "/",
    "//patient[not(bill < 200)]",
    "//patient[normalize-space(name) = 'Bob Q']",
    "//patient[sum(bill) > 200]",
    "(//bill)[1]",
    "//patient[substring(name, 1, 1) = 'B']",
]


def materialized_answer(document, auths, policy, open_policy, query):
    view = compute_view_from_auths(
        document,
        auths,
        [],
        SubjectHierarchy(),
        policy=policy,
        open_policy=open_policy,
    ).document
    nodes = select(query, view) if view.root else []
    return [serialize(node) for node in nodes]


def virtual_answer(document, auths, policy, open_policy, query):
    oracle = VisibilityOracle(
        document,
        auths,
        [],
        SubjectHierarchy(),
        policy=policy,
        open_policy=open_policy,
    )
    rewritten = compile_rewrite(query)
    if not oracle.has_visible_root():
        return []
    nodes = rewritten.select(document, oracle)
    return [oracle.serialize_match(node) for node in nodes]


@pytest.mark.parametrize("auth_name", sorted(AUTH_SETS))
@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("open_policy", [False, True])
def test_rewritten_equals_materialized(auth_name, policy_name, open_policy):
    document = parse_document(DOC, uri=URI)
    auths = AUTH_SETS[auth_name]
    policy = policy_by_name(policy_name)
    for query in QUERIES:
        expected = materialized_answer(
            document, auths, policy, open_policy, query
        )
        actual = virtual_answer(document, auths, policy, open_policy, query)
        assert actual == expected, (
            f"divergence for {query!r} under {policy_name} "
            f"(open={open_policy}, auths={auth_name})"
        )


def test_position_counts_view_nodes_not_source_nodes():
    # The first source patient is hidden; [1] must select the first
    # *visible* patient, as it would on the materialized view.
    document = parse_document(DOC, uri=URI)
    auths = [
        Authorization.build("Public", f"{URI}://patient", "+", "R"),
        Authorization.build("Public", f"{URI}://patient[1]", "-", "R"),
    ]
    policy = policy_by_name("denials-take-precedence")
    expected = materialized_answer(document, auths, policy, False, "//patient[1]")
    actual = virtual_answer(document, auths, policy, False, "//patient[1]")
    assert actual == expected
    assert len(actual) == 1
    assert "p2" in actual[0]


def test_hidden_text_never_leaks_into_comparisons():
    # diagnosis text is hidden: a comparison against it must not match,
    # exactly as on the materialized view.
    document = parse_document(DOC, uri=URI)
    auths = [
        Authorization.build("Public", f"{URI}://patient", "+", "R"),
        Authorization.build("Public", f"{URI}://diagnosis", "-", "R"),
    ]
    policy = policy_by_name("denials-take-precedence")
    for query in (
        "//patient[diagnosis = 'flumild']",
        "//patient[contains(., 'measles')]",
        "//patient[string(diagnosis) != '']",
    ):
        expected = materialized_answer(document, auths, policy, False, query)
        actual = virtual_answer(document, auths, policy, False, query)
        assert actual == expected, query
