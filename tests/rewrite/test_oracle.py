"""Tests for the lazy visibility oracle.

Ground truth throughout is the materialized pipeline: an oracle answer
is correct iff it matches what :func:`compute_view_from_auths` builds.
Node-level membership is exercised exhaustively by the differential
query suite (``test_differential.py``); here we pin the semantics of
each node kind and the byte-identity of match serialization.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import policy_by_name
from repro.core import compute_view_from_auths
from repro.core.labeling import TreeLabeler
from repro.rewrite import VisibilityOracle
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

URI = "http://o/doc.xml"

DOC = (
    "<!-- prolog comment --><doc>"
    "<pub k='1' s='2'>public text<note>fine print</note></pub>"
    "<sec>secret<deep><leaf>kept</leaf></deep></sec>"
    "<empty/>"
    "</doc>"
)

POLICIES = [
    "denials-take-precedence",
    "permissions-take-precedence",
    "nothing-takes-precedence",
    "majority-takes-precedence",
]


def auths():
    return [
        Authorization.build("Public", f"{URI}://pub", "+", "R"),
        Authorization.build("Public", f"{URI}://pub/@s", "-", "R"),
        Authorization.build("Public", f"{URI}://sec", "-", "R"),
        Authorization.build("Public", f"{URI}://leaf", "+", "R"),
    ]


@pytest.fixture
def document():
    return parse_document(DOC, uri=URI)


@pytest.fixture
def oracle(document):
    return VisibilityOracle(document, auths(), [], SubjectHierarchy())


@pytest.fixture
def view(document):
    return compute_view_from_auths(
        document, auths(), [], SubjectHierarchy()
    ).document


class TestExistence:
    def test_permitted_element_and_attributes(self, document, oracle):
        pub = document.root.children[0]
        assert pub.name == "pub"
        assert oracle.exists(pub) is True
        assert oracle.exists(pub.attributes["k"]) is True
        # @s carries an explicit denial.
        assert oracle.exists(pub.attributes["s"]) is False
        assert oracle.exists(pub.children[0]) is True  # "public text"

    def test_bare_tag_survivor_hides_text_keeps_element(
        self, document, oracle
    ):
        sec = document.root.children[1]
        assert sec.name == "sec"
        # sec itself is denied but <leaf> below is permitted: the
        # element survives structurally, its own text does not.
        assert oracle.exists(sec) is True
        assert oracle.exists(sec.children[0]) is False  # "secret"
        deep = sec.children[1]
        leaf = deep.children[0]
        assert oracle.exists(deep) is True
        assert oracle.exists(leaf) is True
        assert oracle.exists(leaf.children[0]) is True  # "kept"

    def test_unlabeled_element_pruned(self, document, oracle):
        empty = document.root.children[2]
        assert empty.name == "empty"
        assert oracle.exists(empty) is False

    def test_prolog_comment_never_exists(self, document, oracle):
        prolog = document.children[0]
        assert oracle.exists(prolog) is False

    def test_document_exists_iff_view_nonempty(self, document, oracle):
        assert oracle.exists(document) is True
        deny_all = [Authorization.build("Public", f"{URI}://doc", "-", "R")]
        opaque = VisibilityOracle(document, deny_all, [], SubjectHierarchy())
        assert opaque.exists(document) is False
        assert opaque.has_visible_root() is False


class TestLazyLabels:
    def test_lazy_labels_equal_full_run(self, document, oracle):
        full = TreeLabeler(document, auths(), [], SubjectHierarchy()).run()
        for node, label in full.labels.items():
            assert oracle.label(node).final == label.final

    def test_probe_order_does_not_matter(self, document):
        # Deep-first probing forces the whole ancestor chain lazily.
        oracle = VisibilityOracle(document, auths(), [], SubjectHierarchy())
        leaf = document.root.children[1].children[1].children[0]
        assert oracle.exists(leaf) is True
        full = TreeLabeler(document, auths(), [], SubjectHierarchy()).run()
        for node, label in full.labels.items():
            assert oracle.label(node).final == label.final


class TestStringValues:
    def test_hidden_text_excluded(self, oracle, document):
        value = oracle.string_value(document.root)
        assert "secret" not in value
        assert "public text" in value
        assert "kept" in value

    def test_document_order_preserved(self, oracle, document):
        assert oracle.string_value(document.root) == (
            "public textfine printkept"
        )

    def test_matches_view_string_value(self, oracle, document, view):
        assert oracle.string_value(document.root) == view.root.text()
        assert oracle.string_value(document) == view.root.text()

    def test_attribute_and_text_pass_through(self, oracle, document):
        pub = document.root.children[0]
        assert oracle.string_value(pub.attributes["k"]) == "1"
        assert oracle.string_value(pub.children[0]) == "public text"


class TestSerializeMatch:
    def test_element_match_serializes_like_view(self, document, oracle, view):
        pub_source = document.root.children[0]
        pub_view = view.root.children[0]
        assert oracle.serialize_match(pub_source) == serialize(pub_view)

    def test_survivor_match_serializes_bare_tag_subtree(
        self, document, oracle, view
    ):
        sec_source = document.root.children[1]
        sec_view = view.root.children[1]
        text = oracle.serialize_match(sec_source)
        assert text == serialize(sec_view)
        assert "secret" not in text
        assert "kept" in text

    def test_document_match_serializes_whole_view(
        self, document, oracle, view
    ):
        assert oracle.serialize_match(document) == serialize(view)


class TestPolicies:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("open_policy", [False, True])
    def test_whole_view_bytes_match_under_every_policy(
        self, document, policy_name, open_policy
    ):
        conflicted = auths() + [
            Authorization.build("Public", f"{URI}://pub", "-", "R"),
            Authorization.build("Public", f"{URI}://sec", "+", "R"),
        ]
        policy = policy_by_name(policy_name)
        oracle = VisibilityOracle(
            document,
            conflicted,
            [],
            SubjectHierarchy(),
            policy=policy,
            open_policy=open_policy,
        )
        view = compute_view_from_auths(
            document,
            conflicted,
            [],
            SubjectHierarchy(),
            policy=policy,
            open_policy=open_policy,
        ).document
        assert oracle.serialize_match(document) == serialize(view)
