"""Tests for the guard-injecting query rewriter."""

import pytest

from repro.errors import RewriteUnsupported, XPathEvaluationError, XPathSyntaxError
from repro.rewrite import GUARD_FUNCTION, compile_rewrite
from repro.rewrite.engine import _Rewriter
from repro.xpath.ast import (
    BinaryExpr,
    FunctionCall,
    LocationPath,
    PathExpr,
    UnionExpr,
)
from repro.xpath.parser import parse_xpath


def guarded(source):
    return compile_rewrite(source).guarded


def all_steps(expr):
    """Every Step anywhere in the guarded AST."""
    if isinstance(expr, LocationPath):
        for step in expr.steps:
            yield step
            for predicate in step.predicates:
                yield from all_steps(predicate)
    elif isinstance(expr, UnionExpr):
        for part in expr.parts:
            yield from all_steps(part)
    elif isinstance(expr, BinaryExpr):
        yield from all_steps(expr.left)
        yield from all_steps(expr.right)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from all_steps(arg)
    elif isinstance(expr, PathExpr):
        yield from all_steps(expr.filter.primary)
        yield from all_steps(expr.tail)


class TestGuardInjection:
    def test_every_step_guarded_first(self):
        for source in (
            "//a/b[@x]/text()",
            "/a/b[c/d]",
            "//a[2][b='x'] | //c",
            "count(//a[b])",
        ):
            steps = list(all_steps(guarded(source)))
            assert steps
            for step in steps:
                first = step.predicates[0]
                assert isinstance(first, FunctionCall)
                assert first.name == GUARD_FUNCTION

    def test_guard_precedes_position_predicate(self):
        # [2] must count view nodes: the guard filters first.
        path = guarded("//b[2]")
        last_step = path.steps[-1]
        assert last_step.predicates[0].name == GUARD_FUNCTION
        assert len(last_step.predicates) == 2

    def test_original_ast_not_mutated(self):
        source = "//a[b]"
        parsed = parse_xpath(source)
        before = parsed.unparse()
        compile_rewrite(source)
        assert parsed.unparse() == before


class TestComparisonRewriting:
    def test_node_set_comparison_uses_view_compare(self):
        expr = guarded("//a[b = 'x']")
        predicate = expr.steps[-1].predicates[1]
        assert isinstance(predicate, FunctionCall)
        assert predicate.name == "__view-cmp"

    def test_scalar_comparison_untouched(self):
        expr = guarded("//a[position() = 2]")
        predicate = expr.steps[-1].predicates[1]
        assert isinstance(predicate, BinaryExpr)
        assert predicate.op == "="

    def test_context_string_function_rewritten(self):
        text = guarded("//a[string() = 'x']").unparse()
        assert "__view-str" in text

    def test_sum_uses_view_sum(self):
        assert "__view-sum" in guarded("sum(//n)").unparse()

    def test_id_uses_view_id(self):
        assert "__view-id" in guarded("id('k')").unparse()


class TestRewritableSubset:
    @pytest.mark.parametrize(
        "source, reason",
        [
            ("//a[lang('en')]", "function:lang"),
            ("$var/a", "variable-reference"),
            ("//a[nosuchfn()]", "function:nosuchfn"),
        ],
    )
    def test_unsupported_raises_with_reason(self, source, reason):
        with pytest.raises(RewriteUnsupported) as excinfo:
            compile_rewrite(source)
        assert excinfo.value.reason == reason

    def test_syntax_errors_propagate(self):
        with pytest.raises(XPathSyntaxError):
            compile_rewrite("//a[")

    def test_unsupported_never_cached_as_success(self):
        for _ in range(2):
            with pytest.raises(RewriteUnsupported):
                compile_rewrite("//a[lang('en')]")


class TestCompileCache:
    def test_identical_source_shares_plan(self):
        assert compile_rewrite("//cache-test/a") is compile_rewrite(
            "//cache-test/a"
        )


class TestRewriterCoverage:
    def test_all_core_functions_rewritable(self):
        # Everything in the default registry except the view-sensitive
        # lang() must compile.
        sources = [
            "//a[last()]",
            "//a[position() = 1]",
            "count(//a) = 1",
            "//a[name() = 'a']",
            "//a[local-name() = 'a']",
            "string(//a) = 'x'",
            "//a[concat(b, 'x') = 'yx']",
            "//a[starts-with(b, 'y')]",
            "//a[contains(b, 'y')]",
            "//a[substring-before(b, '-') = 'y']",
            "//a[substring-after(b, '-') = 'z']",
            "//a[substring(b, 1, 2) = 'yz']",
            "//a[string-length(b) > 0]",
            "//a[normalize-space(b) = 'y']",
            "//a[translate(b, 'y', 'z') = 'z']",
            "//a[boolean(b)]",
            "//a[not(b)]",
            "//a[true()]",
            "//a[false()]",
            "number(//a) > 0",
            "sum(//a) > 0",
            "floor(sum(//a)) = 1",
            "ceiling(sum(//a)) = 1",
            "round(sum(//a)) = 1",
            "id('k')",
        ]
        for source in sources:
            compile_rewrite(source)

    def test_non_node_set_result_raises_like_select(self):
        from repro.rewrite import VisibilityOracle
        from repro.subjects.hierarchy import SubjectHierarchy
        from repro.xml.parser import parse_document

        document = parse_document("<a><b>1</b></a>")
        oracle = VisibilityOracle(document, [], [], SubjectHierarchy())
        rewritten = compile_rewrite("count(//b)")
        with pytest.raises(XPathEvaluationError, match="node-set"):
            rewritten.select(document, oracle)
