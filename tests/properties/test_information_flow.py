"""Information-flow properties: nothing hidden ever leaks into a view.

Every text node and attribute value of the test documents is a unique
token, so "does the serialized view contain token T?" is a precise
leakage oracle. The invariant under test is the paper's security
guarantee: the view contains a token **iff** the node carrying it has a
final '+' label.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.core.labeling import TreeLabeler
from repro.core.prune import build_view
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester, SubjectHierarchy, SubjectSpec
from repro.xml.builder import E, new_document
from repro.xml.nodes import Attribute, Element, Text
from repro.xml.serializer import serialize
from repro.xml.traversal import preorder

URI = "http://flow.example/doc.xml"

_NAMES = ("doc", "part", "item", "leaf")
_KINDS = ("red", "green", "blue")


def tokenized_document(seed: int):
    """A random document where every value is the unique token tk<N>."""
    rng = random.Random(seed)
    counter = [0]

    def token() -> str:
        counter[0] += 1
        return f"tk{counter[0]}x"

    def build(depth: int) -> Element:
        element = Element(rng.choice(_NAMES[1:]))
        element.set_attribute("kind", rng.choice(_KINDS))
        element.set_attribute("tag", token())
        if depth > 0:
            for _ in range(rng.randint(0, 3)):
                element.append(build(depth - 1))
        if rng.random() < 0.7:
            element.append(Text(token()))
        return element

    root = Element("doc")
    root.set_attribute("tag", token())
    for _ in range(rng.randint(1, 4)):
        root.append(build(2))
    return new_document(root, uri=URI)


@st.composite
def auth_sets(draw):
    count = draw(st.integers(0, 6))
    auths = []
    for _ in range(count):
        name = draw(st.sampled_from(_NAMES))
        if draw(st.booleans()):
            path = f"//{name}"
        else:
            path = f'//{name}[./@kind="{draw(st.sampled_from(_KINDS))}"]'
        auths.append(
            Authorization(
                SubjectSpec.parse("Public"),
                AuthObject(URI, path),
                "read",
                Sign(draw(st.sampled_from(["+", "-"]))),
                draw(st.sampled_from(list(AuthType))),
            )
        )
    return auths


class TestNoLeakage:
    @given(st.integers(0, 200), auth_sets())
    @settings(max_examples=80, deadline=None)
    def test_token_visible_iff_node_permitted(self, seed, auths):
        document = tokenized_document(seed)
        labels = TreeLabeler(document, auths, [], SubjectHierarchy()).run().labels
        view_text = serialize(build_view(document, labels))

        for node in preorder(document.root):
            if isinstance(node, Text) and node.data.startswith("tk"):
                parent_label = labels[node.parent]
                assert (node.data in view_text) == (parent_label.final == "+"), (
                    f"text {node.data!r}: parent final={parent_label.final}"
                )
            elif isinstance(node, Attribute) and node.value.startswith("tk"):
                label = labels[node]
                assert (node.value in view_text) == (label.final == "+"), (
                    f"attribute {node.name}={node.value!r}: final={label.final}"
                )

    @given(st.integers(0, 200), auth_sets())
    @settings(max_examples=40, deadline=None)
    def test_open_policy_leaks_only_epsilon(self, seed, auths):
        document = tokenized_document(seed)
        labels = TreeLabeler(document, auths, [], SubjectHierarchy()).run().labels
        view_text = serialize(build_view(document, labels, open_policy=True))
        for node in preorder(document.root):
            if isinstance(node, Attribute) and node.value.startswith("tk"):
                expected = labels[node].final in ("+", "ε")
                assert (node.value in view_text) == expected


class TestCrossRequesterIsolation:
    def build_server(self):
        server = SecureXMLServer()
        server.add_user("red-reader")
        server.add_user("green-reader")
        document = tokenized_document(7)
        server.publish_document(URI, document)
        for user, kind in (("red-reader", "red"), ("green-reader", "green")):
            server.grant(
                Authorization.build(
                    (user, "*", "*"), f'{URI}://*[@kind="{kind}"]', "+", "R"
                )
            )
        return server, document

    def colored_tokens(self, document, kind):
        tokens = set()
        for node in preorder(document.root):
            if isinstance(node, Element) and node.get_attribute("kind") == kind:
                for sub in preorder(node):
                    if isinstance(sub, Text):
                        tokens.add(sub.data)
                    elif isinstance(sub, Attribute) and sub.name == "tag":
                        tokens.add(sub.value)
        return tokens

    def test_requesters_see_disjoint_grants(self):
        server, document = self.build_server()
        red = Requester("red-reader", "1.1.1.1", "a.x")
        green = Requester("green-reader", "2.2.2.2", "b.x")
        red_view = server.serve(AccessRequest(red, URI)).xml_text
        green_view = server.serve(AccessRequest(green, URI)).xml_text

        green_only = self.colored_tokens(document, "green") - self.colored_tokens(
            document, "red"
        )
        red_only = self.colored_tokens(document, "red") - self.colored_tokens(
            document, "green"
        )
        for token in green_only:
            assert token not in red_view
        for token in red_only:
            assert token not in green_view

    def test_queries_cannot_leak_across(self):
        server, document = self.build_server()
        red = Requester("red-reader", "1.1.1.1", "a.x")
        green_only = self.colored_tokens(document, "green") - self.colored_tokens(
            document, "red"
        )
        for token in sorted(green_only)[:5]:
            response = server.query(
                QueryRequest(red, URI, f'//*[contains(., "{token}")]')
            )
            assert response.empty, f"query leaked {token!r}"
