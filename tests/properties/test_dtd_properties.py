"""Property-based tests for the DTD engine."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.dtd.content_model import compile_model, match_children
from repro.dtd.generator import InstanceGenerator
from repro.dtd.loosen import loosen
from repro.dtd.model import (
    ChoiceParticle,
    ContentModel,
    ModelKind,
    NameParticle,
    Occurrence,
    SequenceParticle,
)
from repro.dtd.parser import parse_content_model, parse_dtd
from repro.dtd.serializer import serialize_dtd
from repro.dtd.validator import validate
from repro.workloads.scenarios import LAB_DTD_TEXT

names = st.sampled_from(["a", "b", "c", "d", "e"])
occurrences = st.sampled_from(list(Occurrence))


@st.composite
def particles(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return NameParticle(draw(names), draw(occurrences))
    items = draw(
        st.lists(particles(depth=depth - 1), min_size=1, max_size=3)
    )
    cls = draw(st.sampled_from([SequenceParticle, ChoiceParticle]))
    return cls(items, draw(occurrences))


@st.composite
def generated_matches(draw, particle):
    """A child sequence built to match *particle* by construction."""
    occurrence = particle.occurrence
    if occurrence is Occurrence.OPTIONAL:
        repetitions = draw(st.integers(0, 1))
    elif occurrence is Occurrence.ZERO_OR_MORE:
        repetitions = draw(st.integers(0, 2))
    elif occurrence is Occurrence.ONE_OR_MORE:
        repetitions = draw(st.integers(1, 2))
    else:
        repetitions = 1
    out = []
    for _ in range(repetitions):
        if isinstance(particle, NameParticle):
            out.append(particle.name)
        elif isinstance(particle, SequenceParticle):
            for item in particle.items:
                out.extend(draw(generated_matches(item)))
        else:  # ChoiceParticle
            choice = draw(st.sampled_from(particle.items))
            out.extend(draw(generated_matches(choice)))
    return out


class TestContentModelProperties:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_constructed_sequences_match(self, data):
        particle = data.draw(particles())
        sequence = data.draw(generated_matches(particle))
        model = ContentModel(ModelKind.CHILDREN, particle)
        assert match_children(model, sequence), (
            f"{model.unparse()} rejected {sequence}"
        )

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_unknown_name_never_matches(self, data):
        particle = data.draw(particles())
        sequence = data.draw(generated_matches(particle))
        model = ContentModel(ModelKind.CHILDREN, particle)
        poisoned = list(sequence)
        position = data.draw(st.integers(0, len(poisoned)))
        poisoned.insert(position, "zzz")
        assert not match_children(model, poisoned)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_unparse_reparse_same_language(self, data):
        particle = data.draw(particles())
        model = ContentModel(ModelKind.CHILDREN, particle)
        reparsed = parse_content_model(model.unparse())
        for _ in range(3):
            sequence = data.draw(generated_matches(particle))
            assert match_children(reparsed, sequence)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_loosened_model_accepts_original_language(self, data):
        particle = data.draw(particles())
        model = ContentModel(ModelKind.CHILDREN, particle)
        loosened = model.loosened()
        sequence = data.draw(generated_matches(particle))
        assert match_children(loosened, sequence)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_loosened_model_accepts_empty(self, data):
        particle = data.draw(particles())
        loosened = ContentModel(ModelKind.CHILDREN, particle).loosened()
        assert match_children(loosened, [])

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_loosened_accepts_any_subsequence(self, data):
        """The core loosening guarantee: dropping arbitrary children from
        a valid sequence keeps it valid under the loosened model —
        that's exactly what pruning does to element content."""
        particle = data.draw(particles())
        sequence = data.draw(generated_matches(particle))
        keep = data.draw(st.lists(st.booleans(), min_size=len(sequence), max_size=len(sequence)))
        subsequence = [name for name, kept in zip(sequence, keep) if kept]
        loosened = ContentModel(ModelKind.CHILDREN, particle).loosened()
        assert match_children(loosened, subsequence), (
            f"{loosened.unparse()} rejected {subsequence} (from {sequence})"
        )


class TestGeneratorValidatorAgreement:
    @given(st.integers(0, 30), st.floats(0.3, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_generated_lab_instances_always_valid(self, seed, repeat_factor):
        dtd = parse_dtd(LAB_DTD_TEXT)
        generator = InstanceGenerator(dtd, seed=seed, repeat_factor=repeat_factor)
        document = generator.document()
        report = validate(document, dtd)
        assert report.valid, report.violations

    @given(st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_dtd_serialization_round_trip_validates(self, seed):
        dtd = parse_dtd(LAB_DTD_TEXT)
        reparsed = parse_dtd(serialize_dtd(dtd))
        document = InstanceGenerator(dtd, seed=seed).document()
        assert validate(document, reparsed).valid

    @given(st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_loosened_dtd_accepts_valid_instances(self, seed):
        dtd = parse_dtd(LAB_DTD_TEXT)
        document = InstanceGenerator(dtd, seed=seed).document()
        assert validate(document, loosen(dtd)).valid
