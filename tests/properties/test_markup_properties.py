"""Property-based round-trips for the security markup formats."""

import string

from hypothesis import given, settings, strategies as st

from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.authz.restrictions import CredentialClause, ValidityWindow
from repro.authz.xacl import parse_xacl, serialize_xacl
from repro.subjects.hierarchy import SubjectSpec
from repro.subjects.markup import parse_directory, serialize_directory
from repro.subjects.users import Directory

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
group_names = st.sampled_from(["Staff", "Admin", "Foreign", "CS", "Grad"])


@st.composite
def subjects(draw):
    user_group = draw(st.sampled_from(["Public", "Staff", "alice", "bob"]))
    ip = draw(
        st.sampled_from(["*", "151.100.*", "10.0.0.1", "151.*", "203.0.113.9"])
    )
    sym = draw(st.sampled_from(["*", "*.it", "*.lab.com", "tweety.lab.com"]))
    return SubjectSpec.parse(user_group, ip, sym)


@st.composite
def auth_objects(draw):
    uri = draw(st.sampled_from(["http://x/a.xml", "b.xml", "http://x/c.dtd"]))
    has_path = draw(st.booleans())
    if not has_path:
        return AuthObject(uri)
    name = draw(names)
    shape = draw(st.integers(0, 2))
    if shape == 0:
        path = f"//{name}"
    elif shape == 1:
        path = f'//{name}[@kind="{draw(names)}"]'
    else:
        path = f"/{name}/{draw(names)}/@{draw(names)}"
    return AuthObject(uri, path)


@st.composite
def authorizations(draw):
    validity = None
    if draw(st.booleans()):
        start = draw(st.integers(0, 1000))
        validity = ValidityWindow(float(start), float(start + draw(st.integers(1, 1000))))
    credentials = tuple(
        CredentialClause(draw(names), draw(st.sampled_from(["=", "present", ">="])),
                         draw(st.sampled_from(["1", "x", "high"])))
        for _ in range(draw(st.integers(0, 2)))
    )
    return Authorization(
        draw(subjects()),
        draw(auth_objects()),
        draw(st.sampled_from(["read", "write"])),
        Sign(draw(st.sampled_from(["+", "-"]))),
        draw(st.sampled_from(list(AuthType))),
        validity=validity,
        credentials=credentials,
    )


class TestXaclRoundTrip:
    @given(st.lists(authorizations(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_identity(self, auths):
        parsed = parse_xacl(serialize_xacl(auths))
        assert len(parsed) == len(auths)
        for original, restored in zip(auths, parsed):
            assert restored.subject == original.subject
            assert restored.object.uri == original.object.uri
            assert restored.object.path == original.object.path
            assert restored.action == original.action
            assert restored.sign == original.sign
            assert restored.type == original.type
            assert restored.validity == original.validity
            assert restored.credentials == original.credentials

    @given(st.lists(authorizations(), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_compact_and_pretty_agree(self, auths):
        compact = parse_xacl(serialize_xacl(auths, indent=False))
        indented = parse_xacl(serialize_xacl(auths, indent=True))
        assert [a.unparse() for a in compact] == [a.unparse() for a in indented]


@st.composite
def directories(draw):
    directory = Directory()
    groups = draw(st.lists(group_names, unique=True, max_size=4))
    for index, group in enumerate(groups):
        parents = draw(
            st.lists(st.sampled_from(groups[:index]), unique=True, max_size=2)
        ) if index else []
        directory.add_group(group, parents)
    for user in draw(st.lists(names, unique=True, max_size=5)):
        if directory.is_group(user):
            continue
        memberships = draw(
            st.lists(st.sampled_from(groups), unique=True, max_size=3)
        ) if groups else []
        directory.add_user(user, memberships)
    return directory


class TestDirectoryRoundTrip:
    @given(directories())
    @settings(max_examples=50, deadline=None)
    def test_membership_closure_preserved(self, directory):
        restored = parse_directory(serialize_directory(directory))
        assert set(restored.groups()) == set(directory.groups())
        assert set(restored.users()) == set(directory.users())
        for user in directory.users():
            assert restored.expanded_groups(user) == directory.expanded_groups(user)

    @given(directories())
    @settings(max_examples=30, deadline=None)
    def test_serialization_stable(self, directory):
        once = serialize_directory(directory)
        twice = serialize_directory(parse_directory(once))
        assert once == twice
