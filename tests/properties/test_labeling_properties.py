"""Property-based tests for the compute-view invariants.

The three big ones:

1. **Safety / soundness** — the view is always a homomorphic sub-tree of
   the original: every element in the view corresponds to an original
   element on the same path, and no text/attribute value appears that
   the original did not contain at that position.
2. **Equivalence** — the preorder propagation labeler and the naive
   per-node labeler agree on every final sign, for random documents and
   random authorization sets.
3. **Monotonicity (no schema auths)** — adding a *positive* instance
   authorization never shrinks the view under denials-take-precedence
   when no schema-level authorizations exist. (With schema
   authorizations this is provably false — a weak grant can block a
   strong one and then lose to a schema denial — which
   ``test_weak_grant_can_shrink_view_with_schema`` pins down.)
"""

from hypothesis import given, settings, strategies as st

from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.core.baseline import NaiveLabeler
from repro.core.labeling import TreeLabeler
from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy, SubjectSpec
from repro.workloads.generator import synthetic_document
from repro.xml.nodes import Element
from repro.xml.traversal import iter_elements, node_path
from repro.xpath.evaluator import select

URI = "http://bench.example/doc.xml"
DTD_URI = "http://bench.example/doc.dtd"

_NAMES = ("archive", "section", "record", "item", "entry", "block")
_KINDS = ("public", "internal", "private", "restricted")

documents = st.integers(min_value=0, max_value=99).map(
    lambda seed: synthetic_document(150, seed=seed)
)


@st.composite
def authorizations(draw, schema_allowed=True, signs=("+", "-")):
    name = draw(st.sampled_from(_NAMES))
    shape = draw(st.integers(0, 3))
    if shape == 0:
        path = f"//{name}"
    elif shape == 1:
        path = f'//{name}[./@kind="{draw(st.sampled_from(_KINDS))}"]'
    elif shape == 2:
        path = f"//{name}/@kind"
    else:
        path = f"//{name}//{draw(st.sampled_from(_NAMES))}"
    sign = Sign(draw(st.sampled_from(signs)))
    auth_type = draw(st.sampled_from(list(AuthType)))
    is_schema = schema_allowed and draw(st.booleans())
    uri = DTD_URI if is_schema else URI
    return (
        Authorization(
            SubjectSpec.parse("Public"), AuthObject(uri, path), "read", sign, auth_type
        ),
        is_schema,
    )


def split(auth_pairs):
    instance = [a for a, is_schema in auth_pairs if not is_schema]
    schema = [a for a, is_schema in auth_pairs if is_schema]
    return instance, schema


class TestSafety:
    @given(documents, st.lists(authorizations(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_view_is_subtree_of_original(self, document, auth_pairs):
        instance, schema = split(auth_pairs)
        result = compute_view_from_auths(document, instance, schema)
        if result.document.root is None:
            return
        original_paths = {
            node_path(el): el for el in iter_elements(document.root)
        }
        for element in iter_elements(result.document.root):
            path = node_path(element)
            assert path in original_paths, f"fabricated element at {path}"
            original = original_paths[path]
            for attr_name, attr in element.attributes.items():
                assert original.get_attribute(attr_name) == attr.value
            assert element.direct_text() in ("", original.direct_text())

    @given(documents, st.lists(authorizations(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_view_never_larger(self, document, auth_pairs):
        instance, schema = split(auth_pairs)
        result = compute_view_from_auths(document, instance, schema)
        assert result.visible_nodes <= result.total_nodes

    @given(documents, st.lists(authorizations(signs=("-",)), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_denials_only_closed_policy_view_is_empty(self, document, auth_pairs):
        instance, schema = split(auth_pairs)
        result = compute_view_from_auths(document, instance, schema)
        assert result.empty


class TestEquivalence:
    @given(documents, st.lists(authorizations(), max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_fast_and_naive_labelers_agree(self, document, auth_pairs):
        instance, schema = split(auth_pairs)
        hierarchy = SubjectHierarchy()
        fast = TreeLabeler(document, instance, schema, hierarchy).run()
        naive = NaiveLabeler(document, instance, schema, hierarchy).run()
        for node in fast.labels:
            assert fast.labels[node].final == naive.labels[node].final, node_path(node)


class TestMonotonicity:
    @given(
        documents,
        st.lists(authorizations(schema_allowed=False), max_size=6),
        authorizations(schema_allowed=False, signs=("+",)),
    )
    @settings(max_examples=40, deadline=None)
    def test_adding_positive_never_shrinks_without_schema(
        self, document, auth_pairs, extra_pair
    ):
        instance, _ = split(auth_pairs)
        before = compute_view_from_auths(document, instance, [])
        after = compute_view_from_auths(document, instance + [extra_pair[0]], [])
        before_paths = (
            {node_path(el) for el in iter_elements(before.document.root)}
            if before.document.root
            else set()
        )
        after_paths = (
            {node_path(el) for el in iter_elements(after.document.root)}
            if after.document.root
            else set()
        )
        assert before_paths <= after_paths

    def test_weak_grant_can_shrink_view_with_schema(self):
        """The documented counter-example (DESIGN.md note): a positive
        weak authorization blocks a strong ancestor grant and then loses
        to a schema denial, removing a previously visible node."""
        from repro.xml.parser import parse_document

        document = parse_document("<a><b><c>x</c></b></a>", uri=URI)
        grant_all = Authorization(
            SubjectSpec.parse("Public"), AuthObject(URI, "//a"), "read",
            Sign.PLUS, AuthType.RECURSIVE,
        )
        schema_denial = Authorization(
            SubjectSpec.parse("Public"), AuthObject(DTD_URI, "//b"), "read",
            Sign.MINUS, AuthType.RECURSIVE,
        )
        weak_grant = Authorization(
            SubjectSpec.parse("Public"), AuthObject(URI, "//b"), "read",
            Sign.PLUS, AuthType.RECURSIVE_WEAK,
        )
        before = compute_view_from_auths(document, [grant_all], [schema_denial])
        after = compute_view_from_auths(
            document, [grant_all, weak_grant], [schema_denial]
        )
        # Without the weak grant, <b> is protected by the instance-level
        # strong R+ (instance beats schema)...
        assert "<c>x</c>" in str(_text(before))
        # ...adding the "positive" weak grant hands <b> to the schema
        # denial: the view shrinks.
        assert "<c>x</c>" not in str(_text(after))


def _text(result):
    from repro.xml.serializer import serialize

    return serialize(result.document, xml_declaration=False)
