"""Property-based tests for the update engine.

Invariants under random operation batches:

1. **Atomicity** — after any update attempt (applied or refused), the
   stored document is either exactly the pre-state or the full
   post-state of the whole batch; never a prefix.
2. **Validity preservation** — a document that validated before an
   applied update validates after it.
3. **Confinement** — an applied update never changes any node outside
   the requester's write entitlement (checked with unique tokens).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.authz.authorization import Authorization
from repro.dtd.validator import validate
from repro.errors import ReproError
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.server.updates import (
    DeleteNode,
    InsertChild,
    SetAttribute,
    SetText,
    UpdateRequest,
)
from repro.subjects.hierarchy import Requester

URI = "http://x/board.xml"
DTD_URI = "http://x/board.dtd"

BOARD_DTD = """\
<!ELEMENT board (card*)>
<!ELEMENT card (text, tag*)>
<!ATTLIST card owner CDATA #REQUIRED prio CDATA "0">
<!ELEMENT text (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""


def build_board(seed: int) -> str:
    rng = random.Random(seed)
    cards = []
    for index in range(rng.randint(2, 6)):
        owner = rng.choice(["alice", "bob"])
        tags = "".join(
            f"<tag>t{index}{t}</tag>" for t in range(rng.randint(0, 2))
        )
        cards.append(
            f'<card owner="{owner}" prio="{rng.randint(0, 5)}">'
            f"<text>card {index} body</text>{tags}</card>"
        )
    return "<board>" + "".join(cards) + "</board>"


def build_server(seed: int) -> SecureXMLServer:
    server = SecureXMLServer()
    server.add_user("alice")
    server.add_user("bob")
    server.publish_dtd(DTD_URI, BOARD_DTD)
    server.publish_document(URI, build_board(seed), dtd_uri=DTD_URI)
    # alice can write only her own cards; both can read everything.
    server.grant(Authorization.build("Public", URI, "+", "R"))
    server.grant(
        Authorization.build(
            ("alice", "*", "*"), f"{URI}://card[@owner='alice']", "+", "R",
            action="write",
        )
    )
    server.grant(
        Authorization.build(
            ("alice", "*", "*"), f"{URI}://board", "+", "L", action="write"
        )
    )
    return server


operations = st.lists(
    st.one_of(
        st.builds(
            SetText,
            target=st.sampled_from(
                ["//card[@owner='alice']/text", "//card[@owner='bob']/text", "//text"]
            ),
            text=st.sampled_from(["edited", "rewritten"]),
        ),
        st.builds(
            SetAttribute,
            target=st.sampled_from(["//card[@owner='alice']", "//card"]),
            name=st.just("prio"),
            value=st.sampled_from(["7", "9"]),
        ),
        st.builds(
            InsertChild,
            target=st.sampled_from(["//card[@owner='alice']", "//board"]),
            fragment=st.sampled_from(
                ["<tag>new</tag>", '<card owner="alice"><text>n</text></card>']
            ),
        ),
        st.builds(
            DeleteNode,
            target=st.sampled_from(
                ["//card[@owner='alice']", "//card[@owner='bob']", "//tag"]
            ),
        ),
    ),
    min_size=1,
    max_size=4,
)


def served(server) -> str:
    return server.serve(
        AccessRequest(Requester("bob", "9.9.9.9", "b.x"), URI)
    ).xml_text


class TestUpdateInvariants:
    @given(st.integers(0, 30), operations)
    @settings(max_examples=60, deadline=None)
    def test_atomicity_and_validity(self, seed, ops):
        server = build_server(seed)
        alice = Requester("alice", "1.1.1.1", "a.x")
        before = served(server)
        try:
            server.update(UpdateRequest(alice, URI, tuple(ops)))
            applied = True
        except ReproError:
            applied = False
        after = served(server)
        if not applied:
            assert after == before, "refused update mutated the document"
        # Whatever happened, the stored document still validates.
        document = server.repository.document(URI)
        report = validate(document, server.repository.dtd(DTD_URI))
        assert report.valid, report.violations

    @given(st.integers(0, 30), operations)
    @settings(max_examples=60, deadline=None)
    def test_confinement_to_write_entitlement(self, seed, ops):
        """Bob's cards' text content never changes under Alice's ops
        (insertion under <board> is allowed by her L grant, but existing
        bob-owned content must be byte-identical)."""
        server = build_server(seed)
        alice = Requester("alice", "1.1.1.1", "a.x")
        from repro.xpath.evaluator import select

        def bob_texts():
            document = server.repository.document(URI)
            return [
                node.text()
                for node in select("//card[@owner='bob']/text", document)
            ]

        before = bob_texts()
        try:
            server.update(UpdateRequest(alice, URI, tuple(ops)))
        except ReproError:
            pass
        assert bob_texts() == before

    @given(st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_bob_with_no_write_grant_changes_nothing(self, seed):
        server = build_server(seed)
        bob = Requester("bob", "2.2.2.2", "b.x")
        before = served(server)
        for operation in (
            SetText("//text", "x"),
            DeleteNode("//card"),
            SetAttribute("//card", "prio", "9"),
            InsertChild("//board", "<card owner='bob'><text>n</text></card>"),
        ):
            try:
                server.update(UpdateRequest.of(bob, URI, operation))
                raise AssertionError("bob's update was not denied")
            except ReproError:
                pass
        assert served(server) == before
