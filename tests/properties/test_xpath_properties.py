"""Property-based tests for the XPath engine."""

from hypothesis import given, settings, strategies as st

from repro.workloads.generator import synthetic_document
from repro.xml.traversal import document_order, iter_elements
from repro.xpath.evaluator import select
from repro.xpath.parser import parse_xpath

_NAMES = ("archive", "section", "record", "item", "entry", "block")
_FIELDS = ("title", "body", "note", "value", "info")
_KINDS = ("public", "internal", "private", "restricted")

documents = st.integers(min_value=0, max_value=49).map(
    lambda seed: synthetic_document(120, seed=seed)
)


@st.composite
def path_expressions(draw):
    """Random but well-formed path expressions over the synthetic
    vocabulary."""
    parts = []
    absolute = draw(st.booleans())
    for _ in range(draw(st.integers(1, 3))):
        name = draw(st.sampled_from(_NAMES + _FIELDS + ("*",)))
        step = name
        shape = draw(st.integers(0, 3))
        if shape == 1:
            step += f'[./@kind="{draw(st.sampled_from(_KINDS))}"]'
        elif shape == 2:
            step += f"[{draw(st.integers(1, 3))}]"
        elif shape == 3:
            step += "[@id]"
        parts.append(step)
    separator = draw(st.sampled_from(["/", "//"]))
    body = separator.join(parts)
    return ("//" if absolute else "") + body if absolute else body


class TestEvaluationInvariants:
    @given(documents, path_expressions())
    @settings(max_examples=60, deadline=None)
    def test_results_unique_and_in_document_order(self, document, expression):
        result = select(expression, document)
        assert len(set(result)) == len(result)
        order = document_order(document)
        positions = [order[node] for node in result]
        assert positions == sorted(positions)

    @given(documents, path_expressions())
    @settings(max_examples=60, deadline=None)
    def test_results_belong_to_document(self, document, expression):
        order = document_order(document)
        for node in select(expression, document):
            assert node in order

    @given(documents, path_expressions())
    @settings(max_examples=40, deadline=None)
    def test_unparse_evaluates_identically(self, document, expression):
        ast = parse_xpath(expression)
        rendered = ast.unparse()
        assert select(expression, document) == select(rendered, document)

    @given(documents)
    @settings(max_examples=20, deadline=None)
    def test_double_slash_star_is_all_elements(self, document):
        result = select("//*", document)
        assert result == list(iter_elements(document.root))

    @given(documents, st.sampled_from(_NAMES))
    @settings(max_examples=30, deadline=None)
    def test_descendant_axis_equivalent_to_double_slash(self, document, name):
        assert select(f"//{name}", document) == select(
            f"/descendant-or-self::node()/child::{name}", document
        )

    @given(documents, st.sampled_from(_NAMES))
    @settings(max_examples=30, deadline=None)
    def test_parent_of_child_is_self(self, document, name):
        for node in select(f"//{name}", document)[:10]:
            for child in select("*", node):
                assert select("..", child) == [node]

    @given(documents, path_expressions())
    @settings(max_examples=30, deadline=None)
    def test_union_with_self_is_idempotent(self, document, expression):
        single = select(expression, document)
        doubled = select(f"{expression} | {expression}", document)
        assert single == doubled

    @given(documents, path_expressions())
    @settings(max_examples=30, deadline=None)
    def test_count_agrees_with_selection(self, document, expression):
        from repro.xpath.evaluator import evaluate

        assert evaluate(f"count({expression})", document) == float(
            len(select(expression, document))
        )
