"""Property-based tests for the XML substrate (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.xml.builder import E, new_document
from repro.xml.escape import escape_attribute, escape_text, resolve_references
from repro.xml.nodes import Element, Text
from repro.xml.parser import parse_document
from repro.xml.serializer import element_signature, serialize
from repro.xml.traversal import count_nodes, postorder, preorder

# Text free of control characters the XML spec forbids.
xml_text = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc", "Cn"),
        include_characters="\t\n",
    ),
    max_size=60,
)

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def elements(draw, max_depth=3):
    """Random element trees with attributes and text."""
    element = Element(draw(names))
    for attr_name in draw(st.lists(names, max_size=3, unique=True)):
        element.set_attribute(attr_name, draw(xml_text))
    if max_depth > 0:
        for child_kind in draw(st.lists(st.sampled_from(["el", "tx"]), max_size=4)):
            if child_kind == "el":
                element.append(draw(elements(max_depth=max_depth - 1)))
            else:
                # Normalize the way a parser would: no empty text nodes,
                # no two adjacent text nodes.
                data = draw(xml_text)
                last = element.children[-1] if element.children else None
                if not data or isinstance(last, Text):
                    continue
                element.append(Text(data))
    return element


class TestEscapeRoundTrip:
    @given(xml_text)
    def test_text_escape_round_trip(self, text):
        assert resolve_references(escape_text(text)) == text

    @given(xml_text)
    def test_attribute_escape_round_trip(self, value):
        assert resolve_references(escape_attribute(value)) == value

    @given(xml_text)
    def test_escaped_text_has_no_raw_markup(self, text):
        escaped = escape_text(text)
        assert "<" not in escaped
        body = escaped
        for entity in ("&amp;", "&lt;", "&gt;"):
            body = body.replace(entity, "")
        assert "&" not in body


class TestParseSerializeRoundTrip:
    @given(elements())
    @settings(max_examples=60)
    def test_structure_preserved(self, root):
        document = new_document(root)
        text = serialize(document, xml_declaration=False)
        reparsed = parse_document(text)
        assert element_signature(reparsed.root) == element_signature(root)

    @given(elements())
    @settings(max_examples=40)
    def test_serialization_deterministic(self, root):
        document = new_document(root)
        assert serialize(document) == serialize(document)

    @given(elements())
    @settings(max_examples=40)
    def test_clone_preserves_signature(self, root):
        assert element_signature(root.clone()) == element_signature(root)


class TestTraversalInvariants:
    @given(elements())
    @settings(max_examples=40)
    def test_preorder_postorder_same_nodes(self, root):
        assert set(preorder(root)) == set(postorder(root))

    @given(elements())
    @settings(max_examples=40)
    def test_count_matches_traversal(self, root):
        assert count_nodes(root) == sum(1 for _ in preorder(root))

    @given(elements())
    @settings(max_examples=40)
    def test_parents_consistent(self, root):
        for node in preorder(root):
            if node is root:
                continue
            parent = node.parent
            assert parent is not None
            from repro.xml.nodes import Attribute

            if isinstance(node, Attribute):
                assert parent.attributes[node.name] is node
            else:
                assert any(child is node for child in parent.children)
