"""Fleet observability through the pool: cross-process trace
stitching, metrics harvesting, SLO windows, tracer fork hygiene and
worker/shard-stamped audit records.

One pool per test class (module-scoped fixtures would couple restart
tests to trace tests); corpora are small — these tests assert
plumbing, not throughput.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs.fleet import lint_prometheus
from repro.obs.trace import Tracer, current_tracer, tracing
from repro.server.pool import ShardedServerPool
from repro.server.supervisor import RestartPolicy
from repro.testing.faults import FaultPlan, FaultSpec
from repro.workloads.traffic import TrafficSpec, request_stream

SPEC = TrafficSpec(documents=4, nodes_per_document=120, seed=31)


def _serve_all(pool, count=12, seed=2, **kwargs):
    requests = list(request_stream(SPEC, count, seed=seed))
    outcomes = pool.serve_many(requests, timeout=120, **kwargs)
    assert all(outcome.ok for outcome in outcomes), [
        outcome.error for outcome in outcomes if not outcome.ok
    ]
    return outcomes


def _tracer_must_be_clean(shard_ids, num_shards):
    """A pool setup that refuses to boot under a leaked parent tracer."""
    if current_tracer() is not None:
        raise RuntimeError("parent tracer leaked across fork into worker")
    return SPEC.build_server(shard_ids, num_shards)


class TestTraceStitching:
    def test_one_stitched_tree_per_request(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            request = next(iter(request_stream(SPEC, 1, seed=4, query_share=0)))
            with tracing(Tracer()) as tracer:
                pool.serve(request, timeout=120)
        names = [span.name for span in tracer.spans]
        # Dispatcher-side synthesized spans...
        assert "pool.dispatch" in names
        assert "pool.queue_wait" in names
        assert "pool.ipc" in names
        # ...and the worker-side pipeline spans, grafted in.
        assert "request.serve" in names
        assert any(name.startswith("label") for name in names)

        tree = {span.name: span for span in tracer.span_tree()}
        dispatch = tree["pool.dispatch"]
        queue_wait = tree["pool.queue_wait"]
        ipc = tree["pool.ipc"]
        serve = tree["request.serve"]
        # Containment: queue_wait and ipc partition dispatch; the
        # worker subtree sits inside ipc.
        assert dispatch.depth == 0
        assert queue_wait.depth == ipc.depth == 1
        assert serve.depth == 2
        assert dispatch.started <= queue_wait.started
        assert queue_wait.started + queue_wait.duration <= (
            ipc.started + 1e-9
        )
        assert ipc.started - 1e-9 <= serve.started
        assert (
            serve.started + serve.duration
            <= ipc.started + ipc.duration + 1e-9
        )
        assert dispatch.tags["outcome"] == "ok"
        assert "trace_id" in dispatch.tags

    def test_export_chrome_renders_the_merged_timeline(self, tmp_path):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            request = next(iter(request_stream(SPEC, 1, seed=4, query_share=0)))
            with tracing(Tracer()) as tracer:
                pool.serve(request, timeout=120)
        path = tmp_path / "trace.json"
        text = tracer.export_chrome(str(path))
        events = json.loads(text)["traceEvents"]
        assert json.loads(path.read_text()) == json.loads(text)
        names = {event["name"] for event in events}
        assert {"pool.dispatch", "pool.ipc", "request.serve"} <= names
        assert all(event["ph"] == "X" for event in events)

    def test_untraced_requests_ship_no_context(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            outcomes = _serve_all(pool)
            assert all(outcome.ok for outcome in outcomes)
            # No tracer active: nothing stitched anywhere, and the
            # request still resolves (the wire tolerates ctx=None).


class TestTracerForkHygiene:
    def test_worker_boots_untraced_even_when_parent_traces(self):
        # The pool forks while this thread's tracer is active; without
        # reset_tracing() at worker boot the setup below would raise
        # and the pool would never come up.
        with tracing(Tracer()):
            with ShardedServerPool(_tracer_must_be_clean, workers=2) as pool:
                pool.wait_ready()
                _serve_all(pool, count=4)

    def test_restarted_worker_also_boots_untraced(self):
        with tracing(Tracer()):
            with ShardedServerPool(
                _tracer_must_be_clean,
                workers=1,
                restart_policy=RestartPolicy(base_delay=0.01, cap=0.1),
                breaker_threshold=100,
            ) as pool:
                pool.wait_ready()
                pool._kill_slot(pool._slots[0], "test-kill")
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if (
                        pool._slots[0].state == "up"
                        and pool._slots[0].restarts > 0
                    ):
                        break
                    time.sleep(0.01)
                assert pool._slots[0].restarts > 0
                _serve_all(pool, count=4)


class TestHarvesting:
    def test_deep_stats_conserve_worker_counts(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            _serve_all(pool, count=16)
            stats = pool.stats(deep=True)
            fleet_total = pool.fleet.counter_total("requests_total")
        dispatched = sum(
            value
            for outcome, value in stats["outcomes"].items()
            if outcome in ("ok", "error")
        )
        assert fleet_total == dispatched == 16
        json.dumps(stats)  # the whole deep snapshot stays JSON-safe
        assert stats["slo"]["pool.e2e"]["count"] == 16
        assert set(stats["fleet"]["workers"]) == {"0", "1"}

    def test_harvest_off_keeps_fleet_empty(self):
        with ShardedServerPool(
            SPEC.build_server, workers=2, harvest=False
        ) as pool:
            pool.wait_ready()
            _serve_all(pool)
            stats = pool.stats(deep=True)
        assert stats["fleet"]["workers"] == {}
        assert pool.fleet.counter_total("requests_total") == 0

    def test_merged_prometheus_is_lint_clean_with_worker_labels(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            _serve_all(pool)
            pool.stats(deep=True)
            pool._update_gauges()
            pool._refresh_slo_gauges()
            text = pool.render_prometheus()
            dispatcher_only = pool.render_prometheus(fleet=False)
        assert lint_prometheus(text) == []
        assert 'requests_total{kind="serve",outcome="released",worker="' in text
        assert "pool_worker_shards{" in text
        assert "pool_slo_seconds{" in text
        assert 'worker_shards' not in dispatcher_only

    def test_restart_resets_deltas_without_double_counting(self):
        plan = FaultPlan(
            [FaultSpec("pool.worker.crash", times=1, after=4, worker=0)]
        )
        with ShardedServerPool(
            SPEC.build_server,
            workers=1,
            fault_plan=plan,
            restart_policy=RestartPolicy(base_delay=0.01, cap=0.1),
            breaker_threshold=100,
        ) as pool:
            pool.wait_ready()
            requests = list(request_stream(SPEC, 20, seed=6))
            outcomes = pool.serve_many(requests, timeout=120)
            ok = sum(1 for outcome in outcomes if outcome.ok)
            errors = sum(
                1
                for outcome in outcomes
                if outcome.error is not None
                and type(outcome.error).__name__ not in ("WorkerLost",)
            )
            stats = pool.stats(deep=True)
            fleet_total = pool.fleet.counter_total("requests_total")
            restarts = stats["pool"]["restarts_total"]
        assert restarts >= 1
        dispatched = sum(
            value
            for outcome_name, value in stats["outcomes"].items()
            if outcome_name in ("ok", "error")
        )
        assert fleet_total == dispatched
        assert ok == dispatched - errors


class TestSloWindows:
    def test_queue_wait_plus_service_bounds_e2e(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            _serve_all(pool, count=10)
            slo = pool.slo.summary()
        assert set(slo) >= {"pool.e2e", "pool.queue_wait", "pool.service"}
        assert slo["pool.queue_wait"]["p50"] <= slo["pool.e2e"]["p50"]
        assert slo["pool.service"]["p50"] <= slo["pool.e2e"]["p50"]

    def test_slo_gauges_published_by_supervisor_tick(self):
        with ShardedServerPool(SPEC.build_server, workers=2) as pool:
            pool.wait_ready()
            _serve_all(pool, count=6)
            pool.supervisor.tick()
            value = pool.metrics.value(
                "pool_slo_seconds", stage="pool.e2e", quantile="p99"
            )
        assert value is not None and value > 0


def _audited_setup(shard_ids, num_shards):
    """Attach a per-process JSONL sink so the parent can read worker
    audit records back from disk (each worker writes its own file)."""
    from repro.server.audit_sink import JsonlAuditSink

    server = SPEC.build_server(shard_ids, num_shards)
    directory = os.environ["REPRO_TEST_AUDIT_DIR"]
    server.audit.sink = JsonlAuditSink(
        os.path.join(directory, f"audit-{os.getpid()}.jsonl")
    )
    return server


class TestPooledAuditProvenance:
    def test_worker_records_carry_worker_and_shard(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_AUDIT_DIR", str(tmp_path))
        with ShardedServerPool(_audited_setup, workers=2, shards=4) as pool:
            pool.wait_ready()
            _serve_all(pool, count=12)
        records = []
        for name in os.listdir(tmp_path):
            with open(tmp_path / name, "r", encoding="utf-8") as handle:
                records.extend(json.loads(line) for line in handle if line.strip())
        assert records
        workers_seen = {record["worker"] for record in records}
        assert workers_seen <= {0, 1} and len(workers_seen) == 2
        for record in records:
            assert record["shard"] in (0, 1, 2, 3)
            # Consistent hash: the worker that wrote it owns the shard.
            assert record["shard"] % 2 == record["worker"]

    def test_audit_query_filters_by_worker_and_shard(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        tool = (
            pathlib.Path(__file__).resolve().parents[2]
            / "tools"
            / "audit_query.py"
        )
        spec = importlib.util.spec_from_file_location("audit_query", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        audit_main = module.main

        log = tmp_path / "audit.jsonl"
        rows = [
            {"timestamp": 1.0, "requester": "u", "uri": "a", "action": "read",
             "outcome": "released", "worker": 0, "shard": 2},
            {"timestamp": 2.0, "requester": "u", "uri": "b", "action": "read",
             "outcome": "released", "worker": 1, "shard": 3},
            {"timestamp": 3.0, "requester": "u", "uri": "c", "action": "read",
             "outcome": "released"},
        ]
        log.write_text("\n".join(json.dumps(row) for row in rows) + "\n")

        assert audit_main([str(log), "--worker", "1", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert [record["uri"] for record in out] == ["b"]

        assert audit_main([str(log), "--shard", "2", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert [record["uri"] for record in out] == ["a"]

        assert audit_main([str(log), "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 3

    def test_parent_supervision_records_carry_worker(self):
        plan = FaultPlan(
            [FaultSpec("pool.worker.crash", times=1, after=1, worker=0)]
        )
        with ShardedServerPool(
            SPEC.build_server,
            workers=1,
            fault_plan=plan,
            restart_policy=RestartPolicy(base_delay=0.01, cap=0.1),
            breaker_threshold=100,
        ) as pool:
            pool.wait_ready()
            requests = list(request_stream(SPEC, 8, seed=6))
            pool.serve_many(requests, timeout=120)
            supervision = [
                record
                for record in pool.audit
                if record.action == "supervise"
            ]
        assert supervision
        assert all(record.worker == 0 for record in supervision)
