"""Tests for the audit log."""

from repro.server.audit import AuditLog, AuditRecord
from repro.subjects.hierarchy import Requester


def record(log, outcome="released", uri="http://x/d.xml"):
    return log.record(
        Requester("alice", "1.1.1.1", "a.x"),
        uri,
        "read",
        outcome,
        visible_nodes=3,
        total_nodes=10,
        elapsed_seconds=0.002,
    )


class TestAuditLog:
    def test_record_fields(self):
        log = AuditLog()
        entry = record(log)
        assert entry.outcome == "released"
        assert entry.visible_nodes == 3
        assert entry.total_nodes == 10
        assert "alice" in entry.requester
        assert entry.timestamp > 0

    def test_iteration_and_len(self):
        log = AuditLog()
        for _ in range(5):
            record(log)
        assert len(log) == 5
        assert len(list(log)) == 5

    def test_capacity_bounded(self):
        log = AuditLog(capacity=3)
        for index in range(10):
            record(log, uri=f"http://x/{index}.xml")
        assert len(log) == 3
        assert log.tail(3)[-1].uri == "http://x/9.xml"

    def test_tail(self):
        log = AuditLog()
        for index in range(5):
            record(log, uri=f"http://x/{index}.xml")
        tail = log.tail(2)
        assert [entry.uri for entry in tail] == ["http://x/3.xml", "http://x/4.xml"]

    def test_sink_forwarding(self):
        forwarded = []
        log = AuditLog(sink=forwarded.append)
        entry = record(log)
        assert forwarded == [entry]

    def test_clear(self):
        log = AuditLog()
        record(log)
        log.clear()
        assert len(log) == 0

    def test_str_rendering(self):
        log = AuditLog()
        entry = record(log)
        rendered = str(entry)
        assert "alice" in rendered
        assert "3/10 nodes" in rendered
        assert "released" in rendered

    def test_record_is_frozen(self):
        import dataclasses

        log = AuditLog()
        entry = record(log)
        try:
            entry.outcome = "tampered"
            tampered = True
        except dataclasses.FrozenInstanceError:
            tampered = False
        assert not tampered


class TestRingBound:
    def test_deque_maxlen_enforced_structurally(self):
        log = AuditLog(capacity=4)
        assert log._records.maxlen == 4

    def test_never_exceeds_capacity_and_drops_oldest_first(self):
        log = AuditLog(capacity=3)
        for index in range(50):
            record(log, uri=f"http://x/{index}.xml")
            assert len(log) <= 3
        assert [entry.uri for entry in log] == [
            "http://x/47.xml",
            "http://x/48.xml",
            "http://x/49.xml",
        ]

    def test_seed_records_trimmed_on_construction(self):
        from collections import deque

        donor = AuditLog()
        for index in range(6):
            record(donor, uri=f"http://x/{index}.xml")
        log = AuditLog(capacity=2, _records=deque(donor))
        assert len(log) == 2
        assert log.tail(1)[0].uri == "http://x/5.xml"


class TestJsonRoundTrip:
    def test_every_field_survives(self):
        log = AuditLog()
        entry = log.record(
            Requester("bob", "2.2.2.2", "b.y"),
            "http://x/d.xml",
            "explain",
            "released",
            visible_nodes=7,
            total_nodes=11,
            elapsed_seconds=0.034,
            detail="3 target(s)",
            backend="stream",
        )
        clone = AuditRecord.from_json(entry.to_json())
        assert clone == entry

    def test_unknown_keys_ignored(self):
        import json

        log = AuditLog()
        entry = record(log)
        data = json.loads(entry.to_json())
        data["future_field"] = "whatever"
        clone = AuditRecord.from_json(json.dumps(data))
        assert clone == entry

    def test_backend_defaults_to_dom(self):
        log = AuditLog()
        entry = record(log)
        assert entry.backend == "dom"
        legacy = AuditRecord.from_json(
            '{"timestamp":1.0,"requester":"r","uri":"u",'
            '"action":"read","outcome":"released"}'
        )
        assert legacy.backend == "dom"


class TestSinkContainment:
    def test_raising_sink_keeps_ring_and_counts_error(self):
        from repro.obs.metrics import METRICS

        def bad_sink(entry):
            raise OSError("disk on fire")

        log = AuditLog(sink=bad_sink)
        entry = record(log)
        assert list(log) == [entry]
        assert METRICS.value("audit_sink_errors_total") == 1
