"""Tests for the audit log."""

from repro.server.audit import AuditLog, AuditRecord
from repro.subjects.hierarchy import Requester


def record(log, outcome="released", uri="http://x/d.xml"):
    return log.record(
        Requester("alice", "1.1.1.1", "a.x"),
        uri,
        "read",
        outcome,
        visible_nodes=3,
        total_nodes=10,
        elapsed_seconds=0.002,
    )


class TestAuditLog:
    def test_record_fields(self):
        log = AuditLog()
        entry = record(log)
        assert entry.outcome == "released"
        assert entry.visible_nodes == 3
        assert entry.total_nodes == 10
        assert "alice" in entry.requester
        assert entry.timestamp > 0

    def test_iteration_and_len(self):
        log = AuditLog()
        for _ in range(5):
            record(log)
        assert len(log) == 5
        assert len(list(log)) == 5

    def test_capacity_bounded(self):
        log = AuditLog(capacity=3)
        for index in range(10):
            record(log, uri=f"http://x/{index}.xml")
        assert len(log) == 3
        assert log.tail(3)[-1].uri == "http://x/9.xml"

    def test_tail(self):
        log = AuditLog()
        for index in range(5):
            record(log, uri=f"http://x/{index}.xml")
        tail = log.tail(2)
        assert [entry.uri for entry in tail] == ["http://x/3.xml", "http://x/4.xml"]

    def test_sink_forwarding(self):
        forwarded = []
        log = AuditLog(sink=forwarded.append)
        entry = record(log)
        assert forwarded == [entry]

    def test_clear(self):
        log = AuditLog()
        record(log)
        log.clear()
        assert len(log) == 0

    def test_str_rendering(self):
        log = AuditLog()
        entry = record(log)
        rendered = str(entry)
        assert "alice" in rendered
        assert "3/10 nodes" in rendered
        assert "released" in rendered

    def test_record_is_frozen(self):
        import dataclasses

        log = AuditLog()
        entry = record(log)
        try:
            entry.outcome = "tampered"
            tampered = True
        except dataclasses.FrozenInstanceError:
            tampered = False
        assert not tampered
