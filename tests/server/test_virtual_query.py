"""The virtual query path through the facade (docs/VIEWS.md).

Contract:

- ``query(..., virtual=True)`` returns exactly the materialized
  answer, byte for byte — including when the expression falls outside
  the rewritable subset and the server transparently falls back;
- the rewrite path never materializes a view (no ``prune`` stage) and
  reuses oracles across requests of one effective-permission class;
- ``rewrite_requests_total`` / ``rewrite_fallback_total`` /
  ``effective_class_collisions_total`` tell the same story the
  timings and audit records do.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.limits import ResourceLimits
from repro.server.cache import ViewCache
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester

URI = "http://x/records.xml"

RECORDS = (
    "<records>"
    "<rec owner='alice' level='public'><body>a-pub</body><cost>10</cost></rec>"
    "<rec owner='alice' level='secret'><body>a-sec</body><cost>20</cost></rec>"
    "<rec owner='bob' level='public'><body>b-pub</body><cost>30</cost></rec>"
    "</records>"
)


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_group("Staff")
    s.add_user("alice", groups=["Staff"])
    s.add_user("amy", groups=["Staff"])
    s.add_user("ann", groups=["Staff"])
    s.add_user("bob")
    s.publish_document(URI, RECORDS)
    s.grant(Authorization.build("Staff", f"{URI}://rec[@owner='alice']", "+", "R"))
    s.grant(Authorization.build("Public", f"{URI}://rec[@level='public']", "+", "R"))
    s.grant(Authorization.build("Public", f"{URI}://rec[@level='secret']/body", "-", "R"))
    return s


def staff(name="alice"):
    return Requester(name, "10.0.0.1", "pc.lab.com")


def bob():
    return Requester("bob", "10.0.0.2", "pc2.lab.com")


QUERIES = [
    "//rec",
    "//rec[@owner='alice']",
    "//body/text()",
    "//rec[cost > 15]",
    "//rec[contains(body, 'pub')]",
    "//rec[2]",
    "//rec[position() = last()]",
    "//cost | //body",
    "/",
    "//rec[lang('en')]",  # outside the subset: transparent fallback
]


class TestByteIdentity:
    @pytest.mark.parametrize("requester", [staff(), bob(), Requester()])
    def test_virtual_equals_materialized(self, server, requester):
        for query in QUERIES:
            materialized = server.query(QueryRequest(requester, URI, query))
            virtual = server.query(
                QueryRequest(requester, URI, query), virtual=True
            )
            assert virtual.matches == materialized.matches, query
            assert virtual.xml_text == materialized.xml_text, query
            assert virtual.empty == materialized.empty, query

    def test_hidden_content_not_probeable(self, server):
        response = server.query(
            QueryRequest(bob(), URI, "//rec[body = 'a-sec']"), virtual=True
        )
        assert response.empty

    def test_fully_denied_document_is_empty(self, server):
        opaque = "http://x/opaque.xml"
        server.publish_document(opaque, "<d><x>1</x></d>")
        response = server.query(
            QueryRequest(bob(), opaque, "//x"), virtual=True
        )
        assert response.empty
        assert response.matches == []


class TestNoMaterialization:
    def test_rewrite_spans_present_prune_absent(self, server):
        response = server.query(
            QueryRequest(staff(), URI, "//rec"), virtual=True
        )
        assert "rewrite.plan" in response.timings
        assert "rewrite.eval" in response.timings
        assert "prune" not in response.timings
        assert "label.propagate" not in response.timings

    def test_fallback_runs_materialized_stages(self, server):
        response = server.query(
            QueryRequest(staff(), URI, "//rec[lang('en')]"), virtual=True
        )
        assert "rewrite.plan" in response.timings  # the attempt
        assert "rewrite.eval" not in response.timings
        assert "prune" in response.timings  # the fallback materialized

    def test_oracle_reused_within_a_class(self, server):
        first = server.query(QueryRequest(staff(), URI, "//rec"), virtual=True)
        assert "authz.bind" in first.timings
        assert "label.bind" in first.timings
        second = server.query(
            QueryRequest(staff(), URI, "//body"), virtual=True
        )
        assert "authz.bind" not in second.timings
        assert "label.bind" not in second.timings

    def test_equivalent_requesters_share_one_oracle(self, server):
        for name in ("alice", "amy", "ann"):
            server.query(QueryRequest(staff(name), URI, "//rec"), virtual=True)
        assert len(server._oracles) == 1
        assert server.metrics.value("effective_class_collisions_total") == 2

    def test_grant_invalidates_shared_oracle(self, server):
        before = server.query(QueryRequest(staff(), URI, "//rec"), virtual=True)
        server.grant(
            Authorization.build("Staff", f"{URI}://rec[@owner='alice']", "-", "R")
        )
        after = server.query(QueryRequest(staff(), URI, "//rec"), virtual=True)
        assert "authz.bind" in after.timings  # rebuilt, not reused
        assert len(after.matches) < len(before.matches)


class TestMetrics:
    def test_rewritten_outcome_counted(self, server):
        server.query(QueryRequest(staff(), URI, "//rec"), virtual=True)
        assert server.metrics.value("rewrite_requests_total", outcome="rewritten") == 1
        assert server.metrics.value("rewrite_fallback_total") is None

    def test_fallback_counted_with_reason(self, server):
        server.query(
            QueryRequest(staff(), URI, "//rec[lang('en')]"), virtual=True
        )
        assert server.metrics.value("rewrite_requests_total", outcome="fallback") == 1
        assert (
            server.metrics.value("rewrite_fallback_total", reason="function:lang") == 1
        )

    def test_plain_queries_never_touch_rewrite_metrics(self, server):
        server.query(QueryRequest(staff(), URI, "//rec"))
        assert server.metrics.value("rewrite_requests_total", outcome="rewritten") is None


class TestGuards:
    def test_deadline_trip_is_structured_and_audited_virtual(self, server):
        response = server.query(
            QueryRequest(staff(), URI, "//rec"),
            limits=ResourceLimits(deadline_seconds=0.0),
            virtual=True,
        )
        assert not response.ok
        assert response.error_kind == "deadline-exceeded"
        record = server.audit.tail(1)[0]
        assert record.outcome == "error"
        assert record.backend == "virtual"
        assert server.metrics.value("rewrite_requests_total", outcome="error") == 1

    def test_step_limit_applies_to_rewritten_evaluation(self, server):
        response = server.query(
            QueryRequest(staff(), URI, "//rec[body]"),
            limits=ResourceLimits(max_xpath_steps=1),
            virtual=True,
        )
        assert not response.ok
        assert response.error_kind == "limit-exceeded"


class TestAudit:
    def test_virtual_backend_recorded(self, server):
        server.query(QueryRequest(staff(), URI, "//rec"), virtual=True)
        record = server.audit.tail(1)[0]
        assert record.backend == "virtual"
        assert "query[//rec]" in record.action

    def test_fallback_records_materialized_backend(self, server):
        server.query(
            QueryRequest(staff(), URI, "//rec[lang('en')]"), virtual=True
        )
        record = server.audit.tail(1)[0]
        assert record.backend == "dom"


class TestClassKeyedViewCache:
    def test_equivalent_requesters_share_one_view_entry(self):
        cache = ViewCache()
        server = SecureXMLServer(view_cache=cache)
        server.add_group("Staff")
        for name in ("alice", "amy", "ann"):
            server.add_user(name, groups=["Staff"])
        server.publish_document(URI, RECORDS)
        server.grant(Authorization.build("Staff", f"{URI}://rec", "+", "R"))
        for name in ("alice", "amy", "ann"):
            server.serve(AccessRequest(staff(name), URI))
        assert len(cache) == 1
        assert server.metrics.value("effective_class_collisions_total") == 2
