"""Tests for the SecureXMLServer facade."""

import pytest

from repro.authz.authorization import Authorization
from repro.errors import RepositoryError
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import PolicyConfig, SecureXMLServer
from repro.subjects.hierarchy import Requester

URI = "http://x/notes.xml"
DTD_URI = "http://x/notes.dtd"

NOTES = (
    "<notes>"
    "<note owner='alice' level='public'>a-public</note>"
    "<note owner='alice' level='secret'>a-secret</note>"
    "<note owner='bob' level='public'>b-public</note>"
    "</notes>"
)


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_group("Staff")
    s.add_user("alice", groups=["Staff"])
    s.add_user("bob")
    s.publish_dtd(
        DTD_URI,
        "<!ELEMENT notes (note*)><!ELEMENT note (#PCDATA)>"
        "<!ATTLIST note owner CDATA #REQUIRED level CDATA #REQUIRED>",
    )
    s.publish_document(URI, NOTES, dtd_uri=DTD_URI)
    s.grant(Authorization.build("Staff", f"{URI}://note[@owner='alice']", "+", "RW"))
    s.grant(Authorization.build("Public", f"{URI}://note[@level='public']", "+", "R"))
    s.grant(Authorization.build("Public", f"{DTD_URI}://note[@level='secret']", "-", "R"))
    return s


def alice():
    return Requester("alice", "10.0.0.1", "pc.lab.com")


def bob():
    return Requester("bob", "10.0.0.2", "pc2.lab.com")


class TestServe:
    def test_alice_view(self, server):
        response = server.serve(AccessRequest(alice(), URI))
        assert "a-public" in response.xml_text
        assert "b-public" in response.xml_text
        # Schema-level denial beats her weak instance grant (RW) on the
        # secret note — the paper's instance-weak vs schema pattern.
        assert "a-secret" not in response.xml_text

    def test_bob_view(self, server):
        response = server.serve(AccessRequest(bob(), URI))
        assert "b-public" in response.xml_text
        assert "a-secret" not in response.xml_text

    def test_anonymous_view(self, server):
        response = server.serve(AccessRequest(Requester(), URI))
        assert "a-public" in response.xml_text
        assert "a-secret" not in response.xml_text

    def test_loosened_dtd_shipped(self, server):
        response = server.serve(AccessRequest(alice(), URI))
        assert response.loosened_dtd_text is not None
        assert "#IMPLIED" in response.loosened_dtd_text

    def test_stats_in_response(self, server):
        response = server.serve(AccessRequest(alice(), URI))
        assert 0 < response.visible_nodes < response.total_nodes
        assert response.elapsed_seconds > 0

    def test_unknown_uri(self, server):
        with pytest.raises(RepositoryError):
            server.serve(AccessRequest(alice(), "http://x/nope.xml"))
        outcomes = [record.outcome for record in server.audit]
        assert outcomes[-1] == "error"

    def test_audit_trail(self, server):
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(bob(), URI))
        records = list(server.audit)
        assert len(records) == 2
        assert records[0].outcome == "released"
        assert "alice" in records[0].requester


class TestQuery:
    def test_query_sees_only_view(self, server):
        response = server.query(QueryRequest(bob(), URI, "//note"))
        assert len(response.matches) == 2
        assert all("secret" not in match for match in response.matches)

    def test_query_conditions(self, server):
        response = server.query(
            QueryRequest(alice(), URI, "//note[@owner='alice']")
        )
        assert len(response.matches) == 1  # the secret one is pruned

    def test_query_cannot_probe_hidden_content(self, server):
        # Even predicates over hidden values return nothing.
        response = server.query(
            QueryRequest(bob(), URI, "//note[. = 'a-secret']")
        )
        assert response.empty

    def test_query_audited(self, server):
        server.query(QueryRequest(bob(), URI, "//note"))
        record = server.audit.tail(1)[0]
        assert "query[//note]" in record.action


class TestPolicyConfiguration:
    def test_per_document_policy(self, server):
        open_uri = "http://x/open.xml"
        server.publish_document(
            open_uri, "<d><x>1</x></d>", policy=PolicyConfig(open_policy=True)
        )
        response = server.serve(AccessRequest(bob(), open_uri))
        assert "<x>1</x>" in response.xml_text  # open policy: ε = permit

    def test_default_policy_closed(self, server):
        closed_uri = "http://x/closed.xml"
        server.publish_document(closed_uri, "<d><x>1</x></d>")
        response = server.serve(AccessRequest(bob(), closed_uri))
        assert response.empty

    def test_set_policy_after_publish(self, server):
        uri = "http://x/later.xml"
        server.publish_document(uri, "<d><x>1</x></d>")
        server.set_policy(uri, PolicyConfig(open_policy=True))
        assert not server.serve(AccessRequest(bob(), uri)).empty

    def test_conflict_policy_by_name(self, server):
        uri = "http://x/conflict.xml"
        server.publish_document(uri, "<d><x>1</x></d>")
        server.grant(Authorization.build("Public", f"{uri}://x", "+", "R"))
        server.grant(Authorization.build("Public", f"{uri}://x", "-", "R"))
        # Default denials-take-precedence: hidden.
        assert server.serve(AccessRequest(bob(), uri)).empty
        server.set_policy(
            uri, PolicyConfig(conflict_policy="permissions-take-precedence")
        )
        assert not server.serve(AccessRequest(bob(), uri)).empty

    def test_policy_for_unknown_uri_is_default(self, server):
        assert server.policy_for("http://x/whatever.xml") == PolicyConfig()

    def test_processor_for(self, server):
        processor = server.processor_for(URI)
        output = processor.process_text(
            NOTES,
            server.store.applicable(alice(), URI),
            [],
            uri=URI,
        )
        assert "a-public" in output.xml_text


class TestXACLAttachment:
    def test_attach_xacl(self, server):
        uri = "http://x/x2.xml"
        server.publish_document(uri, "<d><y>2</y></d>")
        loaded = server.attach_xacl(
            f'<xacl><authorization sign="+" type="R">'
            f'<subject user-group="Public"/><object uri="{uri}" path="//y"/>'
            f"</authorization></xacl>"
        )
        assert len(loaded) == 1
        response = server.serve(AccessRequest(bob(), uri))
        assert "<y>2</y>" in response.xml_text
