"""Degradation and hostile-input tests for the hardened request pipeline.

The acceptance behaviours of the robustness layer, end to end through
the facade:

- hostile documents (entity bombs, nesting attacks) come back as
  structured, audited, *typed* failures — never a bare traceback;
- a request past its wall-clock deadline fails the same way;
- a fault-injected cache outage still serves correct views (recompute
  fallback, recorded in the audit trail);
- a fault-injected repository read surfaces as a typed
  :class:`~repro.errors.RepositoryError`;
- transient persistence faults are retried to success; exhausted
  retries propagate; failed saves never corrupt previous state.
"""

import os

import pytest

from repro.authz.authorization import Authorization
from repro.errors import DeadlineExceeded, LimitExceeded, RepositoryError
from repro.limits import ResourceLimits
from repro.server.cache import ViewCache
from repro.server.persistence import load_server, save_server
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.testing.faults import FAULTS, InjectedFault

URI = "http://x/notes.xml"

NOTES = (
    "<notes>"
    "<note owner='alice'>a-note</note>"
    "<note owner='bob'>b-note</note>"
    "</notes>"
)

BILLION_LAUGHS = (
    "<?xml version='1.0'?>"
    "<!DOCTYPE lolz ["
    "<!ENTITY lol 'lol'>"
    "<!ENTITY lol1 '&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;'>"
    "<!ENTITY lol2 '&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;'>"
    "<!ENTITY lol3 '&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;'>"
    "<!ENTITY lol4 '&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;'>"
    "<!ENTITY lol5 '&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;'>"
    "<!ENTITY lol6 '&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;'>"
    "<!ENTITY lol7 '&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;'>"
    "<!ENTITY lol8 '&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;'>"
    "<!ENTITY lol9 '&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;'>"
    "]><lolz>&lol9;</lolz>"
)


def alice():
    return Requester("alice", "10.0.0.1", "pc.lab.com")


def make_server(view_cache=None, limits=None):
    server = SecureXMLServer(view_cache=view_cache, limits=limits)
    server.add_user("alice")
    server.publish_document(URI, NOTES)
    server.grant(Authorization.build("Public", URI, "+", "R"))
    return server


class TestHostileDocuments:
    def test_billion_laughs_served_as_structured_failure(self):
        server = make_server()
        server.publish_document("http://x/bomb.xml", BILLION_LAUGHS, defer_parse=True)
        server.grant(
            Authorization.build("Public", "http://x/bomb.xml", "+", "R")
        )
        response = server.serve(AccessRequest(alice(), "http://x/bomb.xml"))
        assert not response.ok
        assert response.error_kind == "limit-exceeded"
        assert isinstance(response.error, LimitExceeded)
        assert response.error.limit == "max_entity_expansion_chars"
        assert response.empty and response.xml_text == ""
        last = list(server.audit)[-1]
        assert last.outcome == "error"
        assert "limit-exceeded" in last.detail

    def test_nesting_attack_served_as_structured_failure(self):
        depth = 50_000
        server = make_server()
        server.publish_document(
            "http://x/deep.xml", "<a>" * depth + "</a>" * depth, defer_parse=True
        )
        server.grant(
            Authorization.build("Public", "http://x/deep.xml", "+", "R")
        )
        response = server.serve(AccessRequest(alice(), "http://x/deep.xml"))
        assert not response.ok
        assert isinstance(response.error, LimitExceeded)
        assert response.error.limit == "max_tree_depth"

    def test_per_request_limits_override_server_defaults(self):
        server = make_server()
        response = server.serve(
            AccessRequest(alice(), URI), limits=ResourceLimits(max_input_bytes=4)
        )
        # The tree is already parsed, so the input cap cannot trip; a
        # healthy request under hostile-tight limits still succeeds.
        assert response.ok
        tight = ResourceLimits(max_input_bytes=4)
        server.publish_document("http://x/late.xml", NOTES, defer_parse=True)
        server.grant(
            Authorization.build("Public", "http://x/late.xml", "+", "R")
        )
        response = server.serve(AccessRequest(alice(), "http://x/late.xml"), limits=tight)
        assert not response.ok
        assert response.error.limit == "max_input_bytes"


class TestDeadlines:
    def test_expired_deadline_is_a_structured_failure(self):
        server = make_server()
        response = server.serve(
            AccessRequest(alice(), URI),
            limits=ResourceLimits(deadline_seconds=0.0),
        )
        assert not response.ok
        assert response.error_kind == "deadline-exceeded"
        assert isinstance(response.error, DeadlineExceeded)
        last = list(server.audit)[-1]
        assert last.outcome == "error"
        assert "deadline-exceeded" in last.detail

    def test_generous_deadline_serves_normally(self):
        server = make_server()
        response = server.serve(
            AccessRequest(alice(), URI),
            limits=ResourceLimits(deadline_seconds=3600.0),
        )
        assert response.ok
        assert "a-note" in response.xml_text

    def test_server_default_deadline_applies(self):
        server = make_server(limits=ResourceLimits(deadline_seconds=0.0))
        response = server.serve(AccessRequest(alice(), URI))
        assert not response.ok
        assert response.error_kind == "deadline-exceeded"


class TestQueryGuards:
    def test_query_step_budget_is_a_structured_failure(self):
        server = make_server()
        response = server.query(
            QueryRequest(alice(), URI, "//note"),
            limits=ResourceLimits(max_xpath_steps=1),
        )
        assert not response.ok
        assert response.error_kind == "limit-exceeded"
        assert response.error.limit == "max_xpath_steps"

    def test_query_expired_deadline(self):
        server = make_server()
        response = server.query(
            QueryRequest(alice(), URI, "//note"),
            limits=ResourceLimits(deadline_seconds=0.0),
        )
        assert not response.ok
        assert response.error_kind == "deadline-exceeded"

    def test_query_within_budget_succeeds(self):
        server = make_server()
        response = server.query(
            QueryRequest(alice(), URI, "//note"),
            limits=ResourceLimits(max_xpath_steps=100_000),
        )
        assert response.ok
        assert len(response.matches) == 2


class TestCacheDegradation:
    def test_cache_get_outage_recomputes_the_view(self):
        server = make_server(view_cache=ViewCache())
        healthy = server.serve(AccessRequest(alice(), URI)).xml_text
        with FAULTS.injected("cache.get"):
            response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        assert response.xml_text == healthy  # same view, recomputed
        last = list(server.audit)[-1]
        assert last.outcome == "released"
        assert "recomputed" in last.detail
        assert FAULTS.fired("cache.get") == 1

    def test_cache_put_outage_still_serves(self):
        server = make_server(view_cache=ViewCache())
        with FAULTS.injected("cache.put"):
            response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        assert "a-note" in response.xml_text
        assert "cache store failed" in list(server.audit)[-1].detail

    def test_cache_recovers_after_outage(self):
        cache = ViewCache()
        server = make_server(view_cache=cache)
        with FAULTS.injected("cache.get"):
            server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(alice(), URI))  # healthy: fills the cache
        response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        assert cache.hits >= 1
        assert "cache hit" in list(server.audit)[-1].detail


class TestRepositoryFaults:
    def test_repository_outage_is_a_typed_error(self):
        server = make_server()
        with FAULTS.injected("repository.read"):
            with pytest.raises(RepositoryError, match="repository read failed"):
                server.serve(AccessRequest(alice(), URI))
        last = list(server.audit)[-1]
        assert last.outcome == "error"
        assert "repository read failed" in last.detail

    def test_transient_repository_fault_recovers(self):
        server = make_server()
        with FAULTS.injected("repository.read", times=1):
            with pytest.raises(RepositoryError):
                server.serve(AccessRequest(alice(), URI))
        response = server.serve(AccessRequest(alice(), URI))
        assert response.ok


class TestPersistenceFaults:
    def test_transient_write_faults_are_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.server.persistence._sleep", lambda _: None)
        server = make_server()
        state = str(tmp_path / "state")
        FAULTS.arm("persistence.write", times=2)
        save_server(server, state)  # default policy: 3 attempts
        assert FAULTS.fired("persistence.write") == 2
        assert os.path.exists(os.path.join(state, "repository.xml"))

    def test_exhausted_write_retries_propagate(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.server.persistence._sleep", lambda _: None)
        server = make_server()
        with FAULTS.injected("persistence.write"):
            with pytest.raises(InjectedFault):
                save_server(server, str(tmp_path / "state"))

    def test_failed_save_leaves_previous_state_intact(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.server.persistence._sleep", lambda _: None)
        server = make_server()
        state = str(tmp_path / "state")
        save_server(server, state)
        with open(os.path.join(state, "repository.xml"), encoding="utf-8") as handle:
            before = handle.read()
        with FAULTS.injected("persistence.write"):
            with pytest.raises(InjectedFault):
                save_server(server, state)
        with open(os.path.join(state, "repository.xml"), encoding="utf-8") as handle:
            assert handle.read() == before
        leftovers = [
            name
            for _, _, names in os.walk(state)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_transient_read_faults_are_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.server.persistence._sleep", lambda _: None)
        server = make_server()
        state = str(tmp_path / "state")
        save_server(server, state)
        FAULTS.arm("persistence.read", times=2)
        reloaded = load_server(state)
        assert FAULTS.fired("persistence.read") == 2
        response = reloaded.serve(AccessRequest(alice(), URI))
        assert response.ok
        assert "a-note" in response.xml_text

    def test_deferred_hostile_document_survives_save_load(self, tmp_path):
        # Saving must not force an unbounded parse of a deferred bomb;
        # the raw text round-trips and still fails safely at serve time.
        server = make_server()
        server.publish_document("http://x/bomb.xml", BILLION_LAUGHS, defer_parse=True)
        server.grant(Authorization.build("Public", "http://x/bomb.xml", "+", "R"))
        state = str(tmp_path / "state")
        save_server(server, state)
        reloaded = load_server(state)
        response = reloaded.serve(AccessRequest(alice(), "http://x/bomb.xml"))
        assert not response.ok
        assert response.error.limit == "max_entity_expansion_chars"
        assert reloaded.serve(AccessRequest(alice(), URI)).ok

    def test_round_trip_views_survive_transient_faults(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.server.persistence._sleep", lambda _: None)
        server = make_server()
        before = server.serve(AccessRequest(alice(), URI)).xml_text
        state = str(tmp_path / "state")
        FAULTS.arm("persistence.write", times=1)
        save_server(server, state)
        FAULTS.reset()
        FAULTS.arm("persistence.read", times=1)
        after = load_server(state).serve(AccessRequest(alice(), URI)).xml_text
        assert before == after
