"""Tests for the facade's explain() endpoint (decision provenance)."""

import json

import pytest

from repro.authz.authorization import Authorization
from repro.core.explain import Explanation
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester

URI = "http://x/notes.xml"
XML = (
    "<notes>"
    "<note owner='alice'>hi<secret>k</secret></note>"
    "<note owner='bob'>yo</note>"
    "</notes>"
)


@pytest.fixture
def server():
    server = SecureXMLServer()
    server.add_user("alice")
    server.publish_document(URI, XML)
    server.grant(Authorization.build("Public", URI, "+", "R"))
    server.grant(Authorization.build("Public", f"{URI}://secret", "-", "R"))
    return server


def alice():
    return Requester("alice", "10.0.0.1", "pc.x")


class TestExplainEndpoint:
    def test_returns_an_explanation(self, server):
        explanation = server.explain(alice(), URI)
        assert isinstance(explanation, Explanation)
        assert explanation.uri == URI
        assert "alice" in explanation.requester
        assert len(explanation) > 0

    def test_finals_match_the_served_view(self, server):
        explanation = server.explain(alice(), URI)
        view = server.view(alice(), URI)
        assert len(explanation) == len(view.labels)
        for node, label in view.labels.items():
            assert explanation[node].final == label.final
        assert explanation.visible_nodes == view.visible_nodes

    def test_xpath_targets_focus_the_report(self, server):
        explanation = server.explain(alice(), URI, xpath="//secret")
        assert len(explanation.targets) == 1
        text = explanation.describe()
        assert "/notes/note[1]/secret" in text
        # The hidden node's denial is explained, not omitted.
        ne = explanation.target_explanations[0]
        assert ne.final == "-"
        assert not ne.in_view

    def test_metrics_and_audit_trail(self, server):
        server.explain(alice(), URI)
        server.explain(alice(), URI, xpath="//note")
        assert server.metrics.value("explain_requests_total") == 2
        assert server.metrics.value("provenance_nodes_recorded_total") > 0
        actions = [record.action for record in server.audit]
        assert "explain" in actions
        assert "explain[//note]" in actions
        assert all(record.outcome == "released" for record in server.audit)

    def test_timings_include_the_decision_stages(self, server):
        explanation = server.explain(alice(), URI)
        assert "request.explain" in explanation.timings
        assert "decision.explain" in explanation.timings
        assert "decision.label" in explanation.timings

    def test_to_json_is_loadable(self, server):
        explanation = server.explain(alice(), URI)
        data = json.loads(explanation.to_json())
        assert data["uri"] == URI
        assert data["total_nodes"] == len(explanation)

    def test_unknown_document_is_audited_error(self, server):
        from repro.errors import RepositoryError

        with pytest.raises(RepositoryError):
            server.explain(alice(), "http://x/nope.xml")
        assert server.audit.tail(1)[0].outcome == "error"
