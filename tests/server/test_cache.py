"""Tests for the server-side view cache."""

import pytest

from repro.authz.authorization import Authorization
from repro.server.cache import ViewCache
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.server.updates import SetText, UpdateRequest
from repro.subjects.hierarchy import Requester

URI = "http://x/d.xml"


@pytest.fixture
def server():
    s = SecureXMLServer(view_cache=ViewCache(max_entries=8))
    s.add_group("Staff")
    s.add_user("alice", groups=["Staff"])
    s.add_user("amy", groups=["Staff"])
    s.add_user("bob")
    s.publish_document(URI, "<d><x>public</x><y>staff</y></d>")
    s.grant(Authorization.build("Public", f"{URI}://x", "+", "R"))
    s.grant(Authorization.build("Staff", f"{URI}://y", "+", "R"))
    s.grant(
        Authorization.build(
            ("alice", "*", "*"), f"{URI}://y", "+", "R", action="write"
        )
    )
    return s


def requester(user, ip="1.1.1.1"):
    return Requester(user, ip, "pc.x")


class TestCaching:
    def test_repeat_request_hits(self, server):
        first = server.serve(AccessRequest(requester("alice"), URI))
        second = server.serve(AccessRequest(requester("alice"), URI))
        assert first.xml_text == second.xml_text
        assert server.view_cache.hits == 1
        assert server.view_cache.misses == 1
        assert "cache hit" in server.audit.tail(1)[0].detail

    def test_same_entitlements_share_entry(self, server):
        server.serve(AccessRequest(requester("alice"), URI))
        response = server.serve(AccessRequest(requester("amy", "2.2.2.2"), URI))
        # amy resolves to the same applicable set as alice -> hit.
        assert server.view_cache.hits == 1
        assert "staff" in response.xml_text

    def test_different_entitlements_do_not_share(self, server):
        alice_view = server.serve(AccessRequest(requester("alice"), URI))
        bob_view = server.serve(AccessRequest(requester("bob"), URI))
        assert server.view_cache.hits == 0
        assert "staff" in alice_view.xml_text
        assert "staff" not in bob_view.xml_text

    def test_grant_invalidates(self, server):
        server.serve(AccessRequest(requester("bob"), URI))
        server.grant(Authorization.build("Public", f"{URI}://y", "+", "R"))
        response = server.serve(AccessRequest(requester("bob"), URI))
        # New grant changed the applicable set -> different key -> miss,
        # and the content reflects the new policy.
        assert "staff" in response.xml_text
        assert server.view_cache.hits == 0

    def test_revocation_invalidates_same_key(self, server):
        grant = server.store.for_uri(URI)[1]  # the Staff grant
        server.serve(AccessRequest(requester("alice"), URI))
        server.store.remove(grant)
        response = server.serve(AccessRequest(requester("alice"), URI))
        assert "staff" not in response.xml_text

    def test_update_invalidates(self, server):
        server.serve(AccessRequest(requester("alice"), URI))
        server.update(
            UpdateRequest.of(requester("alice"), URI, SetText("//y", "edited"))
        )
        response = server.serve(AccessRequest(requester("alice"), URI))
        assert "edited" in response.xml_text

    def test_cached_and_fresh_views_identical(self, server):
        fresh = server.serve(AccessRequest(requester("alice"), URI))
        cached = server.serve(AccessRequest(requester("alice"), URI))
        assert fresh.xml_text == cached.xml_text
        assert fresh.visible_nodes == cached.visible_nodes
        assert fresh.total_nodes == cached.total_nodes

    def test_no_cache_by_default(self):
        server = SecureXMLServer()
        assert server.view_cache is None


class TestViewCacheUnit:
    def test_lru_eviction(self):
        cache = ViewCache(max_entries=2)
        from repro.server.cache import CachedView

        def entry():
            return CachedView("<x/>", None, False, 1, 1, 0, 0)

        cache.put("a", entry())
        cache.put("b", entry())
        cache.get("a", 0, 0)      # touch a -> b becomes LRU
        cache.put("c", entry())   # evicts b
        assert cache.get("b", 0, 0) is None
        assert cache.get("a", 0, 0) is not None
        assert len(cache) == 2

    def test_version_mismatch_is_miss(self):
        from repro.server.cache import CachedView

        cache = ViewCache()
        cache.put("k", CachedView("<x/>", None, False, 1, 1, store_version=5, document_version=2))
        assert cache.get("k", 5, 2) is not None
        assert cache.get("k", 6, 2) is None  # store changed; entry dropped
        assert cache.get("k", 5, 2) is None

    def test_hit_rate(self):
        from repro.server.cache import CachedView

        cache = ViewCache()
        assert cache.hit_rate == 0.0
        cache.put("k", CachedView("<x/>", None, False, 1, 1, 0, 0))
        cache.get("k", 0, 0)
        cache.get("missing", 0, 0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ViewCache(max_entries=0)

    def test_clear(self):
        from repro.server.cache import CachedView

        cache = ViewCache()
        cache.put("k", CachedView("<x/>", None, False, 1, 1, 0, 0))
        cache.clear()
        assert len(cache) == 0


class TestInvalidateUri:
    """Subtree-granular invalidation, at the cache-unit level."""

    @staticmethod
    def entry(store_version=0, document_version=0):
        from repro.server.cache import CachedView

        return CachedView(
            "<x/>", None, False, 1, 1, store_version, document_version
        )

    def test_without_keep_drops_every_entry_for_the_uri(self):
        cache = ViewCache()
        cache.put(("u", "c1"), self.entry())
        cache.put(("u", "c2"), self.entry())
        cache.put(("v", "c1"), self.entry())
        kept, dropped = cache.invalidate_uri("u")
        assert (kept, dropped) == (0, 2)
        assert cache.get(("v", "c1"), 0, 0) is not None  # other URI intact

    def test_keep_predicate_restamps_surviving_entries(self):
        cache = ViewCache()
        cache.put(("u", "disjoint"), self.entry(store_version=3, document_version=7))
        cache.put(("u", "affected"), self.entry(store_version=3, document_version=7))
        kept, dropped = cache.invalidate_uri(
            "u",
            keep=lambda key: key[1] == "disjoint",
            store_version=3,
            document_version=8,
        )
        assert (kept, dropped) == (1, 1)
        # The survivor answers lookups at the *post-commit* versions.
        assert cache.get(("u", "disjoint"), 3, 8) is not None
        assert cache.get(("u", "affected"), 3, 8) is None

    def test_stats_distinguish_partial_invalidations(self):
        cache = ViewCache()
        cache.put(("u", "a"), self.entry())
        cache.put(("u", "b"), self.entry())
        cache.put(("u", "c"), self.entry())
        cache.invalidate_uri("u", keep=lambda key: key[1] != "b")
        stats = cache.stats()
        assert stats["invalidated"] == 1
        assert stats["revalidated"] == 2
        # Update-driven removals are not capacity evictions.
        assert stats["evictions"] == 0

    def test_non_tuple_keys_are_untouched(self):
        cache = ViewCache()
        cache.put("plain", self.entry())
        kept, dropped = cache.invalidate_uri("plain")
        assert (kept, dropped) == (0, 0)
        assert cache.get("plain", 0, 0) is not None
