"""The supervised multi-process pool: routing, supervision primitives,
degradation paths, health surfaces.

The chaos suite (randomized kills, exactly-one-outcome conservation)
lives in test_pool_chaos.py; here each failure mode is provoked
deterministically via a :class:`~repro.testing.faults.FaultPlan`.
"""

import time

import pytest

from repro.errors import (
    DeadlineExceeded,
    PoolSaturated,
    PoolUnhealthy,
    WorkerLost,
)
from repro.limits import ResourceLimits
from repro.server.concurrent import dispatch
from repro.server.pool import ShardedServerPool
from repro.server.repository import ShardRouter
from repro.server.request import QueryRequest
from repro.server.supervisor import CircuitBreaker, RestartPolicy
from repro.testing.faults import FaultPlan, FaultSpec
from repro.workloads.traffic import TrafficSpec, request_stream

SPEC = TrafficSpec(documents=5, nodes_per_document=120, seed=11)
REQUESTS = list(request_stream(SPEC, 24, seed=4))


def make_pool(**overrides):
    options = dict(
        workers=2,
        shards=4,
        restart_policy=RestartPolicy(base_delay=0.02, cap=0.2),
        supervision_interval=0.02,
    )
    options.update(overrides)
    return ShardedServerPool(SPEC.build_server, **options)


class TestShardRouter:
    def test_deterministic_and_complete(self):
        router = ShardRouter(4)
        uris = [f"urn:doc:{index}" for index in range(1000)]
        first = [router.shard_of(uri) for uri in uris]
        assert first == [ShardRouter(4).shard_of(uri) for uri in uris]
        assert set(first) == {0, 1, 2, 3}

    def test_reasonably_balanced(self):
        router = ShardRouter(4)
        groups = router.partition(f"urn:doc:{index}" for index in range(2000))
        assert all(len(uris) > 200 for uris in groups.values())

    def test_consistency_under_reshard(self):
        """Growing the ring moves a minority of URIs, not nearly all."""
        uris = [f"urn:doc:{index}" for index in range(1000)]
        before, after = ShardRouter(4), ShardRouter(5)
        moved = sum(1 for u in uris if before.shard_of(u) != after.shard_of(u))
        assert 0 < moved < 500

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestRestartPolicy:
    def test_exponential_growth_capped(self):
        policy = RestartPolicy(base_delay=0.1, cap=1.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.8)
        assert policy.delay(5) == pytest.approx(1.0)  # capped
        assert policy.delay(50) == pytest.approx(1.0)  # stays capped

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RestartPolicy().delay(0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_then_close_or_reopen(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.02)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()


class TestPoolServing:
    def test_byte_identical_to_sequential_replay(self):
        reference_server = SPEC.build_server(None, 4)
        references = [dispatch(reference_server, r) for r in REQUESTS]
        with make_pool() as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS, timeout=60)
        assert all(outcome.ok for outcome in outcomes)
        for outcome, reference in zip(outcomes, references):
            assert outcome.result.xml_text == reference.xml_text
            assert outcome.result.matches == reference.matches
            assert outcome.result.visible_nodes == reference.visible_nodes

    def test_serve_raises_typed_errors_and_returns_responses(self):
        with make_pool() as pool:
            pool.wait_ready()
            response = pool.serve(REQUESTS[0], timeout=30)
            assert response.ok
            with pytest.raises(TypeError):
                pool.submit(object())

    def test_query_requests_route_too(self):
        query = QueryRequest(SPEC.requesters()[0], SPEC.uris()[0], "//*[@id]")
        with make_pool() as pool:
            pool.wait_ready()
            response = pool.serve(query, timeout=30)
        assert response.ok

    def test_app_level_error_comes_back_typed_without_breaker_trip(self):
        from repro.errors import RepositoryError
        from repro.server.request import AccessRequest

        unknown = AccessRequest(SPEC.requesters()[0], "urn:no-such-doc")
        with make_pool() as pool:
            pool.wait_ready()
            with pytest.raises(RepositoryError):
                pool.serve(unknown, timeout=30)
            shard = pool.router.shard_of("urn:no-such-doc")
            assert pool._breakers[shard].state == "closed"
            assert pool.stats()["outcomes"] == {"error": 1}


class TestPoolUpdates:
    """Writes through the pool: owner-shard routing, no degraded writes."""

    def test_update_routes_to_owner_and_is_visible_to_reads(self):
        from repro.server.request import AccessRequest
        from repro.subjects.hierarchy import Requester
        from repro.update import SetAttribute, UpdateRequest
        from tests.server.test_pool_chaos import UpdateCorpusSpec

        spec = UpdateCorpusSpec()
        uri = spec.uris()[0]
        writer = Requester("writer", "10.0.0.1", "pc.x")
        update = UpdateRequest.of(
            writer, uri, SetAttribute("//note[1]", "rev", "7")
        )
        with ShardedServerPool(
            spec.build_server, workers=2, shards=4
        ) as pool:
            pool.wait_ready()
            outcome = pool.serve(update, timeout=30)
            assert outcome.applied  # UpdateOutcome crossed the IPC boundary
            assert outcome.version == 1
            # Reads route by the same URI hash, so they land on the
            # worker that owns the committed tree and see the new rev.
            response = pool.serve(AccessRequest(writer, uri), timeout=30)
        assert 'rev="7"' in response.xml_text

    def test_updates_never_served_degraded(self):
        """With the owner worker dead and its breaker open, reads fall
        back in-process but a write fails fast with PoolUnhealthy — the
        fallback server's copy would fork the document's history."""
        from repro.server.request import AccessRequest
        from repro.subjects.hierarchy import Requester
        from repro.update import SetAttribute, UpdateRequest
        from tests.server.test_pool_chaos import UpdateCorpusSpec

        spec = UpdateCorpusSpec()
        uri = spec.uris()[0]
        writer = Requester("writer", "10.0.0.1", "pc.x")
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=None),))
        with ShardedServerPool(
            spec.build_server,
            workers=1,
            shards=2,
            fault_plan=plan,
            restart_policy=RestartPolicy(base_delay=0.02, cap=0.2),
            supervision_interval=0.02,
            breaker_threshold=1,
            breaker_cooldown=60.0,
            degraded=True,
        ) as pool:
            pool.wait_ready()
            read_ok = update_unhealthy = False
            for _ in range(20):
                update = UpdateRequest.of(
                    writer, uri, SetAttribute("//note[1]", "rev", "9")
                )
                try:
                    pool.serve(update, timeout=30)
                except PoolUnhealthy:
                    update_unhealthy = True
                except WorkerLost:
                    pass  # breaker not open yet
                try:
                    response = pool.serve(AccessRequest(writer, uri), timeout=30)
                    read_ok = read_ok or response.ok
                except (WorkerLost, PoolUnhealthy):
                    pass
                if read_ok and update_unhealthy:
                    break
                time.sleep(0.05)
        assert update_unhealthy, "no update failed fast with PoolUnhealthy"
        assert read_ok, "reads never degraded to the in-process fallback"


class TestCrashRecovery:
    def test_crash_resolves_in_flight_and_restarts(self):
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=1, after=2),))
        with make_pool(fault_plan=plan, breaker_threshold=20) as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS, timeout=60)
            stats = pool.stats()
        lost = [o for o in outcomes if isinstance(o.error, WorkerLost)]
        assert lost and all(o.error.reason == "crashed" for o in lost)
        assert all(o.ok or isinstance(o.error, WorkerLost) for o in outcomes)
        assert stats["pool"]["restarts_total"] >= 1
        # conservation: every submission counted exactly once
        assert sum(stats["outcomes"].values()) == len(REQUESTS)

    def test_restart_is_audited(self):
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=1,),))
        with make_pool(fault_plan=plan, breaker_threshold=20) as pool:
            pool.wait_ready()
            pool.serve_many(REQUESTS[:8], timeout=60)
            # serve_many can return (all in-flight resolved WorkerLost)
            # before the supervisor's backoff elapses: wait for it.
            end = time.monotonic() + 5.0
            while time.monotonic() < end:
                stats = pool.stats()
                if stats["pool"]["restarts_total"] >= 1:
                    break
                time.sleep(0.02)
            audited = sum(
                1 for record in pool.audit.tail(100)
                if record.outcome == "restarted"
            )
        assert audited == stats["pool"]["restarts_total"] >= 1


class TestDegradationPaths:
    def test_deadline_expiry_while_queued_fails_fast(self):
        """A request stuck behind a permanently dead worker resolves
        with a typed error by its deadline — it never hangs."""
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=None),))
        with make_pool(
            workers=1,
            shards=1,
            fault_plan=plan,
            restart_policy=RestartPolicy(base_delay=0.5, cap=1.0),
            breaker_threshold=100,
            degraded=False,
        ) as pool:
            pool.wait_ready()
            started = time.monotonic()
            limits = ResourceLimits(deadline_seconds=0.4)
            pendings = [pool.submit(r, limits=limits) for r in REQUESTS[:5]]
            errors = []
            for pending in pendings:
                with pytest.raises((DeadlineExceeded, WorkerLost)) as info:
                    pending.result(timeout=10)
                errors.append(info.value)
            elapsed = time.monotonic() - started
        assert elapsed < 5.0
        assert any(isinstance(e, DeadlineExceeded) for e in errors)

    def test_saturation_sheds_with_typed_error(self):
        plan = FaultPlan((FaultSpec("pool.worker.hang", times=None),))
        with make_pool(
            workers=1,
            shards=1,
            queue_depth=2,
            pipeline_depth=1,
            fault_plan=plan,
            hang_timeout=30,
            breaker_threshold=100,
            degraded=False,
        ) as pool:
            pool.wait_ready()
            pendings = [pool.submit(r) for r in REQUESTS[:8]]
            shed = [
                p for p in pendings if p.done and isinstance(p.error, PoolSaturated)
            ]
            stats = pool.stats()
        assert len(shed) >= 4
        assert shed[0].error.depth == 2
        assert stats["pool"]["shed_total"] == len(shed)

    def test_open_breaker_degrades_to_in_process_serving(self):
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=None),))
        reference_server = SPEC.build_server(None, 2)
        with make_pool(
            workers=1,
            shards=2,
            fault_plan=plan,
            breaker_threshold=2,
            breaker_cooldown=60.0,
            degraded=True,
        ) as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS[:12], timeout=60)
            stats = pool.stats()
        degraded_ok = [o for o in outcomes if o.degraded and o.ok]
        assert degraded_ok, "breaker never opened into the fallback path"
        for outcome in degraded_ok:
            reference = dispatch(reference_server, REQUESTS[outcome.index])
            assert outcome.result.xml_text == reference.xml_text
        assert stats["pool"]["degraded_total"] == len(
            [o for o in outcomes if o.degraded]
        )
        assert "open" in stats["pool"]["breakers"].values()
        assert sum(stats["outcomes"].values()) == 12

    def test_open_breaker_without_degradation_fails_fast(self):
        plan = FaultPlan((FaultSpec("pool.worker.crash", times=None),))
        with make_pool(
            workers=1,
            shards=1,
            fault_plan=plan,
            breaker_threshold=1,
            breaker_cooldown=60.0,
            degraded=False,
        ) as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS[:8], timeout=60)
        assert all(not o.ok for o in outcomes)
        assert any(isinstance(o.error, PoolUnhealthy) for o in outcomes)

    def test_hung_worker_is_detected_and_killed(self):
        plan = FaultPlan((FaultSpec("pool.worker.hang", times=1),))
        with make_pool(
            workers=1,
            shards=1,
            fault_plan=plan,
            hang_timeout=0.5,
            breaker_threshold=100,
        ) as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS[:4], timeout=60)
        hung = [
            o
            for o in outcomes
            if isinstance(o.error, WorkerLost) and o.error.reason == "hung"
        ]
        assert hung

    def test_ipc_corruption_is_contained(self):
        plan = FaultPlan((FaultSpec("pool.ipc.corrupt", times=1, after=1),))
        with make_pool(
            workers=1, shards=1, fault_plan=plan, breaker_threshold=100
        ) as pool:
            pool.wait_ready()
            outcomes = pool.serve_many(REQUESTS[:8], timeout=60)
            stats = pool.stats()
        corrupt = [
            o
            for o in outcomes
            if isinstance(o.error, WorkerLost) and o.error.reason == "ipc-corrupt"
        ]
        assert corrupt
        assert stats["metrics"]["pool_ipc_errors_total"][""] >= 1
        assert sum(stats["outcomes"].values()) == 8


class TestHealthSurfaces:
    def test_stats_shape(self):
        with make_pool() as pool:
            pool.wait_ready()
            pool.serve_many(REQUESTS[:6], timeout=30)
            time.sleep(0.06)  # one supervision tick for the gauges
            stats = pool.stats()
        assert stats["pool"]["workers_alive"] == 2
        assert stats["pool"]["breakers"] == {s: "closed" for s in range(4)}
        assert {w["state"] for w in stats["workers"]} == {"up"}
        assert stats["outcomes"]["ok"] == 6
        assert set(stats["shard_owners"]) == {0, 1, 2, 3}
        import json

        json.dumps(stats)  # the snapshot must stay JSON-serializable

    def test_prometheus_scrape_exposes_pool_health(self):
        with make_pool() as pool:
            pool.wait_ready()
            pool.serve_many(REQUESTS[:6], timeout=30)
            time.sleep(0.06)
            text = pool.render_prometheus()
        assert 'pool_requests_total{outcome="ok"} 6' in text
        assert "pool_workers_alive 2" in text
        assert '# TYPE pool_breaker_state gauge' in text
        assert 'pool_breaker_state{shard="0"}' in text

    def test_close_resolves_leftovers_and_rejects_new_work(self):
        plan = FaultPlan((FaultSpec("pool.worker.hang", times=None),))
        pool = make_pool(
            workers=1, shards=1, fault_plan=plan, hang_timeout=30,
            breaker_threshold=100,
        )
        pool.wait_ready()
        pending = pool.submit(REQUESTS[0])
        pool.close()
        with pytest.raises(WorkerLost) as info:
            pending.result(timeout=5)
        assert info.value.reason == "shutdown"
        with pytest.raises(RuntimeError):
            pool.submit(REQUESTS[0])
