"""Tests for policy analysis (audiences, impact, dead tuples)."""

import pytest

from repro.authz.authorization import Authorization
from repro.server.analysis import (
    audience_report,
    authorization_impact,
    dead_authorizations,
)
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester

URI = "http://x/d.xml"
DTD_URI = "http://x/d.dtd"


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_group("Staff")
    s.add_user("alice", groups=["Staff"])
    s.add_user("amy", groups=["Staff"])
    s.add_user("bob")
    s.publish_dtd(
        DTD_URI, "<!ELEMENT d (x, y)><!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>"
    )
    s.publish_document(URI, "<d><x>public</x><y>staff</y></d>", dtd_uri=DTD_URI)
    s.grant(Authorization.build("Public", f"{URI}://x", "+", "R"))
    s.grant(Authorization.build("Staff", f"{URI}://y", "+", "R"))
    return s


class TestAudienceReport:
    def test_partitions_by_view(self, server):
        report = audience_report(server, URI)
        # alice+amy share one view; bob and anonymous share another.
        assert len(report.audiences) == 2
        audiences = {frozenset(a.users) for a in report.audiences}
        assert frozenset({"alice", "amy"}) in audiences
        assert frozenset({"bob", "anonymous"}) in audiences

    def test_visible_shares(self, server):
        report = audience_report(server, URI)
        staff = next(a for a in report.audiences if "alice" in a.users)
        public = next(a for a in report.audiences if "bob" in a.users)
        assert staff.visible_nodes > public.visible_nodes
        assert 0 < public.share < staff.share <= 1.0

    def test_describe(self, server):
        text = audience_report(server, URI).describe()
        assert "audiences for" in text
        assert "alice" in text

    def test_empty_policy_single_audience(self, server):
        other = "http://x/other.xml"
        server.publish_document(other, "<o><p>q</p></o>")
        report = audience_report(server, other)
        assert len(report.audiences) == 1
        assert report.audiences[0].visible_nodes == 0


class TestAuthorizationImpact:
    def test_deciding_grant(self, server):
        staff_grant = server.store.for_uri(URI)[1]
        alice = Requester("alice", "1.1.1.1", "a.x")
        impact = authorization_impact(server, URI, staff_grant, alice)
        assert impact.selected_nodes == 1          # the <y> element
        assert impact.deciding_nodes >= 1          # decides y (and its text via parent)
        assert impact.view_delta > 0               # removing it shrinks the view
        assert "view delta" in impact.describe()

    def test_irrelevant_for_non_member(self, server):
        staff_grant = server.store.for_uri(URI)[1]
        bob = Requester("bob", "2.2.2.2", "b.x")
        impact = authorization_impact(server, URI, staff_grant, bob)
        assert impact.deciding_nodes == 0
        assert impact.view_delta == 0

    def test_store_restored_after_measurement(self, server):
        staff_grant = server.store.for_uri(URI)[1]
        alice = Requester("alice", "1.1.1.1", "a.x")
        before = len(server.store)
        authorization_impact(server, URI, staff_grant, alice)
        assert len(server.store) == before
        # And the view is unchanged.
        assert server.view(alice, URI).visible_nodes > 0

    def test_shadowed_denial_decides_nothing(self, server):
        # A denial on a node nobody was granted: decides the sign but
        # removing it does not change the (already empty there) view.
        denial = server.grant(
            Authorization.build("Public", f"{URI}://y", "-", "L")
        )
        bob = Requester("bob", "2.2.2.2", "b.x")
        impact = authorization_impact(server, URI, denial, bob)
        assert impact.view_delta == 0


class TestDeadAuthorizations:
    def test_live_tuples_not_reported(self, server):
        assert dead_authorizations(server, URI) == []

    def test_typoed_path_reported(self, server):
        dead = server.grant(
            Authorization.build("Public", f"{URI}://nosuchelement", "+", "R")
        )
        found = dead_authorizations(server, URI)
        assert dead in found

    def test_stale_condition_reported(self, server):
        dead = server.grant(
            Authorization.build("Public", f'{URI}://x[@kind="gone"]', "+", "R")
        )
        assert dead in dead_authorizations(server, URI)

    def test_schema_tuple_alive_if_any_instance_matches(self, server):
        schema = server.grant(
            Authorization.build("Public", f"{DTD_URI}://y", "-", "R")
        )
        assert schema not in dead_authorizations(server, URI)

    def test_schema_tuple_dead_if_no_instance_matches(self, server):
        schema = server.grant(
            Authorization.build("Public", f"{DTD_URI}://zzz", "-", "R")
        )
        assert schema in dead_authorizations(server, URI)

    def test_all_documents_mode(self, server):
        other = "http://x/other.xml"
        server.publish_document(other, "<o><p>q</p></o>")
        dead = server.grant(Authorization.build("Public", f"{other}://zzz", "+", "R"))
        assert dead in dead_authorizations(server)
