"""Observability through the facade: timings, stats(), degraded paths.

The contract under test (docs/OBSERVABILITY.md):

- every served request carries a per-stage ``timings`` breakdown;
- ``server.stats()`` aggregates outcomes, latencies, stage costs and
  cache effectiveness;
- the degraded paths — cache outage recompute, repository fault,
  deadline trip — emit audit records and metrics that *agree with each
  other* about what failed and how the request ended.
"""

from __future__ import annotations

import pytest

from repro.authz.authorization import Authorization
from repro.errors import DeadlineExceeded, RepositoryError
from repro.limits import ResourceLimits
from repro.obs import METRICS, tracing
from repro.server.cache import ViewCache
from repro.server.persistence import save_server
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.testing.faults import FAULTS

URI = "http://x/notes.xml"
NOTES = (
    "<notes>"
    "<note owner='alice'>a-note</note>"
    "<note owner='bob'>b-note</note>"
    "</notes>"
)


def alice():
    return Requester("alice", "10.0.0.1", "pc.lab.com")


def make_server(view_cache=None, defer_parse=True, **kwargs):
    server = SecureXMLServer(view_cache=view_cache, **kwargs)
    server.add_user("alice")
    server.publish_document(URI, NOTES, defer_parse=defer_parse)
    server.grant(Authorization.build("Public", URI, "+", "R"))
    return server


class TestRequestTimings:
    def test_serve_reports_every_pipeline_stage(self):
        server = make_server()
        # A path-based denial forces XPath evaluation during labeling.
        server.grant(
            Authorization.build("Public", URI + ":/notes/note[2]", "-", "R")
        )
        response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        for stage in (
            "parse.xml",  # defer_parse=True: first request parses
            "authz.bind",
            "xpath.eval",
            "label.bind",
            "label.propagate",
            "label",
            "prune",
            "serialize",
            "request.serve",
        ):
            assert stage in response.timings, stage
        assert all(v >= 0 for v in response.timings.values())
        # The umbrella request span dominates any single stage.
        assert response.timings["request.serve"] == max(response.timings.values())

    def test_cache_hit_breakdown_is_shallow(self):
        server = make_server(view_cache=ViewCache())
        server.serve(AccessRequest(alice(), URI))  # warm
        response = server.serve(AccessRequest(alice(), URI))
        assert "cache.lookup" in response.timings
        assert "label" not in response.timings  # no recompute on a hit
        assert "prune" not in response.timings

    def test_query_breakdown_uses_its_own_umbrella(self):
        server = make_server()
        response = server.query(QueryRequest(alice(), URI, "//note"))
        assert "request.query" in response.timings
        assert "xpath.eval" in response.timings
        assert "serialize" in response.timings

    def test_tracing_can_be_disabled(self):
        server = make_server(trace_requests=False)
        response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        assert response.timings == {}

    def test_outer_tracer_accumulates_across_requests(self):
        server = make_server()
        with tracing() as tracer:
            first = server.serve(AccessRequest(alice(), URI))
            second = server.serve(AccessRequest(alice(), URI))
        umbrellas = [s for s in tracer.spans if s.name == "request.serve"]
        assert len(umbrellas) == 2
        # Responses still get their individual breakdowns.
        assert first.timings["request.serve"] > 0
        assert second.timings["request.serve"] > 0
        # The second request reuses the parsed tree: no parse stage.
        assert "parse.xml" in first.timings
        assert "parse.xml" not in second.timings


class TestServerStats:
    def test_outcome_counts_and_latency(self):
        server = make_server(view_cache=ViewCache())
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(alice(), URI))
        server.query(QueryRequest(alice(), URI, "//note"))
        stats = server.stats()
        assert stats["requests"]["serve"]["released"] == 2
        assert stats["requests"]["query"]["released"] == 1
        assert stats["latency"]["serve"]["count"] == 2
        assert stats["latency"]["serve"]["p95"] >= stats["latency"]["serve"]["p50"]
        assert stats["stages"]["request.serve"]["count"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["documents"] == 1
        assert stats["authorizations"] == 1
        assert stats["audit_records"] == 3
        assert "requests_total" in stats["metrics"]

    def test_stats_without_cache(self):
        server = make_server()
        server.serve(AccessRequest(alice(), URI))
        assert server.stats()["cache"] is None

    def test_stats_agree_with_audit_trail(self):
        server = make_server()
        server.serve(AccessRequest(alice(), URI))
        server.serve(
            AccessRequest(alice(), URI),
            limits=ResourceLimits(deadline_seconds=0.0),
        )
        stats = server.stats()
        audit_outcomes = [record.outcome for record in server.audit]
        assert stats["requests"]["serve"].get("released", 0) == audit_outcomes.count(
            "released"
        )
        assert stats["requests"]["serve"].get("error", 0) == audit_outcomes.count(
            "error"
        )

    def test_viewcache_hit_miss_counters(self):
        server = make_server(view_cache=ViewCache())
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(alice(), URI))
        assert server.metrics.value("viewcache_requests_total", result="miss") == 1
        assert server.metrics.value("viewcache_requests_total", result="hit") == 1


class TestViewCacheStats:
    def test_stats_snapshot(self):
        cache = ViewCache(max_entries=1)
        server = make_server(view_cache=cache)
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(alice(), URI))
        snapshot = cache.stats()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5
        assert snapshot["entries"] == 1
        assert snapshot["max_entries"] == 1
        assert snapshot["evictions"] == 0
        assert snapshot["stale"] == 0

    def test_reset_stats_keeps_entries(self):
        cache = ViewCache()
        server = make_server(view_cache=cache)
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(alice(), URI))
        cache.reset_stats()
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0
        assert len(cache) == 1  # the cached view survived
        server.serve(AccessRequest(alice(), URI))
        assert cache.stats()["hits"] == 1  # still a hit: entry intact

    def test_eviction_and_stale_counters(self):
        cache = ViewCache(max_entries=1)
        server = make_server(view_cache=cache)
        server.serve(AccessRequest(alice(), URI))
        # A policy change bumps the store version: the entry goes stale.
        server.grant(Authorization.build("Public", URI + "x", "+", "R"))
        server.serve(AccessRequest(alice(), URI))
        assert cache.stats()["stale"] == 1
        # Two distinct entitlement sets against max_entries=1: eviction.
        server.publish_document("http://x/other.xml", NOTES)
        server.grant(Authorization.build("Public", "http://x/other.xml", "+", "R"))
        server.serve(AccessRequest(alice(), "http://x/other.xml"))
        assert cache.stats()["evictions"] >= 1


class TestDegradedPathObservability:
    """Audit records and metrics must tell the same story."""

    def test_cache_outage_recompute(self):
        server = make_server(view_cache=ViewCache())
        with FAULTS.injected("cache.get"):
            response = server.serve(AccessRequest(alice(), URI))
        assert response.ok and "a-note" in response.xml_text
        # Audit: the request succeeded, with the degradation noted.
        last = list(server.audit)[-1]
        assert last.outcome == "released"
        assert "cache unavailable; view recomputed" in last.detail
        # Metrics: one degradation event, one successful request, one
        # injected firing — all consistent with the audit record.
        assert (
            server.metrics.value("cache_degraded_total", event="get-failed") == 1
        )
        assert (
            server.metrics.value(
                "requests_total", kind="serve", outcome="released"
            )
            == 1
        )
        assert METRICS.value("faults_injected_total", point="cache.get") == 1
        assert FAULTS.fired("cache.get") == 1

    def test_cache_store_failure(self):
        server = make_server(view_cache=ViewCache())
        with FAULTS.injected("cache.put"):
            response = server.serve(AccessRequest(alice(), URI))
        assert response.ok
        last = list(server.audit)[-1]
        assert last.outcome == "released"
        assert "cache store failed; view served uncached" in last.detail
        assert (
            server.metrics.value("cache_degraded_total", event="put-failed") == 1
        )
        assert METRICS.value("faults_injected_total", point="cache.put") == 1

    def test_repository_fault(self):
        server = make_server()
        with FAULTS.injected("repository.read"):
            with pytest.raises(RepositoryError):
                server.serve(AccessRequest(alice(), URI))
        last = list(server.audit)[-1]
        assert last.outcome == "error"
        assert "repository read failed" in last.detail
        assert server.metrics.value("repository_errors_total") == 1
        assert (
            server.metrics.value("requests_total", kind="serve", outcome="error")
            == 1
        )
        assert METRICS.value("faults_injected_total", point="repository.read") == 1

    def test_deadline_trip(self):
        server = make_server()
        response = server.serve(
            AccessRequest(alice(), URI),
            limits=ResourceLimits(deadline_seconds=0.0),
        )
        assert not response.ok
        assert isinstance(response.error, DeadlineExceeded)
        last = list(server.audit)[-1]
        assert last.outcome == "error"
        assert last.detail.startswith("deadline-exceeded:")
        assert (
            server.metrics.value("guard_trips_total", kind="deadline-exceeded") == 1
        )
        assert (
            server.metrics.value("requests_total", kind="serve", outcome="error")
            == 1
        )
        # The failed request still has a latency observation.
        assert server.stats()["latency"]["serve"]["count"] == 1

    def test_retry_attempts_counted(self, tmp_path):
        server = make_server(defer_parse=False)
        FAULTS.arm("persistence.write", times=2)
        save_server(server, tmp_path / "state")
        assert METRICS.value("retry_attempts_total") == 2
        assert METRICS.value("retry_exhausted_total") is None

    def test_retry_exhaustion_counted(self, tmp_path):
        server = make_server(defer_parse=False)
        with FAULTS.injected("persistence.write"):
            with pytest.raises(Exception):
                save_server(server, tmp_path / "state")
        assert METRICS.value("retry_exhausted_total") == 1
