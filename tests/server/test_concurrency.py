"""Differential stress suite: one server, many threads.

The contract under test (docs/ARCHITECTURE.md, "Threading model"): a
single :class:`SecureXMLServer` serves parallel mixed traffic with

- every response **byte-identical** to a sequential replay of the same
  workload on an identically built server,
- cache counter conservation (``hits + misses == lookups``) and a
  single labeling pass for concurrent misses on one key (single-flight),
- no lost metric increments and exactly one instance per metric name,
- an audit ring whose length equals the request count,
- tracer spans that never leak across threads (ContextVar isolation),
- an atomic fail-N-times countdown in the fault injector, and
- a durable audit sink that neither loses nor duplicates records while
  rotating under concurrent writers.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.authz.authorization import Authorization
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, current_tracer, tracing
from repro.server.audit import AuditLog
from repro.server.audit_sink import JsonlAuditSink, iter_audit_records
from repro.server.cache import ViewCache
from repro.server.concurrent import (
    ConcurrentFrontEnd,
    ExplainRequest,
    StreamRequest,
    dispatch,
    serve_many,
)
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.server.updates import SetText, UpdateRequest
from repro.subjects.hierarchy import Requester
from repro.testing.faults import FAULTS, FaultInjector, InjectedFault

URI = "http://x/archive.xml"
DTD_URI = "http://x/archive.dtd"
NOTES_URI = "http://x/notes.xml"

THREADS = 8

ARCHIVE_DTD = (
    "<!ELEMENT archive (section*)>"
    "<!ELEMENT section (title, record)>"
    "<!ATTLIST section kind CDATA #REQUIRED>"
    "<!ELEMENT title (#PCDATA)>"
    "<!ELEMENT record (#PCDATA)>"
    "<!ATTLIST record id CDATA #REQUIRED>"
)

NOTES = (
    "<notes>"
    "<note owner='alice' level='public'>a-public</note>"
    "<note owner='alice' level='secret'>a-secret</note>"
    "<note owner='bob' level='public'>b-public</note>"
    "</notes>"
)


def archive_text(sections: int = 200) -> str:
    parts = ["<archive>"]
    for index in range(sections):
        kind = "private" if index % 4 == 0 else "public"
        parts.append(
            f"<section kind='{kind}'><title>t{index}</title>"
            f"<record id='r{index}'>body {index}</record></section>"
        )
    parts.append("</archive>")
    return "".join(parts)


def build_server(view_cache: bool = True, sections: int = 200) -> SecureXMLServer:
    """One deterministic construction, used for both the concurrent
    server and its sequential replay twin."""
    server = SecureXMLServer(
        view_cache=ViewCache() if view_cache else None,
        audit=AuditLog(capacity=100_000),
    )
    server.add_group("Staff")
    server.add_user("alice", groups=["Staff"])
    server.add_user("bob")
    server.publish_dtd(DTD_URI, ARCHIVE_DTD)
    server.publish_document(URI, archive_text(sections), dtd_uri=DTD_URI)
    server.publish_document(NOTES_URI, NOTES)
    server.grant(Authorization.build("Public", f"{URI}://archive", "+", "R"))
    server.grant(
        Authorization.build("Public", f"{URI}://section[@kind='private']", "-", "R")
    )
    server.grant(
        Authorization.build("Staff", f"{URI}://section[@kind='private']", "+", "R")
    )
    server.grant(
        Authorization.build("Staff", f"{NOTES_URI}://note[@owner='alice']", "+", "R")
    )
    server.grant(
        Authorization.build("Public", f"{NOTES_URI}://note[@level='public']", "+", "R")
    )
    return server


def alice() -> Requester:
    return Requester("alice", "10.0.0.1", "pc.lab.com")


def bob() -> Requester:
    return Requester("bob", "10.0.0.2", "pc2.lab.com")


def mixed_workload(repeats: int = 3) -> list:
    """A deterministic mixed batch: serve / stream / query / explain,
    several requesters, both documents, guaranteed cache hits *and*
    misses."""
    requests = []
    for _ in range(repeats):
        for requester in (alice(), bob(), Requester()):
            requests.append(AccessRequest(requester, URI))
            requests.append(StreamRequest(AccessRequest(requester, URI)))
            requests.append(QueryRequest(requester, URI, "//record"))
            requests.append(AccessRequest(requester, NOTES_URI))
            requests.append(
                QueryRequest(requester, NOTES_URI, "//note[@owner='alice']")
            )
        requests.append(ExplainRequest(alice(), NOTES_URI))
    return requests


def response_fingerprint(outcome) -> tuple:
    """The order-independent identity of one outcome."""
    if outcome.error is not None:
        return (outcome.kind, type(outcome.error).__name__)
    result = outcome.result
    if outcome.kind == "explain":
        return (outcome.kind, len(result), result.visible_nodes)
    return (
        outcome.kind,
        result.xml_text,
        result.loosened_dtd_text,
        result.empty,
        result.visible_nodes,
        result.total_nodes,
    )


def audit_fingerprints(server) -> list[tuple]:
    """Audit outcomes without timing/detail (detail legitimately differs
    between 'cache hit', 'cache hit (single-flight)' and a compute)."""
    return sorted(
        (r.requester, r.uri, r.action, r.outcome, r.visible_nodes, r.total_nodes)
        for r in server.audit
    )


def sequential_replay(workload) -> tuple[list, SecureXMLServer]:
    server = build_server()
    outcomes = []
    for index, item in enumerate(workload):
        from repro.server.concurrent import _outcome

        outcomes.append(_outcome(server, index, item, None))
    return outcomes, server


class TestDifferential:
    def test_mixed_workload_byte_identical_to_sequential(self):
        workload = mixed_workload(repeats=3)
        expected, sequential_server = sequential_replay(workload)

        concurrent_server = build_server()
        outcomes = serve_many(concurrent_server, workload, max_workers=THREADS)

        assert len(outcomes) == len(workload)
        for got, want in zip(outcomes, expected):
            assert got.index == want.index
            assert response_fingerprint(got) == response_fingerprint(want)
        # Same decisions audited, independent of interleaving order.
        assert audit_fingerprints(concurrent_server) == audit_fingerprints(
            sequential_server
        )

    def test_repeated_runs_are_stable(self):
        workload = mixed_workload(repeats=2)
        expected, _ = sequential_replay(workload)
        want = [response_fingerprint(o) for o in expected]
        for _ in range(3):
            server = build_server()
            outcomes = serve_many(server, workload, max_workers=THREADS)
            assert [response_fingerprint(o) for o in outcomes] == want

    def test_interleaved_document_and_policy_updates_in_phases(self):
        """Reads race each other, document and policy changes land
        between phases: every phase must match its sequential twin
        (version-guarded cache invalidation under threads)."""
        workload = [AccessRequest(r, URI) for r in (alice(), bob(), Requester())] * 4

        def phase_mutations(server):
            yield None
            server.grant(
                Authorization.build("Public", f"{URI}://title", "-", "R")
            )
            yield None
            server.grant(
                Authorization.build("bob", f"{URI}://section[@kind='private']", "+", "R")
            )
            yield None
            # A *document* update (not just policy): rewrite every record
            # body through the write pipeline, bumping stored.version.
            server.grant(
                Authorization.build(
                    ("alice", "*", "*"), f"{URI}://record", "+", "R", action="write"
                )
            )
            applied = server.update(
                UpdateRequest.of(alice(), URI, SetText("//record", "rewritten"))
            )
            assert applied.applied
            yield None

        sequential = build_server()
        concurrent = build_server()
        seq_phases, conc_phases = [], []
        for seq_step, conc_step in zip(
            phase_mutations(sequential), phase_mutations(concurrent)
        ):
            seq_phases.append(
                [
                    response_fingerprint(o)
                    for o in sequential_replay_on(sequential, workload)
                ]
            )
            conc_phases.append(
                [
                    response_fingerprint(o)
                    for o in serve_many(concurrent, workload, max_workers=THREADS)
                ]
            )
        assert conc_phases == seq_phases
        # The phases genuinely differ (each mutation did something).
        assert len(seq_phases) == 4
        for earlier, later in zip(seq_phases, seq_phases[1:]):
            assert earlier != later

    def test_reads_racing_one_update_see_only_valid_states(self):
        """A grant landing mid-traffic: every concurrent response equals
        either the pre-grant or the post-grant sequential view, never a
        torn mixture — and once the dust settles the cache serves the
        post-grant view."""
        reference = build_server()
        before = reference.serve(AccessRequest(bob(), URI)).xml_text
        reference.grant(
            Authorization.build("bob", f"{URI}://section[@kind='private']", "+", "R")
        )
        after = reference.serve(AccessRequest(bob(), URI)).xml_text
        assert before != after

        server = build_server()
        server.serve(AccessRequest(bob(), URI))  # warm the cache
        start = threading.Barrier(THREADS + 1)
        texts: list[str] = []
        lock = threading.Lock()

        def reader():
            start.wait()
            for _ in range(6):
                text = server.serve(AccessRequest(bob(), URI)).xml_text
                with lock:
                    texts.append(text)

        threads = [threading.Thread(target=reader) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        start.wait()
        server.grant(
            Authorization.build("bob", f"{URI}://section[@kind='private']", "+", "R")
        )
        for thread in threads:
            thread.join()

        assert set(texts) <= {before, after}
        assert server.serve(AccessRequest(bob(), URI)).xml_text == after


def sequential_replay_on(server, workload) -> list:
    from repro.server.concurrent import _outcome

    return [_outcome(server, i, item, None) for i, item in enumerate(workload)]


class TestCacheUnderConcurrency:
    def test_counter_conservation(self):
        server = build_server()
        workload = [
            AccessRequest(requester, uri)
            for _ in range(6)
            for requester in (alice(), bob(), Requester())
            for uri in (URI, NOTES_URI)
        ]
        outcomes = serve_many(server, workload, max_workers=THREADS)
        assert all(o.ok for o in outcomes)
        stats = server.view_cache.stats()
        # Every serve probes the cache exactly once; a single-flight
        # follower's probe was already counted as a miss.
        assert stats["hits"] + stats["misses"] == len(workload)
        assert stats["shared"] <= stats["misses"]
        assert stats["hits"] + stats["misses"] >= stats["shared"]

    def test_single_flight_concurrent_misses_label_once(self):
        server = build_server(sections=400)
        request = AccessRequest(Requester(), URI)
        start = threading.Barrier(THREADS)

        def one():
            start.wait()
            return server.serve(request)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            responses = [f.result() for f in [pool.submit(one) for _ in range(THREADS)]]

        assert len({r.xml_text for r in responses}) == 1
        # The acceptance criterion: N concurrent misses on one key do
        # exactly ONE labeling pass.
        label_histogram = server.metrics.histogram("stage_seconds", stage="label")
        assert label_histogram.count == 1
        stats = server.view_cache.stats()
        assert stats["hits"] + stats["misses"] == THREADS
        # Every non-leader either shared the flight result or arrived
        # late enough for a genuine hit; nobody recomputed.
        assert stats["misses"] == stats["shared"] + 1
        assert (
            server.metrics.value("single_flight_total", outcome="recomputed")
            is None
        )

    def test_stats_and_len_stable_under_traffic(self):
        server = build_server()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                server.serve(AccessRequest(alice(), URI))
                server.serve(AccessRequest(bob(), NOTES_URI))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(60):
                stats = server.view_cache.stats()
                assert stats["hits"] >= 0 and stats["misses"] >= 0
                len(server.view_cache)
                server.stats()
                server.metrics.render_prometheus()
                list(server.audit)
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestMetricsUnderConcurrency:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()
        workers, per_worker = 16, 5_000
        start = threading.Barrier(workers)

        def bump():
            counter = registry.counter("hits_total", worker="shared")
            start.wait()
            for _ in range(per_worker):
                counter.inc()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(bump) for _ in range(workers)]:
                future.result()
        assert registry.value("hits_total", worker="shared") == workers * per_worker

    def test_get_or_create_returns_one_instance(self):
        registry = MetricsRegistry()
        start = threading.Barrier(16)
        seen = set()
        lock = threading.Lock()

        def create():
            start.wait()
            metric = registry.counter("unique_total", path="/x")
            with lock:
                seen.add(id(metric))

        with ThreadPoolExecutor(max_workers=16) as pool:
            for future in [pool.submit(create) for _ in range(16)]:
                future.result()
        assert len(seen) == 1
        assert len(registry) == 1

    def test_histogram_observation_conservation(self):
        registry = MetricsRegistry()
        workers, per_worker = 8, 2_000

        def observe():
            histogram = registry.histogram("latency_seconds")
            for index in range(per_worker):
                histogram.observe(index * 0.0001)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(observe) for _ in range(workers)]:
                future.result()
        histogram = registry.histogram("latency_seconds")
        assert histogram.count == workers * per_worker
        assert sum(histogram.bucket_counts) == workers * per_worker

    def test_server_request_counters_conserved(self):
        server = build_server(view_cache=False)
        workload = [AccessRequest(alice(), NOTES_URI)] * 40
        outcomes = serve_many(server, workload, max_workers=THREADS)
        assert all(o.ok for o in outcomes)
        assert (
            server.metrics.value("requests_total", kind="serve", outcome="released")
            == len(workload)
        )


class TestAuditUnderConcurrency:
    def test_ring_length_equals_request_count(self):
        server = build_server()
        workload = [
            AccessRequest(requester, uri)
            for _ in range(5)
            for requester in (alice(), bob(), Requester())
            for uri in (URI, NOTES_URI)
        ] + [QueryRequest(alice(), URI, "//title")] * 10
        outcomes = serve_many(server, workload, max_workers=THREADS)
        assert all(o.ok for o in outcomes)
        assert len(server.audit) == len(workload)

    def test_jsonl_sink_concurrent_writers_rotation(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        # max_files large enough that no generation is ever dropped:
        # conservation must hold record-for-record.
        sink = JsonlAuditSink(path, max_bytes=2_048, max_files=500)
        log = AuditLog(capacity=100_000, sink=sink)
        workers, per_worker = 8, 60
        start = threading.Barrier(workers)

        def write(worker: int):
            start.wait()
            for index in range(per_worker):
                log.record(
                    Requester(f"user{worker}"),
                    URI,
                    "read",
                    "released",
                    detail=f"w{worker}-r{index}",
                )

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(write, w) for w in range(workers)]:
                future.result()

        total = workers * per_worker
        assert sink.records_written == total
        assert len(log) == total
        details = [record.detail for record in iter_audit_records(path)]
        # Nothing lost, nothing duplicated, across live + rotated files.
        assert sorted(details) == sorted(
            f"w{w}-r{i}" for w in range(workers) for i in range(per_worker)
        )
        assert sink.rotations > 0
        # The size counter re-stats after rotation: it must agree with
        # the actual live file.
        assert sink._size == os.path.getsize(path)

    def test_sink_error_counted_on_server_registry(self):
        def bad_sink(record):
            raise OSError("disk on fire")

        server = build_server(view_cache=False)
        server.audit.sink = bad_sink
        response = server.serve(AccessRequest(alice(), NOTES_URI))
        assert response.ok
        # Counted on the *server's* registry, not only process-wide.
        assert server.metrics.value("audit_sink_errors_total") == 1


class TestTracerIsolation:
    def test_spans_never_leak_across_threads(self):
        server = build_server(view_cache=False)
        workers = 6
        start = threading.Barrier(workers)
        tracers: dict[int, Tracer] = {}

        def traced(worker: int):
            tracer = Tracer()
            tracers[worker] = tracer  # distinct keys: no dict race
            start.wait()
            with tracing(tracer):
                for _ in range(3):
                    server.serve(AccessRequest(alice(), URI))
            return tracer

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(traced, w) for w in range(workers)]:
                future.result()

        for tracer in tracers.values():
            names = [span.name for span in tracer.spans]
            # Exactly this thread's own requests — never a neighbour's.
            assert names.count("request.serve") == 3
            assert names.count("label") == 3

    def test_worker_threads_start_without_a_tracer(self):
        with tracing(Tracer()):
            assert current_tracer() is not None
            with ThreadPoolExecutor(max_workers=1) as pool:
                assert pool.submit(current_tracer).result() is None

    def test_response_timings_are_request_private(self):
        server = build_server(view_cache=False)
        outcomes = serve_many(
            server, [AccessRequest(alice(), URI)] * 12, max_workers=THREADS
        )
        for outcome in outcomes:
            assert outcome.timings.get("request.serve", 0) > 0
            # One request's breakdown covers exactly one serve.
            assert outcome.timings["request.serve"] >= outcome.timings.get("label", 0)


class TestFaultInjectorUnderConcurrency:
    def test_fail_n_times_countdown_is_atomic(self):
        injector = FaultInjector()
        budget, workers, per_worker = 50, 16, 100
        injector.arm("race.point", times=budget)
        start = threading.Barrier(workers)
        fired = []
        lock = threading.Lock()

        def trip_many():
            start.wait()
            count = 0
            for _ in range(per_worker):
                try:
                    injector.trip("race.point")
                except InjectedFault:
                    count += 1
            with lock:
                fired.append(count)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(trip_many) for _ in range(workers)]:
                future.result()
        # Exactly the budget fires — never N±1 from racing decrements.
        assert sum(fired) == budget
        assert injector.fired("race.point") == budget

    def test_global_injector_blast_radius_is_process_wide(self):
        """Documented, deliberate behaviour: arming FAULTS in one thread
        fires in any thread that trips the point."""
        with FAULTS.injected("cache.get"):
            with ThreadPoolExecutor(max_workers=1) as pool:
                with pytest.raises(InjectedFault):
                    pool.submit(FAULTS.trip, "cache.get").result()

    def test_armed_cache_fault_degrades_every_concurrent_request(self):
        server = build_server()
        with FAULTS.injected("cache.get"):
            outcomes = serve_many(
                server, [AccessRequest(alice(), NOTES_URI)] * 10, max_workers=4
            )
        assert all(o.ok for o in outcomes)
        assert (
            server.metrics.value("cache_degraded_total", event="get-failed") == 10
        )


class TestFrontEnd:
    def test_front_end_reuse_across_batches(self):
        server = build_server()
        with ConcurrentFrontEnd(server, max_workers=4) as pool:
            first = pool.serve_many([AccessRequest(alice(), NOTES_URI)] * 4)
            second = pool.serve_many([QueryRequest(bob(), URI, "//record")] * 4)
        assert all(o.ok for o in first + second)
        assert {o.kind for o in first} == {"serve"}
        assert {o.kind for o in second} == {"query"}

    def test_per_request_errors_are_contained(self):
        server = build_server()
        workload = [
            AccessRequest(alice(), NOTES_URI),
            AccessRequest(alice(), "http://x/missing.xml"),
            AccessRequest(bob(), NOTES_URI),
        ]
        outcomes = serve_many(server, workload, max_workers=3)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "missing.xml" in str(outcomes[1].error)

    def test_dispatch_rejects_unknown_request_types(self):
        server = build_server()
        with pytest.raises(TypeError):
            dispatch(server, object())

    def test_deferred_parse_document_parses_once_under_race(self):
        server = SecureXMLServer(view_cache=ViewCache())
        server.publish_document(URI, archive_text(100), defer_parse=True)
        server.grant(Authorization.build("Public", f"{URI}://archive", "+", "R"))
        outcomes = serve_many(
            server, [AccessRequest(Requester(), URI)] * THREADS, max_workers=THREADS
        )
        assert all(o.ok for o in outcomes)
        assert len({o.result.xml_text for o in outcomes}) == 1
