"""Facade-level contract of the write path (:meth:`SecureXMLServer.update`).

Engine semantics live in ``tests/update/``; the old-path behaviours
(atomicity, denial messages, schema-level grants) in
``tests/server/test_updates.py``. This suite pins what the *server*
adds around the engine:

- ``update.*`` spans under a ``request.update`` umbrella;
- ``update_requests_total`` / ``relabel_nodes_total`` /
  ``cache_partial_invalidations_total`` metrics that agree with the
  audit trail (``backend="update"``);
- subtree-granular cache invalidation: views provably disjoint from
  the edit survive with re-stamped versions and keep hitting;
- structured guard failures (``applied=False`` + ``error_kind``);
- the write-consistency checker endpoint;
- ``concurrent.dispatch`` routing of :class:`UpdateRequest`.
"""

from __future__ import annotations

import pytest

from repro.authz.authorization import Authorization
from repro.errors import DeadlineExceeded
from repro.limits import ResourceLimits
from repro.obs import tracing
from repro.server.cache import ViewCache
from repro.server.concurrent import dispatch
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.update import SetAttribute, SetText, UpdateDenied, UpdateRequest

URI = "http://x/notes.xml"
NOTES = (
    "<notes>"
    "<note owner='alice' state='open'>a-note</note>"
    "<note owner='bob' state='open'>b-note</note>"
    "</notes>"
)


def alice():
    return Requester("alice", "10.0.0.1", "pc.lab.com")


def carol():
    return Requester("carol", "10.0.0.3", "pc3.lab.com")


def make_server(view_cache=None):
    server = SecureXMLServer(view_cache=view_cache)
    server.add_user("alice")
    server.add_user("carol")
    # alice sees everything; carol sees only bob's note (disjoint from
    # the subtree alice edits below).
    server.publish_document(URI, NOTES)
    server.grant(Authorization.build(("alice", "*", "*"), URI, "+", "R"))
    server.grant(
        Authorization.build(
            ("carol", "*", "*"), f"{URI}://note[@owner='bob']", "+", "R"
        )
    )
    server.grant(
        Authorization.build(
            ("alice", "*", "*"),
            f"{URI}://note[@owner='alice']",
            "+",
            "R",
            action="write",
        )
    )
    return server


def edit_alices_note():
    return UpdateRequest.of(
        alice(), URI, SetAttribute("//note[@owner='alice']", "state", "done")
    )


class TestMetricsAndSpans:
    def test_applied_update_meters_and_spans(self):
        server = make_server(view_cache=ViewCache())
        with tracing() as tracer:
            outcome = server.update(edit_alices_note())
        assert outcome.applied
        names = {span.name for span in tracer.spans}
        for stage in (
            "request.update",
            "update.plan",
            "update.apply",
            "update.relabel",
            "update.commit",
            "update.invalidate",
            "authz.bind",
        ):
            assert stage in names, stage
        assert (
            server.metrics.value("update_requests_total", outcome="applied") == 1
        )
        assert server.metrics.value("relabel_nodes_total") == (
            outcome.relabeled_nodes
        )
        assert (
            server.metrics.value(
                "requests_total", kind="update", outcome="released"
            )
            == 1
        )

    def test_denied_update_meters_and_audits(self):
        server = make_server()
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    SetAttribute("//note[@owner='bob']", "state", "done"),
                )
            )
        assert (
            server.metrics.value("update_requests_total", outcome="denied") == 1
        )
        assert (
            server.metrics.value(
                "requests_total", kind="update", outcome="denied"
            )
            == 1
        )
        last = server.audit.tail(1)[0]
        assert last.outcome == "denied"
        assert last.backend == "update"

    def test_applied_update_audits_with_update_backend(self):
        server = make_server()
        server.update(edit_alices_note())
        last = server.audit.tail(1)[0]
        assert last.outcome == "released"
        assert last.backend == "update"
        assert last.detail == "1 operation(s) applied"


class TestSubtreeGranularInvalidation:
    def test_disjoint_view_survives_the_edit(self):
        cache = ViewCache()
        server = make_server(view_cache=cache)
        server.serve(AccessRequest(alice(), URI))  # warm both classes
        server.serve(AccessRequest(carol(), URI))
        outcome = server.update(edit_alices_note())
        # carol's cached view never shows alice's note: provably
        # disjoint from the edit, so it survives; alice's view drops.
        assert outcome.cache_kept == 1
        assert outcome.cache_dropped == 1
        assert (
            server.metrics.value(
                "cache_partial_invalidations_total", result="kept"
            )
            == 1
        )
        assert (
            server.metrics.value(
                "cache_partial_invalidations_total", result="dropped"
            )
            == 1
        )
        stats = cache.stats()
        assert stats["invalidated"] == 1
        assert stats["revalidated"] == 1

    def test_surviving_entry_keeps_hitting(self):
        cache = ViewCache()
        server = make_server(view_cache=cache)
        before = server.serve(AccessRequest(carol(), URI)).xml_text
        server.serve(AccessRequest(alice(), URI))
        server.update(edit_alices_note())
        hits = cache.stats()["hits"]
        response = server.serve(AccessRequest(carol(), URI))
        assert response.xml_text == before
        assert cache.stats()["hits"] == hits + 1  # re-stamped, not stale
        # alice's dropped entry recomputes and shows the new bytes.
        assert 'state="done"' in server.serve(AccessRequest(alice(), URI)).xml_text

    def test_edit_intersecting_every_view_drops_everything(self):
        cache = ViewCache()
        server = make_server(view_cache=cache)
        server.grant(
            Authorization.build(
                ("alice", "*", "*"), f"{URI}://note", "+", "R", action="write"
            )
        )
        server.serve(AccessRequest(alice(), URI))
        server.serve(AccessRequest(carol(), URI))
        outcome = server.update(
            UpdateRequest.of(alice(), URI, SetText("//note", "rewritten"))
        )
        assert outcome.cache_kept == 0
        assert outcome.cache_dropped == 2
        assert "rewritten" in server.serve(AccessRequest(carol(), URI)).xml_text


class TestStructuredGuardFailures:
    def test_deadline_trip_returns_structured_outcome(self):
        server = make_server()
        outcome = server.update(
            edit_alices_note(), limits=ResourceLimits(deadline_seconds=0.0)
        )
        assert not outcome.applied
        assert isinstance(outcome.error, DeadlineExceeded)
        assert outcome.error_kind == "deadline-exceeded"
        assert (
            server.metrics.value("guard_trips_total", kind="deadline-exceeded")
            == 1
        )
        assert (
            server.metrics.value("update_requests_total", outcome="error") == 1
        )
        last = server.audit.tail(1)[0]
        assert last.outcome == "error"
        assert last.backend == "update"
        assert last.detail.startswith("deadline-exceeded:")
        # The document is untouched.
        assert "a-note" in server.serve(AccessRequest(alice(), URI)).xml_text


class TestConsistencyEndpoint:
    def test_consistent_policy_accepts(self):
        server = make_server()
        findings = server.check_consistency(alice(), URI)
        assert findings == []
        assert (
            server.metrics.value("consistency_checks_total", outcome="accept")
            == 1
        )
        last = server.audit.tail(1)[0]
        assert last.action == "consistency"
        assert last.outcome == "accept"
        assert last.backend == "update"

    def test_write_grant_on_hidden_node_flagged_with_repair(self):
        server = make_server()
        # carol may write alice's note but cannot read it: flagged.
        server.grant(
            Authorization.build(
                ("carol", "*", "*"),
                f"{URI}://note[@owner='alice']",
                "+",
                "R",
                action="write",
            )
        )
        findings = server.check_consistency(carol(), URI, suggest_repairs=True)
        assert findings
        assert all(f.repair is not None for f in findings)
        assert all("carol" in f.repair.unparse() for f in findings)
        assert (
            server.metrics.value("consistency_checks_total", outcome="repair")
            == 1
        )
        assert server.audit.tail(1)[0].outcome == "repair"


class TestDispatchRouting:
    def test_dispatch_routes_update_requests(self):
        server = make_server()
        outcome = dispatch(server, edit_alices_note())
        assert outcome.applied
        assert outcome.version == 1

    def test_versions_increase_across_dispatches(self):
        server = make_server()
        first = dispatch(server, edit_alices_note())
        second = dispatch(
            server,
            UpdateRequest.of(
                alice(),
                URI,
                SetAttribute("//note[@owner='alice']", "state", "open"),
            ),
        )
        assert second.version == first.version + 1
