"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.scenarios import LAB_DTD_TEXT


@pytest.fixture
def files(tmp_path):
    doc = tmp_path / "CSlab.xml"
    doc.write_text(
        '<laboratory name="CSlab">'
        '<project name="P" type="public">'
        "<manager><flname>Ann</flname></manager>"
        '<paper category="public"><title>Open</title></paper>'
        '<paper category="private"><title>Secret</title></paper>'
        "</project></laboratory>"
    )
    dtd = tmp_path / "laboratory.dtd"
    dtd.write_text(LAB_DTD_TEXT)
    xacl = tmp_path / "policy.xacl"
    xacl.write_text(
        '<xacl base="http://lab/">'
        '<authorization sign="+" type="R">'
        '<subject user-group="Staff"/>'
        '<object uri="CSlab.xml" path="//paper[@category=\'public\']"/>'
        "</authorization>"
        '<authorization sign="-" type="R">'
        '<subject user-group="Public"/>'
        '<object uri="CSlab.xml" path="//paper[@category=\'private\']"/>'
        "</authorization>"
        "</xacl>"
    )
    directory = tmp_path / "subjects.txt"
    directory.write_text(
        "# the staff\n"
        "group Staff\n"
        "user ann Staff\n"
        "user guest\n"
    )
    return tmp_path, doc, dtd, xacl, directory


class TestViewCommand:
    def test_staff_view(self, files, capsys):
        _, doc, dtd, xacl, directory = files
        code = main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "ann",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "Open" in out.out
        assert "Secret" not in out.out
        assert "released" in out.err

    def test_guest_view_empty(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "guest",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "empty view" in out.out

    def test_open_policy_flag(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "guest",
                "--open",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "Open" in out.out          # ε = permit under open policy
        assert "Secret" not in out.out    # explicit denial still wins

    def test_emit_dtd(self, files, capsys):
        _, doc, dtd, xacl, directory = files
        code = main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--dtd", str(dtd),
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "ann",
                "--emit-dtd",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "#IMPLIED" in out.out  # loosened DTD

    def test_pretty_flag(self, files, capsys):
        _, doc, __, xacl, directory = files
        main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "ann",
                "--pretty",
            ]
        )
        out = capsys.readouterr().out
        assert "\n  " in out

    def test_bad_credential_spec(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "view", str(doc),
                "--uri", "u", "--xacl", str(xacl),
                "--credential", "=novalue",
            ]
        )
        assert code == 1
        assert "bad credential" in capsys.readouterr().err

    def test_bad_directory_line(self, files, tmp_path, capsys):
        _, doc, __, xacl, ___ = files
        bad = tmp_path / "bad.txt"
        bad.write_text("frobnicate x\n")
        code = main(
            [
                "view", str(doc),
                "--uri", "u", "--xacl", str(xacl),
                "--directory", str(bad),
            ]
        )
        assert code == 1
        assert "expected 'group NAME" in capsys.readouterr().err


class TestOtherCommands:
    def test_validate_ok(self, files, capsys):
        _, doc, dtd, __, ___ = files
        assert main(["validate", str(doc), "--dtd", str(dtd)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_failure(self, files, tmp_path, capsys):
        _, __, dtd, ___, ____ = files
        bad = tmp_path / "bad.xml"
        bad.write_text("<laboratory><bogus/></laboratory>")
        assert main(["validate", str(bad), "--dtd", str(dtd)]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_xpath_nodes(self, files, capsys):
        _, doc, __, ___, ____ = files
        assert main(["xpath", str(doc), "//paper/title"]) == 0
        out = capsys.readouterr()
        assert "<title>Open</title>" in out.out
        assert "2 node(s)" in out.err

    def test_xpath_scalar(self, files, capsys):
        _, doc, __, ___, ____ = files
        assert main(["xpath", str(doc), "count(//paper)"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_loosen(self, files, capsys):
        _, __, dtd, ___, ____ = files
        assert main(["loosen", str(dtd)]) == 0
        assert "#IMPLIED" in capsys.readouterr().out

    def test_tree(self, files, capsys):
        _, __, dtd, ___, ____ = files
        assert main(["tree", str(dtd)]) == 0
        out = capsys.readouterr().out
        assert "(laboratory)" in out
        assert "[name]" in out

    def test_xacl_listing(self, files, capsys):
        _, __, ___, xacl, ____ = files
        assert main(["xacl", str(xacl)]) == 0
        out = capsys.readouterr()
        assert "<<Staff," in out.out
        assert "2 authorization(s)" in out.err

    def test_missing_file(self, capsys):
        assert main(["loosen", "/nonexistent.dtd"]) == 1
        assert "error" in capsys.readouterr().err

    def test_library_error_reported(self, tmp_path, capsys):
        broken = tmp_path / "broken.xml"
        broken.write_text("<unclosed")
        assert main(["xpath", str(broken), "//x"]) == 1
        assert "error" in capsys.readouterr().err


class TestExplainCommand:
    def test_explain_denied_node(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "explain", str(doc), "//paper[@category='private']",
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "ann",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "final=-" in out
        assert "not in view" in out

    def test_explain_granted_node(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "explain", str(doc), "//paper[@category='public']/title",
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(directory),
                "--user", "ann",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "final=+" in out
        assert "inherited" in out

    def test_explain_ambiguous_path_fails(self, files, capsys):
        _, doc, __, xacl, directory = files
        code = main(
            [
                "explain", str(doc), "//paper",
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
            ]
        )
        assert code == 1
        assert "exactly one node" in capsys.readouterr().err


class TestLintCommand:
    def test_clean_dtd(self, files, capsys):
        _, __, dtd, ___, ____ = files
        assert main(["lint", str(dtd)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_problem_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dtd"
        bad.write_text("<!ELEMENT a (b?, b)><!ELEMENT b EMPTY>")
        assert main(["lint", str(bad)]) == 1
        assert "not deterministic" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, files):
        import subprocess
        import sys

        _, __, dtd, ___, ____ = files
        result = subprocess.run(
            [sys.executable, "-m", "repro", "tree", str(dtd)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "(laboratory)" in result.stdout

    def test_python_dash_m_usage_error(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro"], capture_output=True, text=True
        )
        assert result.returncode == 2  # argparse usage error


class TestXmlDirectoryFormat:
    def test_xml_directory_accepted(self, files, tmp_path, capsys):
        _, doc, __, xacl, ___ = files
        xml_dir = tmp_path / "subjects.xml"
        xml_dir.write_text(
            "<directory>"
            '<group name="Staff"/>'
            '<user name="ann" in="Staff"/>'
            "</directory>"
        )
        code = main(
            [
                "view", str(doc),
                "--uri", "http://lab/CSlab.xml",
                "--xacl", str(xacl),
                "--directory", str(xml_dir),
                "--user", "ann",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "Open" in out.out


class TestPoolCommand:
    def test_pool_serves_and_reports(self, capsys):
        code = main(
            [
                "pool",
                "--workers", "2",
                "--shards", "4",
                "--requests", "12",
                "--documents", "3",
                "--nodes", "80",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "12/12 requests ok" in out
        assert "req/s" in out

    def test_pool_json_stats(self, capsys):
        code = main(
            [
                "pool",
                "--workers", "1",
                "--shards", "2",
                "--requests", "6",
                "--documents", "2",
                "--nodes", "60",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        stats = json.loads(out)
        assert stats["pool"]["workers"] == 1
        assert stats["outcomes"].get("ok") == 6
