"""Chaos: randomized worker kills mid-stream.

The pool's contract under arbitrary process death is threefold, and
each run of this suite checks all three:

1. **Exactly one outcome** — every submitted request resolves to a
   response or one typed error; nothing hangs, nothing double-fires.
   Enforced structurally (the resolve-once protocol) and checked here
   by conservation: ``sum(pool_requests_total{outcome=*})`` equals the
   number of submissions, and every outcome slot is populated.
2. **Byte identity** — every successful response (pooled *or*
   degraded) is byte-identical to a sequential in-process replay of
   the same request. Crash recovery must not change what anyone is
   entitled to see.
3. **Counter/audit conservation** — restarts observed in the audit
   log equal the restart counter; no accounting is lost when the
   process serving it dies.

The killer is a real ``SIGKILL`` from outside (not a cooperative
fault), seeded per test case so failures replay deterministically
enough to debug. Three seeds run in CI's chaos job.
"""

import random
import threading
import time
from dataclasses import dataclass

import pytest

from repro.authz.authorization import Authorization
from repro.errors import (
    DeadlineExceeded,
    PoolSaturated,
    PoolUnhealthy,
    WorkerLost,
)
from repro.server.concurrent import dispatch
from repro.server.pool import ShardedServerPool
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.server.supervisor import RestartPolicy
from repro.subjects.hierarchy import Requester
from repro.update import SetAttribute, UpdateRequest
from repro.workloads.traffic import TrafficSpec, request_stream

SPEC = TrafficSpec(documents=6, nodes_per_document=150, seed=23)
REQUEST_COUNT = 60
TYPED_ERRORS = (WorkerLost, DeadlineExceeded, PoolSaturated, PoolUnhealthy)


class Killer(threading.Thread):
    """SIGKILL random live workers at seeded random moments."""

    def __init__(self, pool, seed, kills=4, min_gap=0.05, max_gap=0.25):
        super().__init__(daemon=True)
        self.pool = pool
        self.rng = random.Random(seed)
        self.kills = kills
        self.min_gap = min_gap
        self.max_gap = max_gap
        self.performed = 0

    def run(self):
        for _ in range(self.kills):
            time.sleep(self.rng.uniform(self.min_gap, self.max_gap))
            slot = self.rng.choice(self.pool._slots)
            with slot.lock:
                process = slot.process if slot.state == "up" else None
            if process is not None and process.is_alive():
                process.kill()
                self.performed += 1


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_exactly_one_outcome_and_byte_identity(seed):
    requests = list(request_stream(SPEC, REQUEST_COUNT, seed=seed))
    reference_server = SPEC.build_server(None, 4)
    references = [dispatch(reference_server, request) for request in requests]

    pool = ShardedServerPool(
        SPEC.build_server,
        workers=2,
        shards=4,
        restart_policy=RestartPolicy(base_delay=0.02, cap=0.2),
        supervision_interval=0.02,
        breaker_threshold=3,
        breaker_cooldown=0.2,
        degraded=True,
    )
    try:
        pool.wait_ready()
        killer = Killer(pool, seed)
        killer.start()
        outcomes = []
        for index, request in enumerate(requests):
            pending = pool.submit(request)
            outcomes.append((index, pending))
            time.sleep(0.002)  # stay mid-stream while the killer works
        killer.join(timeout=10)

        # 1. exactly one outcome, for every single request
        resolved = []
        for index, pending in outcomes:
            assert pending.wait(timeout=60), f"request {index} never resolved"
            assert (pending.value is None) != (pending.error is None)
            resolved.append((index, pending))

        # 2. successes byte-identical to the sequential replay; failures typed
        successes = 0
        for index, pending in resolved:
            if pending.error is None:
                successes += 1
                response = pending.value
                reference = references[index]
                assert response.xml_text == reference.xml_text, (
                    f"request {index} ({pending.kind}) response diverged"
                )
                assert response.matches == reference.matches
                assert response.visible_nodes == reference.visible_nodes
            else:
                assert isinstance(pending.error, TYPED_ERRORS), repr(pending.error)

        # 3. counters conserve despite the carnage
        stats = pool.stats(deep=True)
        assert sum(stats["outcomes"].values()) == REQUEST_COUNT
        audited_restarts = sum(
            1 for record in pool.audit.tail(1000) if record.outcome == "restarted"
        )
        assert audited_restarts == stats["pool"]["restarts_total"]
        audited_lost = sum(
            1 for record in pool.audit.tail(1000) if record.outcome == "worker-lost"
        )
        lost_by_metric = sum(
            value
            for labels, value in stats["metrics"]
            .get("pool_worker_lost_total", {})
            .items()
        )
        assert audited_lost == lost_by_metric
        if killer.performed:
            assert lost_by_metric >= 1

        # 4. harvested fleet counters conserve across SIGKILL restarts.
        # Every ok/error response shipped its own cumulative snapshot,
        # so the fleet total is at least the dispatched count; a
        # heartbeat may have harvested a request whose response then
        # died in the pipe, so the excess is bounded by worker-lost.
        # No restart may double-count (retire folds each incarnation
        # exactly once), which the upper bound also enforces.
        fleet_total = pool.fleet.counter_total("requests_total")
        dispatched = sum(
            value
            for outcome, value in stats["outcomes"].items()
            if outcome in ("ok", "error")
        )
        lost = stats["outcomes"].get("worker-lost", 0)
        assert dispatched <= fleet_total <= dispatched + lost

        # sanity: the run must not have failed everything
        assert successes > 0
    finally:
        pool.close()


@dataclass(frozen=True)
class UpdateCorpusSpec:
    """Picklable setup for the write-path chaos run.

    A tiny corpus of note documents with a Public read grant and a
    closed-form write grant for ``writer`` — every worker (and the
    degraded fallback, built with ``shard_ids=None``) reconstructs the
    identical state, so a restarted worker's version counters restart
    from zero deterministically.
    """

    documents: int = 4
    uri_template: str = "chaos://notes{index}.xml"

    def uris(self) -> list[str]:
        return [
            self.uri_template.format(index=index)
            for index in range(self.documents)
        ]

    def build_server(self, shard_ids=None, num_shards: int = 1):
        from repro.server.repository import ShardRouter

        router = ShardRouter(num_shards)
        server = SecureXMLServer()
        server.add_user("writer")
        server.add_user("reader")
        for uri in self.uris():
            if shard_ids is not None and router.shard_of(uri) not in shard_ids:
                continue
            server.publish_document(
                uri,
                "<notes><note rev='0'>n1</note><note rev='0'>n2</note></notes>",
            )
            server.grant(Authorization.build("Public", uri, "+", "R"))
            server.grant(
                Authorization.build(
                    ("writer", "*", "*"), uri, "+", "R", action="write"
                )
            )
        return server


UPDATE_SPEC = UpdateCorpusSpec()
UPDATE_REQUEST_COUNT = 48


def mixed_update_stream(seed):
    """Seeded serve/update mix over the update corpus."""
    rng = random.Random(seed)
    writer = Requester("writer", "10.0.0.1", "pc.x")
    reader = Requester("reader", "10.0.0.2", "pc2.x")
    for step in range(UPDATE_REQUEST_COUNT):
        uri = rng.choice(UPDATE_SPEC.uris())
        if rng.random() < 0.5:
            yield UpdateRequest.of(
                writer, uri, SetAttribute("//note[1]", "rev", str(step))
            )
        else:
            yield AccessRequest(reader, uri)


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_chaos_updates_exactly_one_outcome_and_version_monotonicity(seed):
    """Writes under SIGKILL: every update resolves exactly once, and the
    versions of *successful* updates per URI are monotone in submission
    order — incremented by one, or reset (to a smaller value) only when
    the owning worker died and was rebuilt from setup. Updates are never
    served by the degraded fallback (that would split-brain the
    document), so their only failure modes are the typed pool errors.
    """
    requests = list(mixed_update_stream(seed))
    pool = ShardedServerPool(
        UPDATE_SPEC.build_server,
        workers=2,
        shards=4,
        restart_policy=RestartPolicy(base_delay=0.02, cap=0.2),
        supervision_interval=0.02,
        breaker_threshold=3,
        breaker_cooldown=0.2,
        degraded=True,
    )
    try:
        pool.wait_ready()
        killer = Killer(pool, seed, kills=3)
        killer.start()
        pendings = []
        for request in requests:
            pendings.append((request, pool.submit(request)))
            time.sleep(0.004)
        killer.join(timeout=10)

        # exactly one outcome for every submission (reads and writes)
        for index, (_, pending) in enumerate(pendings):
            assert pending.wait(timeout=60), f"request {index} never resolved"
            assert (pending.value is None) != (pending.error is None)
            if pending.error is not None:
                assert isinstance(pending.error, TYPED_ERRORS), repr(
                    pending.error
                )
        stats = pool.stats(deep=True)
        assert sum(stats["outcomes"].values()) == UPDATE_REQUEST_COUNT
        fleet_total = pool.fleet.counter_total("requests_total")
        dispatched = sum(
            value
            for outcome, value in stats["outcomes"].items()
            if outcome in ("ok", "error")
        )
        assert dispatched <= fleet_total <= dispatched + stats[
            "outcomes"
        ].get("worker-lost", 0)

        # version monotonicity per URI over successful updates
        applied = 0
        resets = 0
        last_version: dict[str, int] = {}
        for request, pending in pendings:
            if not isinstance(request, UpdateRequest) or pending.error is not None:
                continue
            outcome = pending.value
            assert outcome.applied  # writer holds a standing grant
            applied += 1
            previous = last_version.get(request.uri)
            if previous is not None:
                if outcome.version <= previous:
                    resets += 1  # rebuilt worker restarted its counters
                else:
                    assert outcome.version == previous + 1, (
                        f"{request.uri}: version jumped "
                        f"{previous} -> {outcome.version}"
                    )
            last_version[request.uri] = outcome.version
        assert applied > 0

        lost = sum(
            stats["metrics"].get("pool_worker_lost_total", {}).values()
        )
        if killer.performed == 0:
            assert resets == 0  # no crash, no counter ever goes back
        # a reset needs a worker death: at most every document once per loss
        assert resets <= max(lost, stats["pool"]["restarts_total"]) * len(
            UPDATE_SPEC.uris()
        )
    finally:
        pool.close()
