"""Tests for the document/DTD repository."""

import pytest

from repro.errors import RepositoryError, ValidationError
from repro.dtd.parser import parse_dtd
from repro.server.repository import Repository
from repro.xml.parser import parse_document


@pytest.fixture
def repo():
    r = Repository()
    r.add_dtd("http://x/a.dtd", "<!ELEMENT a (#PCDATA)>")
    return r


class TestDtds:
    def test_add_and_get(self, repo):
        dtd = repo.dtd("http://x/a.dtd")
        assert dtd.element("a") is not None
        assert dtd.uri == "http://x/a.dtd"

    def test_add_parsed_dtd(self, repo):
        parsed = parse_dtd("<!ELEMENT b EMPTY>")
        repo.add_dtd("http://x/b.dtd", parsed)
        assert repo.dtd("http://x/b.dtd") is parsed
        assert parsed.uri == "http://x/b.dtd"

    def test_duplicate_rejected(self, repo):
        with pytest.raises(RepositoryError, match="already published"):
            repo.add_dtd("http://x/a.dtd", "<!ELEMENT a EMPTY>")

    def test_unknown_rejected(self, repo):
        with pytest.raises(RepositoryError, match="no DTD"):
            repo.dtd("http://x/nope.dtd")

    def test_has_dtd(self, repo):
        assert repo.has_dtd("http://x/a.dtd")
        assert not repo.has_dtd("http://x/nope.dtd")


class TestDocuments:
    def test_add_text_parsed_lazily(self, repo):
        stored = repo.add_document("http://x/d.xml", "<a>hi</a>")
        assert stored.parsed is None or stored.parsed.root is not None
        document = repo.document("http://x/d.xml")
        assert document.root.name == "a"
        assert document.uri == "http://x/d.xml"

    def test_add_parsed_document(self, repo):
        parsed = parse_document("<a/>")
        repo.add_document("http://x/d.xml", parsed)
        assert repo.document("http://x/d.xml") is parsed
        assert parsed.uri == "http://x/d.xml"

    def test_duplicate_rejected(self, repo):
        repo.add_document("http://x/d.xml", "<a/>")
        with pytest.raises(RepositoryError, match="already stored"):
            repo.add_document("http://x/d.xml", "<a/>")

    def test_unknown_rejected(self, repo):
        with pytest.raises(RepositoryError, match="no document"):
            repo.document("http://x/nope.xml")

    def test_remove(self, repo):
        repo.add_document("http://x/d.xml", "<a/>")
        repo.remove_document("http://x/d.xml")
        assert not repo.has_document("http://x/d.xml")
        with pytest.raises(RepositoryError):
            repo.remove_document("http://x/d.xml")

    def test_listings(self, repo):
        repo.add_document("http://x/d.xml", "<a/>")
        assert list(repo.documents()) == ["http://x/d.xml"]
        assert list(repo.dtds()) == ["http://x/a.dtd"]


class TestDtdLinking:
    def test_explicit_dtd_uri(self, repo):
        repo.add_document("http://x/d.xml", "<a>t</a>", dtd_uri="http://x/a.dtd")
        assert repo.dtd_uri_of("http://x/d.xml") == "http://x/a.dtd"
        assert repo.document("http://x/d.xml").dtd is repo.dtd("http://x/a.dtd")

    def test_system_id_used_as_default(self, repo):
        repo.add_document(
            "http://x/d.xml", '<!DOCTYPE a SYSTEM "http://x/a.dtd"><a>t</a>'
        )
        assert repo.dtd_uri_of("http://x/d.xml") == "http://x/a.dtd"

    def test_validate_on_add(self, repo):
        with pytest.raises(ValidationError):
            repo.add_document(
                "http://x/bad.xml",
                "<a><nope/></a>",
                dtd_uri="http://x/a.dtd",
                validate_on_add=True,
            )

    def test_validate_on_add_passes(self, repo):
        repo.add_document(
            "http://x/good.xml",
            "<a>fine</a>",
            dtd_uri="http://x/a.dtd",
            validate_on_add=True,
        )
        assert repo.has_document("http://x/good.xml")

    def test_unpublished_dtd_uri_allowed(self, repo):
        repo.add_document("http://x/d.xml", "<a/>", dtd_uri="http://elsewhere/d.dtd")
        assert repo.dtd_uri_of("http://x/d.xml") == "http://elsewhere/d.dtd"
