"""Tests for write/update enforcement (the paper's future-work item)."""

import pytest

from repro.authz.authorization import Authorization
from repro.errors import ValidationError
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.server.updates import (
    DeleteNode,
    InsertChild,
    RemoveAttribute,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateRequest,
)
from repro.subjects.hierarchy import Requester

URI = "http://x/tasks.xml"
DTD_URI = "http://x/tasks.dtd"

TASKS_DTD = """\
<!ELEMENT tasks (task*)>
<!ELEMENT task (title, note?)>
<!ATTLIST task owner CDATA #REQUIRED state (open|done) "open">
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"""

TASKS_XML = """\
<tasks>
  <task owner="alice" state="open"><title>write tests</title></task>
  <task owner="bob" state="open"><title>review design</title><note>private</note></task>
</tasks>
"""


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_user("alice")
    s.add_user("bob")
    s.publish_dtd(DTD_URI, TASKS_DTD)
    s.publish_document(URI, TASKS_XML, dtd_uri=DTD_URI, validate_on_add=True)
    # Everyone can read everything; each user can WRITE their own tasks.
    s.grant(Authorization.build("Public", URI, "+", "R"))
    for user in ("alice", "bob"):
        s.grant(
            Authorization.build(
                (user, "*", "*"),
                f"{URI}://task[@owner='{user}']",
                "+",
                "R",
                action="write",
            )
        )
    return s


def alice():
    return Requester("alice", "10.0.0.1", "pc.x")


def bob():
    return Requester("bob", "10.0.0.2", "pc2.x")


def served_text(server):
    return server.serve(AccessRequest(alice(), URI)).xml_text


class TestAllowedUpdates:
    def test_set_attribute(self, server):
        outcome = server.update(
            UpdateRequest.of(
                alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
            )
        )
        assert outcome.applied
        assert 'owner="alice" state="done"' in served_text(server)

    def test_set_text(self, server):
        server.update(
            UpdateRequest.of(
                alice(), URI, SetText("//task[@owner='alice']/title", "renamed")
            )
        )
        assert "<title>renamed</title>" in served_text(server)

    def test_insert_child(self, server):
        server.update(
            UpdateRequest.of(
                alice(),
                URI,
                InsertChild("//task[@owner='alice']", "<note>added</note>"),
            )
        )
        assert "<note>added</note>" in served_text(server)

    def test_insert_at_position(self, server):
        # The DTD requires (title, note?): inserting the note at 0 would
        # be invalid, at the end it validates.
        server.update(
            UpdateRequest.of(
                alice(),
                URI,
                InsertChild("//task[@owner='alice']", "<note>n</note>", position=1),
            )
        )
        assert "<note>n</note>" in served_text(server)

    def test_delete_own_subtree(self, server):
        server.grant(
            Authorization.build(
                ("alice", "*", "*"), f"{URI}://tasks", "+", "L", action="write"
            )
        )
        server.update(
            UpdateRequest.of(alice(), URI, DeleteNode("//task[@owner='alice']"))
        )
        assert "write tests" not in served_text(server)

    def test_remove_attribute(self, server):
        server.update(
            UpdateRequest.of(
                alice(), URI, RemoveAttribute("//task[@owner='alice']", "state")
            )
        )
        # 'state' has a default, so the doc is still valid; attribute gone.
        assert 'owner="alice" state=' not in served_text(server)

    def test_batch_is_applied_in_order(self, server):
        server.update(
            UpdateRequest.of(
                alice(),
                URI,
                SetText("//task[@owner='alice']/title", "step1"),
                SetAttribute("//task[@owner='alice']", "state", "done"),
            )
        )
        text = served_text(server)
        assert "step1" in text and 'state="done"' in text

    def test_outcome_counts(self, server):
        outcome = server.update(
            UpdateRequest.of(
                alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
            )
        )
        assert outcome.operations == 1
        assert outcome.touched_nodes == 1

    def test_update_audited(self, server):
        server.update(
            UpdateRequest.of(
                alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
            )
        )
        record = server.audit.tail(1)[0]
        assert record.action == "write"
        assert record.outcome == "released"


class TestDeniedUpdates:
    def test_cannot_touch_others_tasks(self, server):
        with pytest.raises(UpdateDenied, match="no write authorization"):
            server.update(
                UpdateRequest.of(
                    alice(), URI, SetAttribute("//task[@owner='bob']", "state", "done")
                )
            )

    def test_read_grant_does_not_imply_write(self, server):
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(alice(), URI, SetText("//tasks", "overwritten"))
            )

    def test_denied_batch_changes_nothing(self, server):
        before = served_text(server)
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    SetText("//task[@owner='alice']/title", "mine"),       # allowed
                    SetText("//task[@owner='bob']/title", "not mine"),     # denied
                )
            )
        assert served_text(server) == before  # atomicity

    def test_delete_requires_whole_subtree_writable(self, server):
        # Give alice write on bob's task element but NOT its note child.
        server.grant(
            Authorization.build(
                ("alice", "*", "*"),
                f"{URI}://task[@owner='bob']",
                "+",
                "L",
                action="write",
            )
        )
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(alice(), URI, DeleteNode("//task[@owner='bob']"))
            )

    def test_root_cannot_be_deleted(self, server):
        server.grant(
            Authorization.build(
                ("alice", "*", "*"), URI, "+", "R", action="write"
            )
        )
        with pytest.raises(UpdateDenied, match="root element"):
            server.update(UpdateRequest.of(alice(), URI, DeleteNode("//tasks")))

    def test_invalid_result_rejected(self, server):
        # Deleting the required <title> (via SetText on a bogus child
        # insert) — easiest invalidity: insert a second title.
        with pytest.raises(ValidationError):
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    InsertChild("//task[@owner='alice']", "<title>dup</title>"),
                )
            )
        assert "dup" not in served_text(server)

    def test_attribute_target_rejected(self, server):
        with pytest.raises(UpdateDenied, match="non-element"):
            server.update(
                UpdateRequest.of(
                    alice(), URI, DeleteNode("//task[@owner='alice']/@state")
                )
            )

    def test_denial_audited(self, server):
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(
                    alice(), URI, SetText("//task[@owner='bob']/title", "x")
                )
            )
        record = server.audit.tail(1)[0]
        assert record.outcome == "denied"

    def test_explicit_write_denial_overrides_grant(self, server):
        server.grant(
            Authorization.build(
                ("alice", "*", "*"),
                f"{URI}://task[@owner='alice']/title",
                "-",
                "R",
                action="write",
            )
        )
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(
                    alice(), URI, SetText("//task[@owner='alice']/title", "x")
                )
            )

    def test_schema_level_write_denial(self, server):
        server.grant(
            Authorization.build(
                ("alice", "*", "*"), URI, "+", "RW", action="write"
            )
        )
        server.grant(
            Authorization.build(
                ("Public", "*", "*"), f"{DTD_URI}://note", "-", "R", action="write"
            )
        )
        # The weak document-wide write grant lets alice edit titles...
        server.update(
            UpdateRequest.of(alice(), URI, SetText("//task[1]/title", "ok"))
        )
        # ...but the schema-level write denial protects notes.
        with pytest.raises(UpdateDenied):
            server.update(UpdateRequest.of(alice(), URI, SetText("//note", "x")))
