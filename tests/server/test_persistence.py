"""Tests for server save/load round-trips."""

import os

import pytest

from repro.authz.authorization import Authorization
from repro.authz.restrictions import HistoryLimit
from repro.errors import RepositoryError
from repro.server.persistence import load_server, save_server
from repro.server.request import AccessRequest
from repro.server.service import PolicyConfig, SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.workloads.scenarios import (
    LAB_DOCUMENT_URI,
    LAB_DTD_TEXT,
    LAB_DTD_URI,
    lab_authorizations,
    lab_document,
)


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_group("Foreign")
    s.add_group("Admin")
    s.add_user("Tom", groups=["Foreign"])
    s.add_user("Alice", groups=["Admin"])
    s.publish_dtd(LAB_DTD_URI, LAB_DTD_TEXT)
    s.publish_document(LAB_DOCUMENT_URI, lab_document(), dtd_uri=LAB_DTD_URI)
    for authorization in lab_authorizations():
        s.grant(authorization)
    s.set_policy(
        LAB_DOCUMENT_URI,
        PolicyConfig(
            conflict_policy="permissions-take-precedence",
            open_policy=False,
            history_limit=HistoryLimit(100, 3600.0),
        ),
    )
    return s


def tom():
    return Requester("Tom", "130.100.50.8", "infosys.bld1.it")


class TestRoundTrip:
    def test_views_identical_after_reload(self, server, tmp_path):
        state = str(tmp_path / "state")
        before = server.serve(AccessRequest(tom(), LAB_DOCUMENT_URI)).xml_text
        save_server(server, state)
        reloaded = load_server(state)
        after = reloaded.serve(AccessRequest(tom(), LAB_DOCUMENT_URI)).xml_text
        assert before == after

    def test_directory_survives(self, server, tmp_path):
        state = str(tmp_path / "state")
        save_server(server, state)
        reloaded = load_server(state)
        assert reloaded.directory.is_member("Tom", "Foreign")
        assert reloaded.directory.is_member("Alice", "Admin")

    def test_authorizations_survive(self, server, tmp_path):
        state = str(tmp_path / "state")
        save_server(server, state)
        reloaded = load_server(state)
        assert len(reloaded.store) == len(server.store)
        originals = sorted(a.unparse() for a in server.store)
        restored = sorted(a.unparse() for a in reloaded.store)
        assert originals == restored

    def test_policies_survive(self, server, tmp_path):
        state = str(tmp_path / "state")
        save_server(server, state)
        reloaded = load_server(state)
        config = reloaded.policy_for(LAB_DOCUMENT_URI)
        assert config.conflict_policy == "permissions-take-precedence"
        assert config.history_limit == HistoryLimit(100, 3600.0)

    def test_dtd_link_survives(self, server, tmp_path):
        state = str(tmp_path / "state")
        save_server(server, state)
        reloaded = load_server(state)
        assert reloaded.repository.dtd_uri_of(LAB_DOCUMENT_URI) == LAB_DTD_URI
        # Schema-level denial still effective after reload.
        response = reloaded.serve(AccessRequest(tom(), LAB_DOCUMENT_URI))
        assert "Security Internals" not in response.xml_text

    def test_restrictions_survive(self, tmp_path):
        from repro.authz.restrictions import CredentialClause, ValidityWindow

        s = SecureXMLServer()
        uri = "http://x/d.xml"
        s.publish_document(uri, "<d><x>v</x></d>")
        s.grant(
            Authorization.build(
                "Public", uri, "+", "R",
                validity=ValidityWindow(not_before=1.0, not_after=2.0),
                credentials=(CredentialClause("badge", "present"),),
            )
        )
        state = str(tmp_path / "state")
        save_server(s, state)
        reloaded = load_server(state)
        restored = list(reloaded.store)[0]
        assert restored.validity == ValidityWindow(1.0, 2.0)
        assert restored.credentials == (CredentialClause("badge", "present"),)

    def test_double_round_trip_stable(self, server, tmp_path):
        first = str(tmp_path / "one")
        second = str(tmp_path / "two")
        save_server(server, first)
        save_server(load_server(first), second)
        for name in ("directory.xml", "policy.xacl", "policies.xml"):
            with open(os.path.join(first, name)) as f1, open(
                os.path.join(second, name)
            ) as f2:
                assert f1.read() == f2.read()


class TestErrors:
    def test_missing_state_directory(self, tmp_path):
        with pytest.raises(RepositoryError, match="repository.xml"):
            load_server(str(tmp_path / "nope"))

    def test_save_creates_directories(self, server, tmp_path):
        deep = str(tmp_path / "a" / "b" / "state")
        save_server(server, deep)
        assert os.path.exists(os.path.join(deep, "repository.xml"))

    def test_updates_after_reload_persistable(self, server, tmp_path):
        from repro.server.updates import SetText, UpdateRequest

        state = str(tmp_path / "state")
        for action in ("write", "read"):
            server.grant(
                Authorization.build(
                    ("Tom", "*", "*"),
                    f"{LAB_DOCUMENT_URI}://fund",
                    "+", "R", action=action,
                )
            )
        save_server(server, state)
        reloaded = load_server(state)
        reloaded.update(
            UpdateRequest.of(tom(), LAB_DOCUMENT_URI, SetText("//fund", "edited"))
        )
        second_state = str(tmp_path / "state2")
        save_server(reloaded, second_state)
        final = load_server(second_state)
        from repro.server.request import QueryRequest

        response = final.query(QueryRequest(tom(), LAB_DOCUMENT_URI, "//fund"))
        assert any("edited" in match for match in response.matches)
