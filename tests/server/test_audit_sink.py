"""Tests for the durable JSONL audit sink: rotation, retries, faults."""

import json
import os

import pytest

from repro.obs.metrics import METRICS
from repro.server.audit import AuditLog, AuditRecord
from repro.server.audit_sink import JsonlAuditSink, iter_audit_records
from repro.server.request import AccessRequest
from repro.server.retry import RetryPolicy
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.testing.faults import FAULTS

#: A fast schedule so fault-recovery tests don't sleep for real.
FAST = RetryPolicy(attempts=4, base_delay=0.0, max_delay=0.0)


def _record(log, uri="http://x/d.xml", detail=""):
    return log.record(
        Requester("alice", "1.1.1.1", "a.x"),
        uri,
        "read",
        "released",
        visible_nodes=3,
        total_nodes=10,
        elapsed_seconds=0.002,
        detail=detail,
    )


@pytest.fixture
def sink_path(tmp_path):
    return str(tmp_path / "audit.jsonl")


class TestAppend:
    def test_records_round_trip_through_the_file(self, sink_path):
        log = AuditLog(sink=JsonlAuditSink(sink_path))
        wrote = [_record(log, uri=f"http://x/{i}.xml") for i in range(5)]
        read = list(iter_audit_records(sink_path))
        assert read == wrote

    def test_each_line_is_one_json_object(self, sink_path):
        log = AuditLog(sink=JsonlAuditSink(sink_path))
        for index in range(3):
            _record(log, uri=f"http://x/{index}.xml")
        with open(sink_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 3
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_appends_to_existing_file(self, sink_path):
        log = AuditLog(sink=JsonlAuditSink(sink_path))
        _record(log)
        # A fresh sink (process restart) keeps appending, not truncating.
        log2 = AuditLog(sink=JsonlAuditSink(sink_path))
        _record(log2)
        assert len(list(iter_audit_records(sink_path))) == 2


class TestRotation:
    def test_rotates_at_configured_size(self, sink_path):
        sink = JsonlAuditSink(sink_path, max_bytes=400, max_files=3)
        log = AuditLog(sink=sink)
        for index in range(20):
            _record(log, uri=f"http://x/{index}.xml")
        assert sink.rotations > 0
        assert os.path.exists(sink_path + ".1")
        assert os.path.getsize(sink_path) < 400
        assert METRICS.value("audit_sink_rotations_total") == sink.rotations

    def test_no_record_lost_across_rotations(self, sink_path):
        sink = JsonlAuditSink(sink_path, max_bytes=400, max_files=10)
        log = AuditLog(sink=sink)
        wrote = [_record(log, uri=f"http://x/{i}.xml") for i in range(20)]
        assert list(iter_audit_records(sink_path)) == wrote

    def test_oldest_generation_dropped_beyond_max_files(self, sink_path):
        sink = JsonlAuditSink(sink_path, max_bytes=200, max_files=2)
        log = AuditLog(sink=sink)
        for index in range(30):
            _record(log, uri=f"http://x/{index}.xml")
        suffixes = sorted(
            name for name in os.listdir(os.path.dirname(sink_path))
            if name.startswith("audit.jsonl.")
        )
        assert suffixes == ["audit.jsonl.1", "audit.jsonl.2"]
        # The surviving records are the *newest* ones, in order.
        read = list(iter_audit_records(sink_path))
        assert read
        assert read[-1].uri == "http://x/29.xml"
        uris = [record.uri for record in read]
        assert uris == sorted(uris, key=lambda u: int(u.rsplit("/", 1)[1][:-4]))


class TestFaults:
    def test_transient_write_fault_is_retried(self, sink_path):
        sink = JsonlAuditSink(sink_path, retry_policy=FAST)
        log = AuditLog(sink=sink)
        FAULTS.arm("audit.write", times=2)
        entry = _record(log)
        assert list(iter_audit_records(sink_path)) == [entry]
        assert METRICS.value("audit_sink_errors_total") is None

    def test_persistent_fault_keeps_ring_and_counts_error(self, sink_path):
        sink = JsonlAuditSink(sink_path, retry_policy=FAST)
        log = AuditLog(sink=sink)
        with FAULTS.injected("audit.write"):
            entry = _record(log)
        # The request survived, the ring holds the record, the durable
        # file does not, and the failure is visible on the registry.
        assert list(log) == [entry]
        assert list(iter_audit_records(sink_path)) == []
        assert METRICS.value("audit_sink_errors_total") == 1
        # Recovery: once the fault clears, writes flow again.
        after = _record(log)
        assert list(iter_audit_records(sink_path)) == [after]


class TestServerIntegration:
    def _server(self, sink):
        from repro.authz.authorization import Authorization

        server = SecureXMLServer(audit=AuditLog(sink=sink))
        server.add_user("alice")
        server.publish_document("notes.xml", "<notes><n>hi</n></notes>")
        server.grant(Authorization.build("Public", "notes.xml", "+", "R"))
        return server

    def test_served_requests_land_in_the_file(self, sink_path):
        server = self._server(JsonlAuditSink(sink_path))
        request = AccessRequest(Requester("alice"), "notes.xml")
        assert server.serve(request).ok
        records = list(iter_audit_records(sink_path))
        assert len(records) == 1
        assert records[0].outcome == "released"
        assert records[0].backend == "dom"

    def test_stream_backend_tagged(self, sink_path):
        server = self._server(JsonlAuditSink(sink_path))
        request = AccessRequest(Requester("alice"), "notes.xml")
        assert server.serve_stream(request).ok
        records = list(iter_audit_records(sink_path))
        assert [record.backend for record in records] == ["stream"]


class TestReader:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_audit_records(str(tmp_path / "nope.jsonl"))) == []

    def test_include_rotated_false_reads_live_only(self, sink_path):
        sink = JsonlAuditSink(sink_path, max_bytes=300, max_files=4)
        log = AuditLog(sink=sink)
        for index in range(12):
            _record(log, uri=f"http://x/{index}.xml")
        live_only = list(iter_audit_records(sink_path, include_rotated=False))
        everything = list(iter_audit_records(sink_path))
        assert len(live_only) < len(everything)
        if live_only:
            assert everything[-len(live_only):] == live_only
