"""IPC serializability: everything that crosses the pool's process
boundary must pickle — and a Deadline must transfer as *remaining*
budget, since a monotonic timestamp is meaningless in another process."""

import pickle
import time

import pytest

from repro.errors import (
    DeadlineExceeded,
    LimitExceeded,
    PoolSaturated,
    PoolUnhealthy,
    RepositoryError,
    WorkerLost,
    XMLLimitExceeded,
)
from repro.limits import Deadline, ResourceLimits
from repro.server.concurrent import StreamRequest
from repro.server.repository import ShardRouter
from repro.server.request import AccessRequest, AccessResponse, QueryRequest
from repro.subjects.hierarchy import Requester


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestDeadlineTransfer:
    def test_remaining_budget_transfers(self):
        deadline = Deadline.after(5.0)
        time.sleep(0.05)
        copy = roundtrip(deadline)
        assert copy.remaining() is not None
        assert 0 < copy.remaining() <= deadline.budget - 0.04

    def test_unbounded_stays_unbounded(self):
        copy = roundtrip(Deadline.after(None))
        assert copy.unbounded
        copy.check()  # never raises

    def test_expired_deadline_transfers_as_expired(self):
        deadline = Deadline.after(0.0)
        copy = roundtrip(deadline)
        assert copy.expired
        with pytest.raises(DeadlineExceeded):
            copy.check("transferred request")

    def test_limits_for_transfer_carries_remaining(self):
        limits = ResourceLimits(deadline_seconds=10.0)
        deadline = Deadline.after(2.0)
        wire = limits.for_transfer(deadline)
        assert wire.deadline_seconds is not None
        assert wire.deadline_seconds <= 2.0
        # the other caps ride along unchanged
        assert wire.max_tree_depth == limits.max_tree_depth

    def test_limits_for_transfer_without_deadline_is_identity(self):
        limits = ResourceLimits(deadline_seconds=3.0)
        assert limits.for_transfer(None) is limits
        assert limits.for_transfer(Deadline.after(None)) is limits


class TestRequestPickling:
    def test_access_request(self):
        request = AccessRequest(
            Requester("alice", "150.1.1.1", "h.lab.com", (("role", "dr"),)),
            "urn:doc",
        )
        assert roundtrip(request) == request

    def test_query_request(self):
        request = QueryRequest(Requester("bob"), "urn:doc", "//item")
        assert roundtrip(request) == request

    def test_stream_request(self):
        request = StreamRequest(AccessRequest(Requester(), "urn:doc"))
        assert roundtrip(request) == request

    def test_access_response_with_structured_failure(self):
        response = AccessResponse(
            uri="urn:doc",
            xml_text="",
            error=LimitExceeded("too deep", limit="max_tree_depth", value=9, maximum=5),
            error_kind="limit-exceeded",
            timings={"label": 0.01},
        )
        copy = roundtrip(response)
        assert not copy.ok
        assert copy.error_kind == "limit-exceeded"
        assert isinstance(copy.error, LimitExceeded)
        assert copy.error.limit == "max_tree_depth"
        assert copy.timings == {"label": 0.01}


class TestErrorPickling:
    def test_worker_lost_keeps_attributes(self):
        error = roundtrip(WorkerLost("gone", worker=3, shard=1, reason="hung"))
        assert (error.worker, error.shard, error.reason) == (3, 1, "hung")
        assert "gone" in str(error)

    def test_pool_saturated(self):
        error = roundtrip(PoolSaturated("full", worker=0, depth=32))
        assert (error.worker, error.depth) == (0, 32)

    def test_pool_unhealthy(self):
        error = roundtrip(PoolUnhealthy("open breaker", shard=2))
        assert error.shard == 2

    def test_guard_errors(self):
        limit = roundtrip(XMLLimitExceeded("bomb", line=3, column=1, limit="x"))
        assert isinstance(limit, XMLLimitExceeded)
        assert limit.limit == "x"
        deadline = roundtrip(DeadlineExceeded("late", elapsed=2.0, budget=1.0))
        assert (deadline.elapsed, deadline.budget) == (2.0, 1.0)
        assert isinstance(roundtrip(RepositoryError("missing")), RepositoryError)


class TestShardRouterPickling:
    def test_routing_is_stable_across_pickling(self):
        router = ShardRouter(5)
        copy = roundtrip(router)
        uris = [f"urn:doc:{index}" for index in range(200)]
        assert [router.shard_of(u) for u in uris] == [
            copy.shard_of(u) for u in uris
        ]
