"""Cross-feature integration: the extensions must compose correctly.

Each test wires several features together (cache x updates, cache x
validity windows, persistence x auction scenario, explain x analysis)
and checks the *interaction*, not the features in isolation.
"""

import time

import pytest

from repro.authz.authorization import Authorization
from repro.authz.restrictions import ValidityWindow
from repro.server.cache import ViewCache
from repro.server.persistence import load_server, save_server
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.server.updates import SetText, UpdateRequest
from repro.subjects.hierarchy import Requester

URI = "http://x/d.xml"


class TestCacheComposition:
    def build(self):
        server = SecureXMLServer(view_cache=ViewCache())
        server.add_user("w")
        server.publish_document(URI, "<d><x>original</x></d>")
        server.grant(Authorization.build("Public", URI, "+", "R"))
        server.grant(
            Authorization.build(("w", "*", "*"), URI, "+", "R", action="write")
        )
        return server

    def test_update_then_cached_serve_sees_new_content(self):
        server = self.build()
        reader = Requester("anonymous", "1.1.1.1", "r.x")
        writer = Requester("w", "2.2.2.2", "w.x")
        assert "original" in server.serve(AccessRequest(reader, URI)).xml_text
        server.update(UpdateRequest.of(writer, URI, SetText("//x", "changed")))
        # The cache entry is version-stale; the serve must recompute.
        assert "changed" in server.serve(AccessRequest(reader, URI)).xml_text

    def test_expiring_window_changes_cache_key(self):
        server = SecureXMLServer(view_cache=ViewCache())
        server.publish_document(URI, "<d><x>timed</x></d>")
        now = time.time()
        server.grant(
            Authorization.build(
                "Public", URI, "+", "R",
                validity=ValidityWindow(not_after=now + 0.3),
            )
        )
        reader = Requester("anonymous", "1.1.1.1", "r.x")
        assert "timed" in server.serve(AccessRequest(reader, URI)).xml_text
        time.sleep(0.4)
        # The window expired: the applicable set is now empty, producing
        # a different cache key — the stale cached view must NOT leak.
        assert server.serve(AccessRequest(reader, URI)).empty

    def test_credentialed_and_plain_requesters_not_conflated(self):
        server = SecureXMLServer(view_cache=ViewCache())
        server.publish_document(URI, "<d><x>secret</x></d>")
        from repro.authz.restrictions import CredentialClause

        server.grant(
            Authorization.build(
                "Public", URI, "+", "R",
                credentials=(CredentialClause("badge", "present"),),
            )
        )
        badged = Requester("anonymous", "1.1.1.1", "r.x").with_credentials(badge="1")
        plain = Requester("anonymous", "1.1.1.1", "r.x")
        assert "secret" in server.serve(AccessRequest(badged, URI)).xml_text
        # Same user/IP/host — the credential difference must still
        # separate the cache keys.
        assert server.serve(AccessRequest(plain, URI)).empty


class TestPersistenceComposition:
    def test_auction_scenario_round_trips(self, tmp_path):
        from repro.workloads.auction import AUCTION_SITE_URI, auction_scenario

        scenario = auction_scenario(seed=3)
        state = str(tmp_path / "auction-state")
        save_server(scenario.server, state)
        reloaded = load_server(state)
        for requester in (
            scenario.visitor,
            scenario.requester_for("p0"),
            scenario.fraud_officer,
        ):
            before = scenario.server.serve(
                AccessRequest(requester, AUCTION_SITE_URI)
            ).xml_text
            after = reloaded.serve(AccessRequest(requester, AUCTION_SITE_URI)).xml_text
            assert before == after

    def test_reloaded_server_can_cache(self, tmp_path):
        server = SecureXMLServer()
        server.publish_document(URI, "<d><x>v</x></d>")
        server.grant(Authorization.build("Public", URI, "+", "R"))
        state = str(tmp_path / "s")
        save_server(server, state)
        reloaded = load_server(state, view_cache=ViewCache())
        reader = Requester("anonymous", "1.1.1.1", "r.x")
        reloaded.serve(AccessRequest(reader, URI))
        reloaded.serve(AccessRequest(reader, URI))
        assert reloaded.view_cache.hits == 1


class TestExplainAnalysisAgreement:
    def test_impact_deciding_nodes_match_explanations(self, lab):
        """authorization_impact's deciding count equals a manual count
        over explain_view — the two analysis paths must agree."""
        from repro.core.explain import explain_view
        from repro.server.analysis import authorization_impact
        from repro.server.service import SecureXMLServer
        from repro.workloads.scenarios import (
            LAB_DOCUMENT_URI,
            LAB_DTD_TEXT,
            LAB_DTD_URI,
            lab_document,
        )

        server = SecureXMLServer()
        server.add_group("Foreign")
        server.add_user("Tom", groups=["Foreign"])
        server.publish_dtd(LAB_DTD_URI, LAB_DTD_TEXT)
        server.publish_document(
            LAB_DOCUMENT_URI, lab_document(), dtd_uri=LAB_DTD_URI
        )
        for authorization in lab.authorizations:
            server.grant(authorization)

        tom = Requester("Tom", "130.100.50.8", "infosys.bld1.it")
        target = lab.authorizations[1]  # the public-papers RW+ grant
        impact = authorization_impact(server, LAB_DOCUMENT_URI, target, tom)

        document = server.repository.document(LAB_DOCUMENT_URI)
        report = explain_view(
            document, tom, server.store, dtd_uri=LAB_DTD_URI
        )
        manual = 0
        for explanation in report.values():
            if explanation.deciding_slot is None:
                continue
            origin = next(
                o
                for o in explanation.origins
                if o.slot == explanation.deciding_slot
            )
            if any(w.unparse() == target.unparse() for w in origin.winners):
                manual += 1
        assert impact.deciding_nodes == manual
        assert impact.view_delta > 0
