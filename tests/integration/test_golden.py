"""Golden-output regression tests.

These pin the *exact* serialized artifacts of the paper's scenario, so
any drift in serialization, labeling or pruning shows up as a readable
diff rather than a subtle behaviour change. Update deliberately.
"""

from repro.core.view import compute_view
from repro.dtd.loosen import loosen
from repro.dtd.serializer import serialize_dtd
from repro.dtd.tree import dtd_tree, render_tree
from repro.xml.serializer import serialize

TOM_VIEW_GOLDEN = (
    "<laboratory>"
    "<project>"
    "<manager><flname>Bob White</flname><email>bob@lab.com</email></manager>"
    '<paper category="public" type="conference">'
    "<title>An Access Control Model for XML</title>"
    "<authors>B. White</authors>"
    "</paper>"
    "</project>"
    "</laboratory>"
)

SAM_VIEW_GOLDEN = (
    "<laboratory>"
    "<project>"
    '<paper category="public" type="conference">'
    "<title>An Access Control Model for XML</title>"
    "<authors>B. White</authors>"
    "</paper>"
    "</project>"
    "</laboratory>"
)

LAB_TREE_GOLDEN = """\
(laboratory)
|--[name]
`--+ (project)
   |--[name]
   |--[type]
   |--(manager)
   |  |--(flname)
   |  `--? (email)
   |--* (paper)
   |  |--[category]
   |  |--? [type]
   |  |--(title)
   |  `--? (authors)
   `--? (fund)
      |--? [amount]
      `--? [sponsor]"""

LOOSENED_LAB_DTD_GOLDEN = """\
<!ELEMENT laboratory (project*)>
<!ATTLIST laboratory
          name CDATA #IMPLIED>
<!ELEMENT project (manager?, paper*, fund?)?>
<!ATTLIST project
          name CDATA #IMPLIED
          type (public | internal) #IMPLIED>
<!ELEMENT manager (flname?, email?)?>
<!ELEMENT flname (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT paper (title?, authors?)?>
<!ATTLIST paper
          category (public | private | internal) #IMPLIED
          type CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authors (#PCDATA)>
<!ELEMENT fund (#PCDATA)>
<!ATTLIST fund
          amount CDATA #IMPLIED
          sponsor CDATA #IMPLIED>"""


def strip_whitespace_nodes(xml_text: str) -> str:
    from repro.xml.parser import parse_document
    from repro.xml.serializer import serialize as ser

    return ser(
        parse_document(xml_text, keep_ignorable_whitespace=False),
        xml_declaration=False,
        doctype=False,
    )


class TestGoldenOutputs:
    def test_tom_view_exact(self, lab):
        view = compute_view(lab.document, lab.tom, lab.store).document
        rendered = serialize(view, xml_declaration=False, doctype=False)
        assert strip_whitespace_nodes(rendered) == TOM_VIEW_GOLDEN

    def test_sam_view_exact(self, lab):
        view = compute_view(lab.document, lab.sam, lab.store).document
        rendered = serialize(view, xml_declaration=False, doctype=False)
        assert strip_whitespace_nodes(rendered) == SAM_VIEW_GOLDEN

    def test_lab_dtd_tree_exact(self, lab):
        assert render_tree(dtd_tree(lab.dtd)) == LAB_TREE_GOLDEN

    def test_loosened_dtd_exact(self, lab):
        assert serialize_dtd(loosen(lab.dtd)) == LOOSENED_LAB_DTD_GOLDEN

    def test_serve_equals_processor_pipeline(self, lab):
        """The facade and the 4-step processor must emit byte-identical
        views for the same request."""
        from repro.core.processor import SecurityProcessor
        from repro.workloads.scenarios import LAB_DTD_URI

        instance = lab.store.applicable(lab.tom, lab.document.uri)
        schema = lab.store.applicable(lab.tom, LAB_DTD_URI)
        processor = SecurityProcessor(hierarchy=lab.hierarchy)
        output = processor.process_document(lab.document, instance, schema)
        direct = compute_view(lab.document, lab.tom, lab.store).document
        assert output.xml_text == serialize(direct, doctype=False)
