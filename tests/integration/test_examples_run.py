"""Every example script must run cleanly end to end.

Examples are documentation; a broken example is a broken promise. Each
one is executed as a subprocess (exactly as a user would run it) and
its key output lines are sanity-checked.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

CASES = {
    "quickstart.py": ["Figure 3(b)", "Tom's view", "Audit log", "(laboratory)"],
    "hospital_records.py": ["Physician", "nothing leaks", "Audit trail"],
    "financial_feeds.py": ["Fraud desk", "loosened statement DTD: True"],
    "editorial_workflow.py": ["rate-limited", "denied as expected", "hit-rate"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    for marker in CASES[script]:
        assert marker in result.stdout, f"{script}: missing {marker!r}"
