"""End-to-end integration: publish, grant via XACL, serve, query, audit."""

import pytest

from repro.authz.xacl import serialize_xacl
from repro.core.view import compute_view
from repro.dtd.generator import generate_instance
from repro.dtd.loosen import validate_against_loosened
from repro.dtd.parser import parse_dtd
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.workloads.scenarios import (
    LAB_DOCUMENT_URI,
    LAB_DTD_TEXT,
    LAB_DTD_URI,
    lab_authorizations,
    lab_document,
)
from repro.xml.parser import parse_document


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_group("Foreign")
    s.add_group("Admin")
    s.add_user("Tom", groups=["Foreign"])
    s.add_user("Alice", groups=["Admin"])
    s.publish_dtd(LAB_DTD_URI, LAB_DTD_TEXT)
    s.publish_document(
        LAB_DOCUMENT_URI, lab_document(), dtd_uri=LAB_DTD_URI, validate_on_add=True
    )
    # Grants arrive as XACL markup, the paper's wire format.
    s.attach_xacl(serialize_xacl(lab_authorizations()))
    return s


def tom():
    return Requester("Tom", "130.100.50.8", "infosys.bld1.it")


class TestServerLifecycle:
    def test_serve_matches_compute_view(self, server):
        response = server.serve(AccessRequest(tom(), LAB_DOCUMENT_URI))
        direct = compute_view(
            server.repository.document(LAB_DOCUMENT_URI),
            tom(),
            server.store,
            dtd_uri=LAB_DTD_URI,
        )
        from repro.xml.serializer import serialize

        assert response.xml_text == serialize(direct.document, doctype=False)

    def test_served_view_revalidates(self, server):
        response = server.serve(AccessRequest(tom(), LAB_DOCUMENT_URI))
        view_doc = parse_document(response.xml_text)
        view_doc.dtd = parse_dtd(response.loosened_dtd_text)
        report = validate_against_loosened(view_doc, server.repository.dtd(LAB_DTD_URI))
        assert report.valid, report.violations

    def test_query_over_view(self, server):
        response = server.query(
            QueryRequest(tom(), LAB_DOCUMENT_URI, "//paper/title")
        )
        assert len(response.matches) == 1
        assert "Access Control Model" in response.matches[0]

    def test_audit_covers_all_requests(self, server):
        server.serve(AccessRequest(tom(), LAB_DOCUMENT_URI))
        server.query(QueryRequest(tom(), LAB_DOCUMENT_URI, "//paper"))
        assert len(server.audit) == 2

    def test_multiple_documents_independent(self, server):
        other_uri = "http://www.lab.com/other.xml"
        server.publish_document(other_uri, "<misc><x>1</x></misc>")
        response = server.serve(AccessRequest(tom(), other_uri))
        assert response.empty  # no grants on the new document

    def test_generated_instances_served(self, server):
        dtd = server.repository.dtd(LAB_DTD_URI)
        for seed in range(3):
            uri = f"http://www.lab.com/gen{seed}.xml"
            document = generate_instance(dtd, seed=seed, uri=uri)
            server.publish_document(uri, document, dtd_uri=LAB_DTD_URI)
            response = server.serve(AccessRequest(tom(), uri))
            # Schema-level authorizations apply to every instance of the
            # DTD; private papers must never appear.
            assert 'category="private"' not in response.xml_text

    def test_schema_auths_apply_to_all_instances(self, server):
        from repro.authz.authorization import Authorization

        # Grant everything on a generated instance; the DTD-level denial
        # must still hide private papers.
        dtd = server.repository.dtd(LAB_DTD_URI)
        uri = "http://www.lab.com/gen-full.xml"
        document = generate_instance(dtd, seed=11, uri=uri, repeat_factor=3.0)
        server.publish_document(uri, document, dtd_uri=LAB_DTD_URI)
        server.grant(Authorization.build(("Foreign", "*", "*"), uri, "+", "RW"))
        response = server.serve(AccessRequest(tom(), uri))
        assert 'category="private"' not in response.xml_text
