"""Reproduction of the paper's worked examples (Figures 1-3, Examples 1-2).

These are the paper's ground-truth artifacts; EXPERIMENTS.md records the
mapping. Figure 3(b) — Tom's view — is the headline: Tom is a member of
Foreign connecting from infosys.bld1.it, so he sees public papers (RW+
of Example 1.2), managers of public projects (weak + of Example 1.4),
and no private papers (schema-level R− of Example 1.1).
"""

from repro.core.view import compute_view
from repro.dtd.loosen import validate_against_loosened
from repro.dtd.tree import dtd_tree, render_tree
from repro.dtd.validator import validate
from repro.subjects.hierarchy import Requester
from repro.xml.serializer import serialize
from repro.xpath.evaluator import select


class TestFigure1:
    def test_dtd_tree_matches_figure(self, lab):
        tree = dtd_tree(lab.dtd)
        assert tree.name == "laboratory"
        rendered = render_tree(tree)
        # Elements as circles, attributes as squares, arcs labeled.
        assert "(laboratory)" in rendered
        assert "[name]" in rendered
        assert "+ (project)" in rendered
        assert "* (paper)" in rendered
        assert "? (fund)" in rendered
        assert "(manager)" in rendered
        assert "(flname)" in rendered


class TestExample2TomView:
    """Example 2: Tom ∈ Foreign, from infosys.bld1.it (130.100.50.8)."""

    def view(self, lab):
        return compute_view(lab.document, lab.tom, lab.store)

    def test_authorization_selection(self, lab):
        result = self.view(lab)
        # Applicable: Example 1.2 (Public RW+) and 1.4 (Public/*.it weak+)
        # at the instance level; 1.1 (Foreign R-) at the schema level.
        assert len(result.instance_auths) == 2
        assert len(result.schema_auths) == 1
        # 1.3 (Admin from 130.89.56.8) does not apply to Tom.
        assert all(
            a.subject.user_group != "Admin" for a in result.instance_auths
        )

    def test_public_papers_visible(self, lab):
        text = serialize(self.view(lab).document)
        assert "An Access Control Model for XML" in text

    def test_private_papers_hidden(self, lab):
        text = serialize(self.view(lab).document)
        assert "Security Internals" not in text
        assert "Kernel Hardening" not in text

    def test_internal_papers_hidden(self, lab):
        # Internal papers are neither granted nor denied: closed policy
        # hides them.
        text = serialize(self.view(lab).document)
        assert "Implementation Notes" not in text

    def test_public_project_manager_visible(self, lab):
        view_doc = self.view(lab).document
        flnames = select("//manager/flname", view_doc)
        assert [node.text() for node in flnames] == ["Bob White"]

    def test_internal_project_entirely_hidden(self, lab):
        view_doc = self.view(lab).document
        assert len(select("//project", view_doc)) == 1
        text = serialize(view_doc)
        assert "Carol Green" not in text
        assert "Secure Kernel" not in text

    def test_fund_hidden(self, lab):
        text = serialize(self.view(lab).document)
        assert "FASTER" not in text
        assert "sponsor" not in text

    def test_structural_tags_without_attributes(self, lab):
        # laboratory and project survive as bare tags: their attributes
        # (name, type) are not part of any grant.
        view_doc = self.view(lab).document
        assert view_doc.root.attributes == {}
        project = next(view_doc.root.find_children("project"))
        assert project.attributes == {}

    def test_view_valid_against_loosened_dtd(self, lab):
        result = self.view(lab)
        report = validate_against_loosened(result.document, lab.dtd)
        assert report.valid, report.violations

    def test_view_not_valid_against_strict_dtd(self, lab):
        # The pruned view drops required attributes, so the original DTD
        # must reject it — this is exactly why loosening exists.
        result = self.view(lab)
        strict = validate(result.document, lab.dtd)
        assert not strict.valid

    def test_paper_attribute_category_visible_on_granted_paper(self, lab):
        view_doc = self.view(lab).document
        papers = select("//paper", view_doc)
        assert len(papers) == 1
        assert papers[0].get_attribute("category") == "public"


class TestOtherRequesters:
    def test_alice_admin_sees_internal_project(self, lab):
        result = compute_view(lab.document, lab.alice, lab.store)
        text = serialize(result.document)
        # Example 1.3: Admin from 130.89.56.8 gets internal projects
        # recursively (Alice is not in Foreign, so no private-paper
        # denial applies to her).
        assert "Secure Kernel" in text
        assert "Carol Green" in text
        assert "Kernel Hardening" in text

    def test_alice_does_not_get_it_manager_grant(self, lab):
        # Example 1.4 requires a *.it host; Alice connects from lab.com.
        result = compute_view(lab.document, lab.alice, lab.store)
        flnames = select("//manager/flname", result.document)
        assert all(node.text() != "Bob White" for node in flnames)

    def test_sam_sees_only_public_papers(self, lab):
        result = compute_view(lab.document, lab.sam, lab.store)
        text = serialize(result.document)
        assert "An Access Control Model for XML" in text
        assert "Bob White" not in text
        assert "Secure Kernel" not in text

    def test_foreign_member_from_it_same_as_tom(self, lab):
        lab.hierarchy.directory.add_user("enzo", groups=["Foreign"])
        enzo = Requester("enzo", "130.100.50.99", "pc.milano.it")
        tom_text = serialize(compute_view(lab.document, lab.tom, lab.store).document)
        enzo_text = serialize(compute_view(lab.document, enzo, lab.store).document)
        assert tom_text == enzo_text

    def test_anonymous_from_nowhere(self, lab):
        anonymous = Requester("anonymous", "8.8.8.8", "resolver.example.org")
        result = compute_view(lab.document, anonymous, lab.store)
        text = serialize(result.document)
        # Public RW+ on public papers applies; the .it manager grant
        # does not; nothing else is granted.
        assert "An Access Control Model for XML" in text
        assert "Bob White" not in text


class TestSchemaDenialMatters:
    def test_foreign_weak_grant_cannot_reveal_private_papers(self, lab):
        """The Example-1.1 denial has teeth: grant Foreign members the
        whole document weakly; private papers must stay hidden while the
        rest becomes visible."""
        from repro.authz.authorization import Authorization
        from repro.workloads.scenarios import LAB_DOCUMENT_URI

        lab.store.add(
            Authorization.build(
                ("Foreign", "*", "*"), LAB_DOCUMENT_URI, "+", "RW"
            )
        )
        result = compute_view(lab.document, lab.tom, lab.store)
        text = serialize(result.document)
        assert "FASTER" in text                 # now visible via the grant
        assert "Implementation Notes" in text   # internal paper: no denial
        assert "Security Internals" not in text  # private: schema denial
        assert "Kernel Hardening" not in text

    def test_strong_instance_grant_beats_schema_denial(self, lab):
        """Conversely a *strong* instance grant overrides the schema
        denial — the paper's instance-over-schema priority."""
        from repro.authz.authorization import Authorization
        from repro.workloads.scenarios import LAB_DOCUMENT_URI

        lab.store.add(
            Authorization.build(
                ("Foreign", "*", "*"),
                LAB_DOCUMENT_URI + ':/laboratory//paper[./@category="private"]',
                "+",
                "R",
            )
        )
        result = compute_view(lab.document, lab.tom, lab.store)
        assert "Security Internals" in serialize(result.document)
