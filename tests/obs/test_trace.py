"""The span/tracer primitives of repro.obs.trace."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    Tracer,
    current_tracer,
    span,
    stage_totals,
    tracing,
)


class TestDisabled:
    def test_no_tracer_active_by_default(self):
        assert current_tracer() is None

    def test_span_is_noop_without_tracer(self):
        with span("anything") as live:
            assert live is None  # the shared null context manager

    def test_noop_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with span("anything"):
                raise ValueError("propagates")


class TestTracing:
    def test_activation_scopes_to_the_with_block(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_deactivated_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError
        assert current_tracer() is None

    def test_spans_record_name_and_duration(self):
        with tracing() as tracer:
            with span("work"):
                time.sleep(0.002)
        (recorded,) = tracer.spans
        assert recorded.name == "work"
        assert recorded.duration >= 0.002

    def test_nesting_depths_and_close_order(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]  # children close first
        depths = {s.name: s.depth for s in tracer.spans}
        assert depths == {"outer": 0, "inner": 1}

    def test_parent_duration_includes_children(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.002)
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].duration >= by_name["inner"].duration

    def test_span_survives_exception(self):
        with tracing() as tracer:
            with pytest.raises(KeyError):
                with span("failing"):
                    raise KeyError("x")
        assert [s.name for s in tracer.spans] == ["failing"]

    def test_explicit_tracer_reuse(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a"):
                pass
        with tracing(tracer):
            with span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["a", "b"]

    def test_tags_are_recorded(self):
        with tracing() as tracer:
            with span("tagged", uri="http://x/d.xml"):
                pass
        assert tracer.spans[0].tags == {"uri": "http://x/d.xml"}
        assert tracer.spans[0].as_dict()["tags"] == {"uri": "http://x/d.xml"}


class TestAggregation:
    def _sample(self) -> Tracer:
        with tracing() as tracer:
            with span("request"):
                with span("parse"):
                    pass
                with span("label"):
                    with span("xpath"):
                        pass
                with span("label"):
                    pass
        return tracer

    def test_stage_totals_sums_by_name(self):
        tracer = self._sample()
        totals = tracer.stage_totals()
        assert set(totals) == {"request", "parse", "label", "xpath"}
        label_spans = [s for s in tracer.spans if s.name == "label"]
        assert totals["label"] == pytest.approx(
            sum(s.duration for s in label_spans)
        )

    def test_stage_samples_lists_each_span(self):
        samples = self._sample().stage_samples()
        assert len(samples["label"]) == 2
        assert len(samples["parse"]) == 1

    def test_module_level_stage_totals(self):
        tracer = self._sample()
        assert stage_totals(tracer.spans) == tracer.stage_totals()

    def test_span_tree_resolves_parents_in_open_order(self):
        tracer = self._sample()
        tree = tracer.span_tree()
        names = [s.name for s in tree]
        assert names == ["request", "parse", "label", "xpath", "label"]
        by_index = {i: s for i, s in enumerate(tree)}
        assert tree[0].parent is None
        assert by_index[tree[1].parent].name == "request"
        assert by_index[tree[3].parent].name == "label"

    def test_render_mentions_every_stage(self):
        rendered = self._sample().render()
        for name in ("request", "parse", "label", "xpath"):
            assert name in rendered


class TestIsolation:
    def test_threads_have_independent_tracers(self):
        seen = {}

        def worker():
            seen["inner"] = current_tracer()

        with tracing():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["inner"] is None

    def test_concurrent_tracers_do_not_interleave(self):
        results = {}

        def worker(key):
            with tracing() as tracer:
                with span(key):
                    time.sleep(0.001)
                results[key] = [s.name for s in tracer.spans]

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key, names in results.items():
            assert names == [key]


class TestChromeExport:
    def _sample(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("request.serve"):
            with tracer.span("parse.xml"):
                pass
            with tracer.span("label", uri="d.xml"):
                pass
        return tracer

    def test_export_is_valid_trace_event_json(self):
        import json

        tracer = self._sample()
        data = json.loads(tracer.export_chrome())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert len(events) == len(tracer.spans)
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_nesting_preserved_by_timestamp_containment(self):
        import json

        data = json.loads(self._sample().export_chrome())
        by_name = {event["name"]: event for event in data["traceEvents"]}
        parent = by_name["request.serve"]
        for child_name in ("parse.xml", "label"):
            child = by_name[child_name]
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
        # Sibling order matches open order.
        assert by_name["parse.xml"]["ts"] <= by_name["label"]["ts"]

    def test_category_is_the_stage_family(self):
        import json

        data = json.loads(self._sample().export_chrome())
        cats = {event["name"]: event["cat"] for event in data["traceEvents"]}
        assert cats["request.serve"] == "request"
        assert cats["parse.xml"] == "parse"
        assert cats["label"] == "label"

    def test_tags_become_args(self):
        import json

        data = json.loads(self._sample().export_chrome())
        label = next(e for e in data["traceEvents"] if e["name"] == "label")
        assert label["args"] == {"uri": "d.xml"}

    def test_written_to_file(self, tmp_path):
        import json

        path = str(tmp_path / "trace.json")
        text = self._sample().export_chrome(path)
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == json.loads(text)
