"""Fleet-wide observability: snapshot merging, incarnation folding,
sliding-window SLOs, trace context propagation and the top renderer."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.fleet import (
    FleetView,
    SlidingWindow,
    SloTracker,
    lint_prometheus,
    merge_snapshots,
    render_top,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceContext, Tracer, tracing


def snapshot_of(**counters) -> list:
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.counter(name).inc(value)
    return registry.snapshot()


class TestMergeSnapshots:
    def test_counters_add_across_snapshots(self):
        merged = merge_snapshots(
            [snapshot_of(requests_total=3), snapshot_of(requests_total=4)]
        )
        (entry,) = merged.values()
        assert entry[0] == "counter"
        assert entry[3] == 7

    def test_label_sets_stay_distinct(self):
        a = MetricsRegistry()
        a.counter("requests_total", outcome="released").inc(2)
        b = MetricsRegistry()
        b.counter("requests_total", outcome="denied").inc(1)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert len(merged) == 2

    def test_gauges_last_vs_sum(self):
        a = MetricsRegistry()
        a.gauge("depth").set(3)
        b = MetricsRegistry()
        b.gauge("depth").set(5)
        snapshots = [a.snapshot(), b.snapshot()]
        (last,) = merge_snapshots(snapshots, gauges="last").values()
        (summed,) = merge_snapshots(snapshots, gauges="sum").values()
        assert last[3] == 5
        assert summed[3] == 8

    def test_histograms_merge_element_wise(self):
        a = MetricsRegistry()
        a.histogram("request_seconds").observe(0.001)
        b = MetricsRegistry()
        b.histogram("request_seconds").observe(0.001)
        b.histogram("request_seconds").observe(100.0)  # overflow bucket
        (entry,) = merge_snapshots([a.snapshot(), b.snapshot()]).values()
        data = entry[3]
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(100.002)
        assert sum(data["bucket_counts"]) == 3

    def test_mismatched_buckets_drop_buckets_keep_totals(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(5.0,)).observe(0.5)
        (entry,) = merge_snapshots([a.snapshot(), b.snapshot()]).values()
        assert entry[3]["buckets"] is None
        assert entry[3]["count"] == 2

    def test_rejects_unknown_gauge_mode(self):
        with pytest.raises(ValueError):
            merge_snapshots([], gauges="max")


class TestFleetView:
    def test_aggregates_across_workers(self):
        view = FleetView()
        view.update(0, 1, snapshot_of(requests_total=3))
        view.update(1, 1, snapshot_of(requests_total=5))
        assert view.counter_total("requests_total") == 8
        assert view.workers() == [0, 1]

    def test_update_replaces_within_one_incarnation(self):
        view = FleetView()
        view.update(0, 1, snapshot_of(requests_total=3))
        view.update(0, 1, snapshot_of(requests_total=7))  # cumulative
        assert view.counter_total("requests_total") == 7

    def test_retire_folds_exactly_once(self):
        view = FleetView()
        view.update(0, 1, snapshot_of(requests_total=7))
        view.retire(0, 1)
        assert view.counter_total("requests_total") == 7
        view.retire(0, 1)  # second retire: live slot empty, no effect
        assert view.counter_total("requests_total") == 7

    def test_restart_resets_deltas_without_double_counting(self):
        view = FleetView()
        view.update(0, 1, snapshot_of(requests_total=7))
        view.retire(0, 1)
        # The next incarnation starts its registry from zero.
        view.update(0, 2, snapshot_of(requests_total=2))
        assert view.counter_total("requests_total") == 9
        view.retire(0, 2)
        assert view.counter_total("requests_total") == 9

    def test_stale_generation_update_is_dropped(self):
        view = FleetView()
        view.update(0, 2, snapshot_of(requests_total=4))
        view.update(0, 1, snapshot_of(requests_total=100))  # stale gen
        assert view.counter_total("requests_total") == 4

    def test_retire_spares_next_incarnations_data(self):
        view = FleetView()
        view.update(0, 2, snapshot_of(requests_total=4))
        view.retire(0, 1)  # a late retire for the previous incarnation
        assert view.counter_total("requests_total") == 4
        view.retire(0, 2)
        assert view.counter_total("requests_total") == 4

    def test_as_dict_is_json_safe(self):
        view = FleetView()
        view.set_shards(0, (0, 2))
        registry = MetricsRegistry()
        registry.counter("requests_total", outcome="released").inc(2)
        registry.histogram("request_seconds").observe(0.01)
        registry.gauge("depth").set(1)
        view.update(0, 1, registry.snapshot())
        data = json.loads(json.dumps(view.as_dict()))
        assert data["shards"] == {"0": [0, 2]}
        assert "requests_total" in data["aggregate"]
        assert "requests_total" in data["workers"]["0"]

    def test_render_prometheus_is_lint_clean_and_worker_labelled(self):
        view = FleetView()
        view.set_shards(0, (0,))
        view.set_shards(1, (1,))
        for worker in (0, 1):
            registry = MetricsRegistry()
            registry.counter("requests_total", outcome="released").inc(1)
            registry.histogram("request_seconds").observe(0.005)
            view.update(worker, 1, registry.snapshot())
        text = view.render_prometheus()
        assert lint_prometheus(text) == []
        assert 'worker="0"' in text and 'worker="1"' in text
        assert 'pool_worker_shards{shard="1",worker="1"} 1' in text

    def test_empty_view_renders_empty_or_shards_only(self):
        assert lint_prometheus(FleetView().render_prometheus()) == []


class TestSlidingWindow:
    def test_percentiles_nearest_rank(self):
        window = SlidingWindow(size=100)
        for value in range(1, 101):
            window.observe(float(value))
        assert window.percentile(50) == 50.0
        assert window.percentile(95) == 95.0
        assert window.percentile(99) == 99.0
        assert window.percentile(0) == 1.0
        assert window.percentile(100) == 100.0

    def test_window_slides(self):
        window = SlidingWindow(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            window.observe(value)
        assert len(window) == 4
        assert window.total == 5
        assert window.percentile(50) == 3.0

    def test_empty_summary(self):
        assert SlidingWindow().summary()["count"] == 0

    def test_rejects_bad_sizes_and_percentiles(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=0)
        with pytest.raises(ValueError):
            SlidingWindow().percentile(101)


class TestSloTracker:
    def test_named_stages(self):
        tracker = SloTracker()
        tracker.observe("pool.e2e", 0.010)
        tracker.observe("pool.e2e", 0.020)
        tracker.observe("pool.queue_wait", 0.001)
        summary = tracker.summary()
        assert set(summary) == {"pool.e2e", "pool.queue_wait"}
        assert summary["pool.e2e"]["count"] == 2
        assert summary["pool.e2e"]["p50"] == pytest.approx(0.010)

    def test_summary_is_json_safe(self):
        tracker = SloTracker()
        tracker.observe("s", 0.5)
        json.dumps(tracker.summary())


class TestTraceContext:
    def test_capture_requires_a_tracer(self):
        assert TraceContext.capture() is None

    def test_capture_records_open_parent_span(self):
        with tracing() as tracer:
            with tracer.span("outer"):
                ctx = TraceContext.capture()
        assert ctx is not None
        assert ctx.parent_span == "outer"
        assert ctx.sampled

    def test_trace_ids_unique_and_pid_prefixed(self):
        with tracing():
            a = TraceContext.capture()
            b = TraceContext.capture()
        assert a.trace_id != b.trace_id

    def test_pickles_across_process_boundary_protocols(self):
        ctx = TraceContext(trace_id="t-1", parent_span="request.serve")
        clone = pickle.loads(pickle.dumps(ctx, protocol=2))
        assert clone == ctx


class TestGraft:
    def test_grafted_spans_rebase_and_deepen(self):
        tracer = Tracer()
        foreign = [
            Span("request.serve", 0.5, 0.010, 0, None),
            Span("label", 0.502, 0.004, 1, -1),
        ]
        adopted = tracer.graft(foreign, at=1.0, depth=2)
        assert adopted == 2
        serve = next(s for s in tracer.spans if s.name == "request.serve")
        label = next(s for s in tracer.spans if s.name == "label")
        assert serve.started == pytest.approx(1.0)
        assert label.started == pytest.approx(1.002)
        assert serve.depth == 2 and label.depth == 3
        assert serve.parent == -1  # resolved by span_tree()

    def test_graft_nothing(self):
        assert Tracer().graft([], at=0.0) == 0


class TestRenderTop:
    def test_renders_a_full_stats_snapshot(self):
        stats = {
            "pool": {
                "workers": 2, "shards": 4, "workers_alive": 1,
                "restarts_total": 3, "shed_total": 1, "degraded_total": 0,
                "breakers": {"0": "open", "1": "closed"},
            },
            "outcomes": {"ok": 10.0, "error": 2.0},
            "workers": [
                {"worker": 0, "state": "up", "pid": 123, "shards": [0, 2],
                 "queued": 1, "in_flight": 2, "restarts": 3},
                {"worker": 1, "state": "down", "pid": None, "shards": [1, 3],
                 "queued": 0, "in_flight": 0, "restarts": 0},
            ],
            "slo": {
                "pool.e2e": {"count": 12, "total": 12, "p50": 0.004,
                             "p95": 0.009, "p99": 0.011},
            },
            "fleet": {
                "workers": {"0": {}},
                "aggregate": {
                    "requests_total": {"kind=serve,outcome=released": 10.0},
                    "view_cache_hits": {"": 6.0},
                    "view_cache_misses": {"": 2.0},
                    "stage_seconds": {
                        "stage=label": {"count": 10, "mean": 0.003},
                    },
                },
            },
        }
        text = render_top(stats)
        assert "1/2 workers up" in text
        assert "open" in text
        assert "pool.e2e" in text
        assert "kind=serve,outcome=released" in text
        assert "75.0% hit rate" in text
        assert "label" in text
        assert "1 worker(s) reporting metrics" in text

    def test_survives_json_round_trip(self):
        stats = {"pool": {}, "workers": [], "outcomes": {}}
        assert render_top(json.loads(json.dumps(stats)))
