"""The counter/gauge/histogram registry of repro.obs.metrics."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_labels_create_distinct_series(self, registry):
        registry.counter("requests_total", outcome="released").inc()
        registry.counter("requests_total", outcome="error").inc(5)
        assert registry.value("requests_total", outcome="released") == 1
        assert registry.value("requests_total", outcome="error") == 5

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("m", x="1", y="2")
        b = registry.counter("m", y="2", x="1")
        assert a is b

    def test_counters_only_go_up(self, registry):
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)

    def test_kind_collision_rejected(self, registry):
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("entries")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        histogram = registry.histogram("seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)
        assert histogram.bucket_counts == [1, 1, 1, 1]  # last = overflow

    def test_boundary_value_counts_in_its_bucket(self, registry):
        histogram = registry.histogram("seconds", buckets=(0.01, 0.1))
        histogram.observe(0.01)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_mean_and_quantiles(self, registry):
        histogram = registry.histogram("seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(1.65)
        assert 0 < histogram.quantile(0.5) <= 2.0
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) <= 4.0

    def test_quantile_on_empty_histogram(self, registry):
        assert registry.histogram("empty").quantile(0.5) == 0.0

    def test_quantile_range_checked(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").quantile(1.5)

    def test_percentile_is_quantile_on_the_100_scale(self, registry):
        histogram = registry.histogram("seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        assert histogram.percentile(50) == histogram.quantile(0.5)
        assert histogram.percentile(99) == histogram.quantile(0.99)
        assert histogram.percentile(0) == 0.0

    def test_percentile_range_checked(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").percentile(101)
        with pytest.raises(ValueError):
            registry.histogram("h").percentile(-1)

    def test_default_buckets_are_sorted_latencies(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", {}, buckets=(1.0, 0.5))


class TestExport:
    def test_as_dict_snapshot(self, registry):
        registry.counter("requests_total", outcome="released").inc(2)
        registry.gauge("entries").set(3)
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.as_dict()
        assert snapshot["requests_total"]["outcome=released"] == 2
        assert snapshot["entries"][""] == 3
        histogram = snapshot["seconds"][""]
        assert histogram["count"] == 1
        assert histogram["buckets"]["0.1"] == 1

    def test_snapshot_shape_and_picklability(self, registry):
        import pickle

        registry.counter("requests_total", outcome="released").inc(2)
        registry.gauge("entries").set(3)
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.snapshot()
        entries = {(kind, name): data for kind, name, _, data in snapshot}
        assert entries[("counter", "requests_total")] == 2
        assert entries[("gauge", "entries")] == 3
        histogram = entries[("histogram", "seconds")]
        assert histogram["count"] == 1
        assert histogram["buckets"] == [0.1, 1.0]
        assert sum(histogram["bucket_counts"]) == 1
        # labels travel as hashable items, the whole thing pickles at
        # the oldest protocol a pipe might negotiate
        clone = pickle.loads(pickle.dumps(snapshot, protocol=2))
        assert clone == snapshot

    def test_snapshot_is_a_cut_not_a_view(self, registry):
        counter = registry.counter("requests_total")
        counter.inc(2)
        snapshot = registry.snapshot()
        counter.inc(5)
        assert snapshot[0][3] == 2  # later increments don't leak in

    def test_prometheus_render(self, registry):
        registry.counter("requests_total", outcome="released").inc(2)
        registry.histogram("request_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{outcome="released"} 2' in text
        assert '# TYPE request_seconds histogram' in text
        assert 'request_seconds_bucket{le="0.1"} 1' in text
        assert 'request_seconds_bucket{le="+Inf"} 1' in text
        assert 'request_seconds_count 1' in text
        assert text.endswith("\n")

    def test_prometheus_help_lines_precede_types(self, registry):
        registry.counter("requests_total", outcome="released").inc()
        registry.counter("made_up_total").inc()
        lines = registry.render_prometheus().splitlines()
        # every family: one HELP immediately before its TYPE
        assert "# HELP requests_total Requests served, by kind and outcome" in lines
        assert "# HELP made_up_total repro counter made_up_total" in lines
        for index, line in enumerate(lines):
            if line.startswith("# TYPE"):
                name = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {name} ")

    def test_prometheus_bucket_counts_are_cumulative(self, registry):
        histogram = registry.histogram("s", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert 's_bucket{le="0.1"} 1' in text
        assert 's_bucket{le="1"} 2' in text

    def test_metric_names_sanitized(self, registry):
        registry.counter("view-cache.hits").inc()
        assert "view_cache_hits 1" in registry.render_prometheus()

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""

    def test_value_of_missing_metric_is_none(self, registry):
        assert registry.value("nope") is None


class TestReset:
    def test_reset_drops_everything(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.reset()
        assert len(registry) == 0
        assert registry.value("a") is None


class TestLabelEscaping:
    def test_double_quote_escaped(self, registry):
        registry.counter("q_total", path='say "hi"').inc()
        assert 'q_total{path="say \\"hi\\""} 1' in registry.render_prometheus()

    def test_newline_escaped(self, registry):
        registry.counter("n_total", detail="line1\nline2").inc()
        text = registry.render_prometheus()
        assert 'n_total{detail="line1\\nline2"} 1' in text
        # The rendered exposition stays one-line-per-sample.
        assert all(" 1" in line or line.startswith("#") for line in text.splitlines())

    def test_backslash_escaped(self, registry):
        registry.counter("b_total", path="C:\\tmp").inc()
        assert 'b_total{path="C:\\\\tmp"} 1' in registry.render_prometheus()

    def test_plain_values_untouched(self, registry):
        registry.counter("p_total", outcome="released").inc()
        assert 'p_total{outcome="released"} 1' in registry.render_prometheus()
