"""Prometheus text-exposition conformance, for every renderer we ship.

``lint_prometheus`` is itself under test here (seeded violations must
be caught), and then pointed at the real renderers: a served
``SecureXMLServer`` registry, a live pool (dispatcher + harvested
fleet series), and a standalone ``FleetView``.
"""

from __future__ import annotations

import pytest

from repro.obs.fleet import FleetView, lint_prometheus
from repro.obs.metrics import MetricsRegistry


class TestLintCatchesViolations:
    def test_clean_minimal_exposition(self):
        text = (
            "# HELP requests_total count\n"
            "# TYPE requests_total counter\n"
            'requests_total{outcome="released"} 3\n'
        )
        assert lint_prometheus(text) == []

    def test_missing_type(self):
        text = "# HELP x c\nx 1\n"
        assert any("no preceding TYPE" in p for p in lint_prometheus(text))

    def test_missing_help(self):
        text = "# TYPE x counter\nx 1\n"
        assert any("no preceding HELP" in p for p in lint_prometheus(text))

    def test_duplicate_series(self):
        text = (
            "# HELP x c\n# TYPE x counter\n"
            'x{a="1"} 1\nx{a="1"} 2\n'
        )
        assert any("duplicate series" in p for p in lint_prometheus(text))

    def test_duplicate_type(self):
        text = "# HELP x c\n# TYPE x counter\n# TYPE x counter\nx 1\n"
        assert any("duplicate TYPE" in p for p in lint_prometheus(text))

    def test_non_numeric_value(self):
        text = "# HELP x c\n# TYPE x gauge\nx up\n"
        assert any("non-numeric" in p for p in lint_prometheus(text))

    def test_bad_label_escaping(self):
        text = '# HELP x c\n# TYPE x counter\nx{a="b\\q"} 1\n'
        assert any("malformed label" in p for p in lint_prometheus(text))

    def test_escaped_quote_and_newline_are_legal(self):
        text = (
            "# HELP x c\n# TYPE x counter\n"
            'x{a="say \\"hi\\"",b="line\\nbreak"} 1\n'
        )
        assert lint_prometheus(text) == []

    def test_histogram_must_end_with_inf(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n'
        )
        assert any("+Inf" in p for p in lint_prometheus(text))

    def test_histogram_cumulative_counts_must_not_decrease(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        assert any("decrease" in p for p in lint_prometheus(text))

    def test_histogram_count_must_match_inf_bucket(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 4\n'
        )
        assert any("_count" in p for p in lint_prometheus(text))

    def test_histogram_missing_sum(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_count 3\n'
        )
        assert any("missing _sum" in p for p in lint_prometheus(text))

    def test_unparseable_sample(self):
        text = "# HELP x c\n# TYPE x counter\n{oops} 1\n"
        assert any("unparseable" in p for p in lint_prometheus(text))


class TestRealRenderers:
    def test_registry_with_escapy_labels_is_clean(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", outcome="released").inc()
        registry.counter("odd_total", label='say "hi"\nnow\\here').inc()
        registry.histogram("request_seconds", kind="serve").observe(0.004)
        registry.gauge("depth").set(2)
        assert lint_prometheus(registry.render_prometheus()) == []

    def test_served_server_exposition_is_clean(self, served_server):
        server, requester, uri = served_server
        from repro.server.request import AccessRequest

        server.serve(AccessRequest(requester, uri))
        assert lint_prometheus(server.metrics.render_prometheus()) == []

    def test_fleet_view_exposition_is_clean(self):
        view = FleetView()
        view.set_shards(0, (0, 1))
        registry = MetricsRegistry()
        registry.counter("requests_total", outcome="released").inc(2)
        registry.histogram("request_seconds", kind="serve").observe(0.004)
        registry.histogram("stage_seconds", stage="label").observe(0.002)
        view.update(0, 1, registry.snapshot())
        assert lint_prometheus(view.render_prometheus()) == []


@pytest.fixture
def served_server():
    from repro.workloads.traffic import TrafficSpec

    spec = TrafficSpec(documents=1, nodes_per_document=60, seed=3)
    return spec.build_server(None, 1), spec.requesters()[0], spec.uris()[0]
