"""Hostile-input tests for the typed resource guards.

The classic hardening suite (test_security_hardening.py) pins the
*legacy* behaviour: attacks fail as plain syntax errors with stable
messages. This suite pins the *typed* layer added on top: every guard
trip is catchable as :class:`~repro.errors.LimitExceeded` (and as the
stage's native error class), carries machine-readable limit metadata,
and fires fast — no hangs, no RecursionError, no memory blow-up.
"""

import pytest

from repro.errors import (
    DeadlineExceeded,
    DTDSyntaxError,
    LimitExceeded,
    XMLSyntaxError,
    XPathEvaluationError,
)
from repro.limits import Deadline, ResourceLimits
from repro.dtd.parser import parse_dtd
from repro.xml.parser import parse_document
from repro.xpath.evaluator import select

BILLION_LAUGHS = (
    "<?xml version='1.0'?>"
    "<!DOCTYPE lolz ["
    "<!ENTITY lol 'lol'>"
    "<!ENTITY lol1 '&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;'>"
    "<!ENTITY lol2 '&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;&lol1;'>"
    "<!ENTITY lol3 '&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;'>"
    "<!ENTITY lol4 '&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;&lol3;'>"
    "<!ENTITY lol5 '&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;&lol4;'>"
    "<!ENTITY lol6 '&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;&lol5;'>"
    "<!ENTITY lol7 '&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;&lol6;'>"
    "<!ENTITY lol8 '&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;&lol7;'>"
    "<!ENTITY lol9 '&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;&lol8;'>"
    "]><lolz>&lol9;</lolz>"
)


class TestParserGuards:
    def test_billion_laughs_is_a_typed_limit_error(self):
        with pytest.raises(LimitExceeded) as excinfo:
            parse_document(BILLION_LAUGHS, limits=ResourceLimits())
        assert excinfo.value.limit == "max_entity_expansion_chars"
        # Still catchable the old way too.
        assert isinstance(excinfo.value, XMLSyntaxError)

    def test_billion_laughs_without_limits_still_defended(self):
        # The legacy module-level ceiling stays in force with limits=None.
        with pytest.raises(XMLSyntaxError, match="entity bomb|character limit"):
            parse_document(BILLION_LAUGHS)

    def test_deep_nesting_trips_depth_cap(self):
        depth = 5_000
        hostile = "<a>" * depth + "</a>" * depth
        limits = ResourceLimits(max_tree_depth=100)
        with pytest.raises(LimitExceeded) as excinfo:
            parse_document(hostile, limits=limits)
        assert excinfo.value.limit == "max_tree_depth"
        assert excinfo.value.maximum == 100

    def test_depth_under_the_cap_parses(self):
        document = parse_document(
            "<a>" * 50 + "</a>" * 50, limits=ResourceLimits(max_tree_depth=100)
        )
        assert document.root is not None

    def test_oversized_input_rejected_before_parsing(self):
        limits = ResourceLimits(max_input_bytes=64)
        with pytest.raises(LimitExceeded) as excinfo:
            parse_document("<doc>" + "x" * 1_000 + "</doc>", limits=limits)
        assert excinfo.value.limit == "max_input_bytes"
        assert excinfo.value.maximum == 64

    def test_node_count_cap(self):
        flood = "<r>" + "<x/>" * 1_000 + "</r>"
        with pytest.raises(LimitExceeded) as excinfo:
            parse_document(flood, limits=ResourceLimits(max_node_count=100))
        assert excinfo.value.limit == "max_node_count"

    def test_expired_deadline_stops_the_parse(self):
        big = "<r>" + "<x>t</x>" * 5_000 + "</r>"
        with pytest.raises(DeadlineExceeded):
            parse_document(big, limits=ResourceLimits(), deadline=Deadline.after(0.0))

    def test_benign_document_unaffected_by_default_limits(self):
        document = parse_document(
            "<notes><note owner='alice'>hi</note></notes>", limits=ResourceLimits()
        )
        assert document.root.name == "notes"


class TestDTDGuards:
    def test_oversized_dtd_rejected(self):
        text = "<!ELEMENT a (#PCDATA)>" * 100
        with pytest.raises(LimitExceeded) as excinfo:
            parse_dtd(text, limits=ResourceLimits(max_input_bytes=50))
        assert excinfo.value.limit == "max_input_bytes"
        assert isinstance(excinfo.value, DTDSyntaxError)

    def test_parameter_entity_churn_capped(self):
        # Each %p; reference is one expansion; a tight budget trips fast.
        text = '<!ENTITY % p " ">' + "%p;" * 50
        with pytest.raises(LimitExceeded) as excinfo:
            parse_dtd(text, limits=ResourceLimits(max_entity_expansions=10))
        assert excinfo.value.limit == "max_entity_expansions"


class TestXPathGuards:
    def test_step_budget_exceeded_is_typed(self, simple_doc):
        with pytest.raises(LimitExceeded) as excinfo:
            select("//leaf", simple_doc, max_steps=2)
        assert excinfo.value.limit == "max_xpath_steps"
        assert excinfo.value.maximum == 2
        assert isinstance(excinfo.value, XPathEvaluationError)

    def test_generous_budget_unaffected(self, simple_doc):
        nodes = select("//leaf", simple_doc, max_steps=1_000_000)
        assert len(nodes) == 3

    def test_expired_deadline_stops_evaluation(self, simple_doc):
        with pytest.raises(DeadlineExceeded):
            select("//leaf", simple_doc, deadline=Deadline.after(0.0))

    def test_no_budget_means_no_charge(self, simple_doc):
        assert len(select("//leaf", simple_doc)) == 3
