"""Tests for XML character classification."""

import pytest

from repro.xml.chars import (
    is_name,
    is_name_char,
    is_name_start_char,
    is_nmtoken,
    is_whitespace,
    is_xml_char,
)


class TestXmlChar:
    def test_ordinary_letters_allowed(self):
        assert is_xml_char("a")
        assert is_xml_char("Z")
        assert is_xml_char("é")

    def test_whitespace_controls_allowed(self):
        for ch in "\t\n\r":
            assert is_xml_char(ch)

    def test_other_controls_rejected(self):
        for code in (0x00, 0x01, 0x08, 0x0B, 0x0C, 0x1F):
            assert not is_xml_char(chr(code))

    def test_surrogate_block_rejected(self):
        assert not is_xml_char("\ud800")
        assert not is_xml_char("\udfff")

    def test_noncharacters_rejected(self):
        assert not is_xml_char("￾")
        assert not is_xml_char("￿")

    def test_supplementary_planes_allowed(self):
        assert is_xml_char("\U0001F600")
        assert is_xml_char("\U0010FFFF")


class TestNameStartChar:
    def test_letters_and_underscore(self):
        assert is_name_start_char("a")
        assert is_name_start_char("A")
        assert is_name_start_char("_")

    def test_colon_allowed(self):
        assert is_name_start_char(":")

    def test_digits_rejected(self):
        assert not is_name_start_char("0")
        assert not is_name_start_char("9")

    def test_punctuation_rejected(self):
        for ch in "-.@/ ":
            assert not is_name_start_char(ch)

    def test_accented_letters_allowed(self):
        assert is_name_start_char("é")
        assert is_name_start_char("ñ")


class TestNameChar:
    def test_continuation_extras(self):
        for ch in "-.0129·":
            assert is_name_char(ch)

    def test_space_rejected(self):
        assert not is_name_char(" ")
        assert not is_name_char("\t")


class TestIsName:
    @pytest.mark.parametrize(
        "name", ["a", "project", "fl-name", "a.b", "_x", "x1", "éléments"]
    )
    def test_valid_names(self, name):
        assert is_name(name)

    @pytest.mark.parametrize("name", ["", "1abc", "-x", ".y", "a b", "a@b"])
    def test_invalid_names(self, name):
        assert not is_name(name)


class TestIsNmtoken:
    def test_may_start_with_digit_or_dash(self):
        assert is_nmtoken("123")
        assert is_nmtoken("-abc")
        assert is_nmtoken(".5")

    def test_empty_rejected(self):
        assert not is_nmtoken("")

    def test_space_rejected(self):
        assert not is_nmtoken("a b")


class TestIsWhitespace:
    def test_all_whitespace(self):
        assert is_whitespace(" \t\r\n")

    def test_mixed_rejected(self):
        assert not is_whitespace(" a ")

    def test_empty_rejected(self):
        assert not is_whitespace("")
