"""Tests for tree traversal utilities."""

from repro.xml.builder import E, new_document
from repro.xml.nodes import Attribute, Element, Text
from repro.xml.parser import parse_document
from repro.xml.traversal import (
    count_nodes,
    depth,
    descendants,
    document_order,
    iter_attributes,
    iter_elements,
    node_path,
    postorder,
    preorder,
    walk_filter,
)


def build_sample():
    return E(
        "a",
        {"x": "1"},
        E("b", {"y": "2"}, "text-b"),
        E("c", E("d")),
    )


class TestPreorder:
    def test_order_with_attributes(self):
        root = build_sample()
        names = [
            node.name if isinstance(node, (Element, Attribute)) else "#text"
            for node in preorder(root)
        ]
        assert names == ["a", "x", "b", "y", "#text", "c", "d"]

    def test_order_without_attributes(self):
        root = build_sample()
        names = [
            node.name if isinstance(node, Element) else "#text"
            for node in preorder(root, include_attributes=False)
        ]
        assert names == ["a", "b", "#text", "c", "d"]

    def test_from_document(self):
        document = new_document(build_sample())
        nodes = list(preorder(document))
        assert nodes[0] is document
        assert isinstance(nodes[1], Element)


class TestPostorder:
    def test_children_before_parent(self):
        root = build_sample()
        order = list(postorder(root))
        index = {node: i for i, node in enumerate(order)}
        for node in order:
            if isinstance(node, Element) and node.parent is not None:
                if isinstance(node.parent, Element):
                    assert index[node] < index[node.parent]

    def test_same_node_set_as_preorder(self):
        root = build_sample()
        assert set(preorder(root)) == set(postorder(root))

    def test_deep_tree_no_recursion_error(self):
        root = Element("n0")
        current = root
        for index in range(5000):
            child = Element("n")
            current.append(child)
            current = child
        assert sum(1 for _ in postorder(root)) == 5001


class TestDocumentOrder:
    def test_positions_monotonic(self):
        root = build_sample()
        order = document_order(root)
        nodes = list(preorder(root))
        assert [order[node] for node in nodes] == list(range(len(nodes)))


class TestIterators:
    def test_iter_elements(self):
        root = build_sample()
        assert [el.name for el in iter_elements(root)] == ["a", "b", "c", "d"]

    def test_iter_attributes(self):
        root = build_sample()
        assert [attr.name for attr in iter_attributes(root)] == ["x", "y"]

    def test_descendants_excludes_self_by_default(self):
        root = build_sample()
        nodes = list(descendants(root))
        assert root not in nodes
        assert list(descendants(root, include_self=True))[0] is root

    def test_walk_filter(self):
        root = build_sample()
        texts = list(walk_filter(root, lambda node: isinstance(node, Text)))
        assert len(texts) == 1


class TestCountsAndPaths:
    def test_count_nodes(self):
        root = build_sample()
        assert count_nodes(root) == 7
        assert count_nodes(root, include_attributes=False) == 5

    def test_depth(self):
        document = parse_document("<a><b><c/></b></a>")
        c = document.root.children[0].children[0]
        assert depth(document.root) == 1
        assert depth(c) == 3

    def test_node_path_for_elements(self):
        document = parse_document("<a><b/><b><c/></b></a>")
        second_b = document.root.children[1]
        assert node_path(second_b) == "/a/b[2]"
        assert node_path(second_b.children[0]) == "/a/b[2]/c"

    def test_node_path_for_attribute_and_text(self):
        document = parse_document('<a k="1">txt</a>')
        attr = document.root.attribute_node("k")
        assert node_path(attr) == "/a/@k"
        assert node_path(document.root.children[0]) == "/a/text()"

    def test_node_path_unique_sibling_unindexed(self):
        document = parse_document("<a><only/></a>")
        assert node_path(document.root.children[0]) == "/a/only"
