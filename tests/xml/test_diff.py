"""Tests for the structural tree diff."""

from repro.xml.diff import tree_diff, trees_equal
from repro.xml.parser import parse_document


def diff(a: str, b: str):
    return tree_diff(parse_document(a), parse_document(b))


class TestEquality:
    def test_identical(self):
        assert diff("<a><b>x</b></a>", "<a><b>x</b></a>") == []
        assert trees_equal(parse_document("<a/>"), parse_document("<a/>"))

    def test_attribute_order_insignificant(self):
        assert diff('<a x="1" y="2"/>', '<a y="2" x="1"/>') == []

    def test_insignificant_whitespace_ignored(self):
        assert diff("<a>\n  <b/>\n</a>", "<a><b/></a>") == []

    def test_none_vs_none(self):
        assert tree_diff(None, None) == []


class TestDifferences:
    def test_element_name(self):
        result = diff("<a><b/></a>", "<a><c/></a>")
        assert any("names differ" in line for line in result)

    def test_text_content(self):
        result = diff("<a>x</a>", "<a>y</a>")
        assert any("text differs" in line for line in result)

    def test_attribute_value(self):
        result = diff('<a k="1"/>', '<a k="2"/>')
        assert result == ["/a/@k: values differ: '1' vs '2'"]

    def test_attribute_only_one_side(self):
        result = diff('<a k="1"/>', "<a/>")
        assert result == ["/a/@k: only in left (= '1')"]

    def test_extra_child(self):
        result = diff("<a><b/><c/></a>", "<a><b/></a>")
        assert result == ["/a/c: only in left: <c>"]

    def test_missing_child(self):
        result = diff("<a><b/></a>", "<a><b/><c/></a>")
        assert result == ["/a/c: only in right: <c>"]

    def test_child_order_significant(self):
        result = diff("<a><b/><c/></a>", "<a><c/><b/></a>")
        assert len(result) >= 1

    def test_node_kind_mismatch(self):
        result = diff("<a>text</a>", "<a><b/></a>")
        assert any("node kinds differ" in line for line in result)

    def test_comment_difference(self):
        result = diff("<a><!--x--></a>", "<a><!--y--></a>")
        assert any("comment differs" in line for line in result)

    def test_pi_difference(self):
        result = diff("<a><?p one?></a>", "<a><?p two?></a>")
        assert any("processing instruction differs" in line for line in result)

    def test_limit_respected(self):
        left = "<a>" + "".join(f"<x{i}/>" for i in range(100)) + "</a>"
        right = "<a/>"
        result = tree_diff(parse_document(left), parse_document(right), max_differences=5)
        assert len(result) == 5

    def test_paths_are_anchored(self):
        result = diff("<a><b><c>x</c></b></a>", "<a><b><c>y</c></b></a>")
        assert result[0].startswith("/a/b/c")


class TestViewComparisons:
    def test_compare_two_requesters_views(self, lab):
        from repro.core import compute_view

        tom_view = compute_view(lab.document, lab.tom, lab.store).document
        sam_view = compute_view(lab.document, lab.sam, lab.store).document
        differences = tree_diff(tom_view, sam_view)
        # Tom additionally sees the manager subtree.
        assert any("manager" in line for line in differences)
        assert all("only in left" in line or "differ" in line for line in differences)
