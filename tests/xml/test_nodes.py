"""Tests for the DOM-like node model."""

import pytest

from repro.errors import ReproError
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)


class TestElement:
    def test_invalid_name_rejected(self):
        with pytest.raises(ReproError, match="invalid element name"):
            Element("1bad")

    def test_append_sets_parent(self):
        parent = Element("a")
        child = Element("b")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_moves_between_parents(self):
        first = Element("a")
        second = Element("b")
        child = Element("c")
        first.append(child)
        second.append(child)
        assert child.parent is second
        assert first.children == []

    def test_insert_at_position(self):
        parent = Element("a")
        parent.append(Element("x"))
        parent.append(Element("z"))
        parent.insert(1, Element("y"))
        assert [c.name for c in parent.child_elements()] == ["x", "y", "z"]

    def test_remove_unknown_child_raises(self):
        with pytest.raises(ReproError, match="not a child"):
            Element("a").remove(Element("b"))

    def test_set_and_get_attribute(self):
        element = Element("a")
        element.set_attribute("k", "v")
        assert element.get_attribute("k") == "v"
        assert element.get_attribute("missing") is None
        assert element.get_attribute("missing", "d") == "d"

    def test_set_attribute_updates_in_place(self):
        element = Element("a")
        node1 = element.set_attribute("k", "v1")
        node2 = element.set_attribute("k", "v2")
        assert node1 is node2
        assert element.get_attribute("k") == "v2"

    def test_attribute_node_parent(self):
        element = Element("a")
        attr = element.set_attribute("k", "v")
        assert attr.parent is element
        assert attr.element is element

    def test_remove_attribute(self):
        element = Element("a")
        element.set_attribute("k", "v")
        element.remove_attribute("k")
        assert not element.has_attribute("k")
        element.remove_attribute("k")  # idempotent

    def test_text_concatenates_descendants(self):
        root = Element("a")
        root.append(Text("one "))
        child = Element("b")
        child.append(Text("two"))
        root.append(child)
        root.append(Text(" three"))
        assert root.text() == "one two three"

    def test_direct_text_skips_children(self):
        root = Element("a")
        root.append(Text("x"))
        child = Element("b")
        child.append(Text("y"))
        root.append(child)
        assert root.direct_text() == "x"

    def test_find_children_by_name(self):
        root = Element("a")
        root.append(Element("b"))
        root.append(Element("c"))
        root.append(Element("b"))
        assert len(list(root.find_children("b"))) == 2

    def test_clone_deep_is_detached_and_equalish(self):
        root = Element("a")
        root.set_attribute("k", "v")
        root.append(Text("t"))
        root.append(Element("b"))
        copy = root.clone()
        assert copy is not root
        assert copy.parent is None
        assert copy.get_attribute("k") == "v"
        assert len(copy.children) == 2
        assert copy.children[0] is not root.children[0]

    def test_clone_shallow_has_no_children(self):
        root = Element("a")
        root.append(Element("b"))
        assert Element.clone(root, deep=False).children == []

    def test_detach_removes_from_parent(self):
        parent = Element("a")
        child = Element("b")
        parent.append(child)
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_identity_equality(self):
        a1 = Element("a")
        a2 = Element("a")
        assert a1 == a1
        assert a1 != a2
        assert len({a1, a2}) == 2


class TestDocument:
    def test_root_property(self):
        document = Document()
        assert document.root is None
        document.append(Comment("prolog"))
        root = Element("r")
        document.append(root)
        assert document.root is root

    def test_set_root_replaces(self):
        document = Document()
        document.append(Element("old"))
        new_root = Element("new")
        document.set_root(new_root)
        assert document.root is new_root
        assert sum(isinstance(c, Element) for c in document.children) == 1

    def test_clone_preserves_metadata(self):
        document = Document()
        document.uri = "http://x/doc.xml"
        document.doctype_name = "r"
        document.system_id = "r.dtd"
        document.append(Element("r"))
        copy = document.clone()
        assert copy.uri == document.uri
        assert copy.doctype_name == "r"
        assert copy.system_id == "r.dtd"
        assert copy.root is not document.root

    def test_document_property_walks_up(self):
        document = Document()
        root = Element("r")
        document.append(root)
        leaf = Element("leaf")
        root.append(leaf)
        assert leaf.document is document
        assert root.document is document

    def test_detached_node_has_no_document(self):
        assert Element("x").document is None

    def test_root_element_from_attribute(self):
        document = Document()
        root = Element("r")
        document.append(root)
        attr = root.set_attribute("a", "1")
        assert attr.root_element() is root


class TestLeafNodes:
    def test_attribute_invalid_name(self):
        with pytest.raises(ReproError):
            Attribute("bad name", "v")

    def test_attribute_detach(self):
        element = Element("a")
        attr = element.set_attribute("k", "v")
        attr.detach()
        assert not element.has_attribute("k")
        assert attr.parent is None

    def test_text_clone(self):
        text = Text("abc")
        assert text.clone().data == "abc"
        assert text.clone() is not text

    def test_comment_clone(self):
        assert Comment("c").clone().data == "c"

    def test_pi_requires_valid_target(self):
        with pytest.raises(ReproError):
            ProcessingInstruction("no spaces")

    def test_pi_clone(self):
        pi = ProcessingInstruction("target", "data")
        copy = pi.clone()
        assert (copy.target, copy.data) == ("target", "data")

    def test_ancestors_of_nested_text(self):
        document = Document()
        root = Element("r")
        child = Element("c")
        text = Text("x")
        document.append(root)
        root.append(child)
        child.append(text)
        assert list(text.ancestors()) == [child, root, document]

    def test_reprs_are_informative(self):
        assert "Element" in repr(Element("a"))
        assert "Attribute" in repr(Attribute("a", "v"))
        assert "Text" in repr(Text("x" * 50))
        assert "Document" in repr(Document())
