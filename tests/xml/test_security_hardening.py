"""Adversarial-input tests: the substrate must fail fast, not fall over.

A security processor's parser is attack surface; these tests pin down
the defenses against classic XML denial-of-service constructions.
"""

import pytest

from repro.errors import DTDSyntaxError, XMLSyntaxError
from repro.xml.escape import resolve_references
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.traversal import count_nodes


class TestEntityBombs:
    def test_billion_laughs_rejected(self):
        # Classic exponential expansion: 10 levels of 10x each.
        declarations = ['<!ENTITY l0 "ha">']
        for level in range(1, 10):
            refs = f"&l{level - 1};" * 10
            declarations.append(f'<!ENTITY l{level} "{refs}">')
        bomb = (
            "<!DOCTYPE x [" + "".join(declarations) + "]>"
            "<x>&l9;</x>"
        )
        with pytest.raises(XMLSyntaxError, match="entity bomb|character limit"):
            parse_document(bomb)

    def test_entity_reference_cycle_rejected(self):
        cycle = (
            '<!DOCTYPE x [<!ENTITY a "&b;"><!ENTITY b "&a;">]>'
            "<x>&a;</x>"
        )
        with pytest.raises(XMLSyntaxError, match="deeply|cycle"):
            parse_document(cycle)

    def test_self_referencing_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="deeply|cycle"):
            parse_document('<!DOCTYPE x [<!ENTITY a "&a;">]><x>&a;</x>')

    def test_deep_but_legitimate_nesting_accepted(self):
        declarations = ['<!ENTITY e0 "leaf">']
        for level in range(1, 30):
            declarations.append(f'<!ENTITY e{level} "&e{level - 1};">')
        document = parse_document(
            "<!DOCTYPE x [" + "".join(declarations) + "]><x>&e29;</x>"
        )
        assert document.root.text() == "leaf"

    def test_moderate_fanout_accepted(self):
        # 3 levels of 5x = 125 copies: completely legitimate.
        text = (
            "<!DOCTYPE x ["
            '<!ENTITY a "x">'
            '<!ENTITY b "&a;&a;&a;&a;&a;">'
            '<!ENTITY c "&b;&b;&b;&b;&b;">'
            "]><x>&c;</x>"
        )
        assert parse_document(text).root.text() == "x" * 25

    def test_resolve_references_budget_direct(self):
        entities = {"big": "y" * 1000}
        # 1000 chars per reference; ~20k references = 20M chars > cap.
        text = "&big;" * 20000
        with pytest.raises(XMLSyntaxError, match="character limit"):
            resolve_references(text, entities)


class TestDepthAttacks:
    def test_deeply_nested_elements_parse(self):
        depth = 50_000
        text = "".join(f"<n{0}>" for _ in range(depth))  # noqa: F841 (clarity)
        text = "<a>" * depth + "payload" + "</a>" * depth
        document = parse_document(text)
        assert count_nodes(document.root) == depth + 1

    def test_deep_document_round_trips(self):
        depth = 20_000
        text = "<a>" * depth + "x" + "</a>" * depth
        document = parse_document(text)
        assert serialize(document, xml_declaration=False) == text

    def test_deep_document_clones(self):
        depth = 20_000
        document = parse_document("<a>" * depth + "</a>" * depth)
        clone = document.clone()
        assert count_nodes(clone.root) == depth

    def test_deep_view_computation(self):
        from repro.authz.authorization import Authorization
        from repro.core.view import compute_view_from_auths

        depth = 5_000
        document = parse_document(
            "<a>" * depth + "</a>" * depth, uri="http://x/deep.xml"
        )
        grant = Authorization.build("Public", "http://x/deep.xml", "+", "R")
        result = compute_view_from_auths(document, [grant], [])
        assert result.visible_nodes == depth


class TestParameterEntityAttacks:
    def test_parameter_entity_cycle_rejected(self):
        from repro.dtd.parser import parse_dtd

        with pytest.raises(DTDSyntaxError, match="limit|cycle"):
            parse_dtd('<!ENTITY % p "%q;"><!ENTITY % q "%p;"><!ELEMENT a (%p;)>')

    def test_runaway_parameter_expansion_rejected(self):
        from repro.dtd.parser import parse_dtd

        # Syntactically valid exponential fanout: each level is 12 comma-
        # separated copies of the previous one, 12^7 leaf expansions.
        declarations = ['<!ENTITY % p0 "a?">']
        for level in range(1, 8):
            refs = ", ".join([f"%p{level - 1};"] * 12)
            declarations.append(f'<!ENTITY % p{level} "{refs}">')
        with pytest.raises(DTDSyntaxError, match="limit"):
            parse_dtd("".join(declarations) + "<!ELEMENT a (%p7;)>")


class TestMalformedInputsFailCleanly:
    @pytest.mark.parametrize(
        "payload",
        [
            "<" * 1000,
            "&" * 1000,
            "<a " + 'x="1" ' * 5000 + "/>",  # many attributes: fine, not an error
        ],
    )
    def test_no_hangs_or_crashes(self, payload):
        try:
            parse_document(payload)
        except XMLSyntaxError:
            pass  # rejection is fine; hanging or RecursionError is not

    def test_huge_attribute_count_parses(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(5000))
        document = parse_document(f"<x {attrs}/>")
        assert len(document.root.attributes) == 5000

    def test_huge_flat_document_parses(self):
        body = "<item/>" * 50_000
        document = parse_document(f"<list>{body}</list>")
        assert count_nodes(document.root) == 50_001
