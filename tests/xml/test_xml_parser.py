"""Tests for the XML well-formedness parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml.nodes import Comment, Element, ProcessingInstruction, Text
from repro.xml.parser import parse_document, parse_fragment


class TestBasicParsing:
    def test_minimal_document(self):
        document = parse_document("<a/>")
        assert document.root.name == "a"
        assert document.root.children == []

    def test_nested_elements(self):
        document = parse_document("<a><b><c/></b></a>")
        b = document.root.children[0]
        assert b.name == "b"
        assert b.children[0].name == "c"

    def test_text_content(self):
        root = parse_fragment("<a>hello</a>")
        assert isinstance(root.children[0], Text)
        assert root.children[0].data == "hello"

    def test_mixed_content_order_preserved(self):
        root = parse_fragment("<a>x<b/>y<c/>z</a>")
        kinds = [type(child).__name__ for child in root.children]
        assert kinds == ["Text", "Element", "Text", "Element", "Text"]

    def test_attributes_parsed(self):
        root = parse_fragment('<a x="1" y=\'2\'/>')
        assert root.get_attribute("x") == "1"
        assert root.get_attribute("y") == "2"

    def test_attribute_order_preserved(self):
        root = parse_fragment('<a z="1" a="2" m="3"/>')
        assert list(root.attributes) == ["z", "a", "m"]

    def test_uri_recorded(self):
        document = parse_document("<a/>", uri="http://x/doc.xml")
        assert document.uri == "http://x/doc.xml"

    def test_empty_and_spelled_out_equivalent(self):
        assert parse_fragment("<a></a>").children == []
        assert parse_fragment("<a/>").children == []


class TestReferences:
    def test_entity_references_in_text(self):
        root = parse_fragment("<a>1 &lt; 2 &amp; 3 &gt; 2</a>")
        assert root.text() == "1 < 2 & 3 > 2"

    def test_char_references(self):
        root = parse_fragment("<a>&#65;&#x42;</a>")
        assert root.text() == "AB"

    def test_references_in_attributes(self):
        root = parse_fragment('<a t="&quot;x&quot; &amp; y"/>')
        assert root.get_attribute("t") == '"x" & y'

    def test_dtd_declared_entity(self):
        document = parse_document(
            "<!DOCTYPE a [<!ENTITY who 'world'>]><a>hello &who;</a>"
        )
        assert document.root.text() == "hello world"

    def test_adjacent_references_merge_into_one_text_node(self):
        root = parse_fragment("<a>x&amp;y</a>")
        assert len(root.children) == 1
        assert root.children[0].data == "x&y"


class TestProlog:
    def test_xml_declaration(self):
        document = parse_document(
            '<?xml version="1.1" encoding="UTF-8" standalone="yes"?><a/>'
        )
        assert document.xml_version == "1.1"
        assert document.encoding == "UTF-8"
        assert document.standalone is True

    def test_doctype_system(self):
        document = parse_document('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        assert document.doctype_name == "a"
        assert document.system_id == "a.dtd"

    def test_doctype_public(self):
        document = parse_document(
            '<!DOCTYPE a PUBLIC "-//X//EN" "http://x/a.dtd"><a/>'
        )
        assert document.system_id == "http://x/a.dtd"

    def test_internal_subset_parsed_to_dtd(self):
        document = parse_document(
            "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>"
        )
        assert document.dtd is not None
        assert document.dtd.element("a") is not None

    def test_prolog_comments_kept(self):
        document = parse_document("<!-- before --><a/><!-- after -->")
        comments = [c for c in document.children if isinstance(c, Comment)]
        assert len(comments) == 2

    def test_prolog_comments_dropped_when_disabled(self):
        document = parse_document("<!-- x --><a/>", keep_comments=False)
        assert all(not isinstance(c, Comment) for c in document.children)

    def test_pi_in_prolog(self):
        document = parse_document('<?xml-stylesheet href="x.xsl"?><a/>')
        pis = [c for c in document.children if isinstance(c, ProcessingInstruction)]
        assert pis[0].target == "xml-stylesheet"


class TestSpecialContent:
    def test_cdata_section(self):
        root = parse_fragment("<a><![CDATA[<not> & markup]]></a>")
        assert root.text() == "<not> & markup"

    def test_cdata_merges_with_text(self):
        root = parse_fragment("<a>x<![CDATA[y]]>z</a>")
        assert len(root.children) == 1
        assert root.text() == "xyz"

    def test_comment_inside_element(self):
        root = parse_fragment("<a><!-- note --><b/></a>")
        assert isinstance(root.children[0], Comment)
        assert root.children[0].data == " note "

    def test_pi_inside_element(self):
        root = parse_fragment("<a><?php echo ?></a>")
        pi = root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "php"

    def test_whitespace_dropping_option(self):
        document = parse_document(
            "<a>\n  <b/>\n</a>", keep_ignorable_whitespace=False
        )
        assert all(isinstance(c, Element) for c in document.root.children)

    def test_crlf_normalized(self):
        root = parse_fragment("<a>line1\r\nline2\rline3</a>")
        assert root.text() == "line1\nline2\nline3"

    def test_attribute_value_whitespace_normalized(self):
        root = parse_fragment('<a t="x\n\ty"/>')
        assert root.get_attribute("t") == "x  y"


class TestWellFormednessErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",                       # unterminated
            "<a></b>",                   # mismatched tags
            "<a><b></a></b>",            # improper nesting
            "<a/><b/>",                  # two roots
            '<a x="1" x="2"/>',          # duplicate attribute
            "<a x=1/>",                  # unquoted attribute
            '<a x="<"/>',                # '<' in attribute value
            "<a>&nosuch;</a>",           # unknown entity
            "<a>]]></a>",                # bare CDATA terminator
            "<1a/>",                     # bad name
            "",                          # empty input
            "just text",                 # no element
            "<a><!-- unterminated </a>", # runaway comment
            "<a><![CDATA[x</a>",         # runaway CDATA
            "<?xml version='1.0'?><?xml?><a/>",  # reserved PI target
            "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><!DOCTYPE a []><a/>",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_document(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_document("<a>\n<b></c>\n</a>")
        assert excinfo.value.line == 2

    def test_content_after_root_rejected(self):
        with pytest.raises(XMLSyntaxError, match="after root"):
            parse_document("<a/>trailing")

    def test_trailing_comment_and_pi_allowed(self):
        document = parse_document("<a/><!-- ok --><?pi ok?>")
        assert document.root.name == "a"

    def test_invalid_control_character_rejected(self):
        with pytest.raises(XMLSyntaxError, match="invalid character"):
            parse_document("<a>\x01</a>")
