"""Tests for XML serialization (compact and pretty)."""

import pytest

from repro.errors import ReproError
from repro.xml.builder import E, new_document
from repro.xml.nodes import Comment, ProcessingInstruction, Text
from repro.xml.parser import parse_document
from repro.xml.serializer import element_signature, pretty, serialize


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(E("a")) == "<a/>"

    def test_attributes_and_text(self):
        element = E("a", {"x": "1"}, "hi")
        assert serialize(element) == '<a x="1">hi</a>'

    def test_text_escaped(self):
        assert serialize(E("a", "1 < 2 & 3")) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_attribute_escaped(self):
        assert serialize(E("a", {"t": 'say "hi" & <bye>'})) == (
            '<a t="say &quot;hi&quot; &amp; &lt;bye&gt;"/>'
        )

    def test_document_with_declaration(self):
        document = new_document(E("a"))
        assert serialize(document) == '<?xml version="1.0"?>\n<a/>'

    def test_document_without_declaration(self):
        document = new_document(E("a"))
        assert serialize(document, xml_declaration=False) == "<a/>"

    def test_doctype_emitted(self):
        document = new_document(E("a"), system_id="a.dtd")
        text = serialize(document)
        assert '<!DOCTYPE a SYSTEM "a.dtd">' in text

    def test_doctype_suppressed(self):
        document = new_document(E("a"), system_id="a.dtd")
        assert "DOCTYPE" not in serialize(document, doctype=False)

    def test_comment(self):
        assert serialize(Comment(" c ")) == "<!-- c -->"

    def test_comment_with_double_dash_rejected(self):
        with pytest.raises(ReproError):
            serialize(Comment("a--b"))

    def test_pi(self):
        assert serialize(ProcessingInstruction("t", "d")) == "<?t d?>"
        assert serialize(ProcessingInstruction("t")) == "<?t?>"

    def test_round_trip_structure(self):
        source = '<a x="1"><b>text &amp; more</b><c/><!--n--><?p d?></a>'
        document = parse_document(source)
        again = parse_document(serialize(document, xml_declaration=False))
        assert element_signature(document.root) == element_signature(again.root)

    def test_round_trip_preserves_unicode(self):
        source = "<a>héllo wörld \U0001F600</a>"
        document = parse_document(source)
        assert parse_document(serialize(document)).root.text() == "héllo wörld \U0001F600"


class TestPretty:
    def test_short_text_inlined(self):
        document = parse_document("<a><b>hi</b></a>")
        assert "<b>hi</b>" in pretty(document)

    def test_indentation_levels(self):
        document = parse_document("<a><b><c/></b></a>")
        lines = pretty(document).splitlines()
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>"
        assert lines[2] == "    <c/>"

    def test_whitespace_only_text_dropped(self):
        document = parse_document("<a>\n   <b/>\n</a>")
        assert pretty(document).count("\n") == 2  # <a> / <b/> / </a>

    def test_declaration_optional(self):
        document = parse_document("<a/>")
        assert pretty(document, xml_declaration=True).startswith("<?xml")


class TestSignature:
    def test_attribute_order_insensitive(self):
        first = parse_document('<a x="1" y="2"/>')
        second = parse_document('<a y="2" x="1"/>')
        assert element_signature(first.root) == element_signature(second.root)

    def test_content_sensitive(self):
        first = parse_document("<a>1</a>")
        second = parse_document("<a>2</a>")
        assert element_signature(first.root) != element_signature(second.root)

    def test_none_signature(self):
        assert element_signature(None) == "(none)"
