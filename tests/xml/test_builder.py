"""Tests for the programmatic tree builder."""

import pytest

from repro.errors import ReproError
from repro.xml.builder import E, comment, new_document, pi, text
from repro.xml.nodes import Comment, Document, Element, ProcessingInstruction, Text


class TestE:
    def test_name_only(self):
        element = E("a")
        assert element.name == "a"
        assert element.children == []

    def test_attributes_dict(self):
        element = E("a", {"x": "1", "y": "2"})
        assert element.get_attribute("x") == "1"
        assert element.get_attribute("y") == "2"

    def test_multiple_dicts_merge(self):
        element = E("a", {"x": "1"}, {"y": "2"})
        assert element.get_attribute("x") == "1"
        assert element.get_attribute("y") == "2"

    def test_string_children_become_text(self):
        element = E("a", "hello")
        assert isinstance(element.children[0], Text)

    def test_nested_elements(self):
        element = E("a", E("b", E("c")))
        assert element.children[0].children[0].name == "c"

    def test_none_children_skipped(self):
        include_extra = False
        element = E("a", E("b"), E("extra") if include_extra else None)
        assert len(element.children) == 1

    def test_attribute_values_coerced_to_str(self):
        element = E("a", {"n": 7})
        assert element.get_attribute("n") == "7"

    def test_node_helpers(self):
        element = E("a", text("t"), comment("c"), pi("p", "d"))
        kinds = [type(child) for child in element.children]
        assert kinds == [Text, Comment, ProcessingInstruction]

    def test_document_as_child_rejected(self):
        with pytest.raises(ReproError):
            E("a", Document())

    def test_unsupported_child_rejected(self):
        with pytest.raises(ReproError):
            E("a", 42)


class TestNewDocument:
    def test_basic(self):
        document = new_document(E("root"), uri="http://x/d.xml")
        assert document.root.name == "root"
        assert document.uri == "http://x/d.xml"
        assert document.doctype_name is None

    def test_doctype_defaults_to_root_name(self):
        document = new_document(E("root"), system_id="root.dtd")
        assert document.doctype_name == "root"
        assert document.system_id == "root.dtd"

    def test_explicit_doctype_name(self):
        document = new_document(E("root"), doctype_name="other")
        assert document.doctype_name == "other"

    def test_dtd_attached(self):
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd("<!ELEMENT root EMPTY>")
        document = new_document(E("root"), dtd=dtd)
        assert document.dtd is dtd
        assert document.doctype_name == "root"
