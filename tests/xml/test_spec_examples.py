"""XML 1.0 specification examples, as conformance pins.

Each test encodes a concrete example from the XML 1.0 recommendation's
prose (sections 2.4, 3.3.3, 4.4) so the parser's behaviour is anchored
to the spec rather than to our expectations.
"""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml.parser import parse_document


class TestSection44EntityExamples:
    def test_double_escaped_ampersand(self):
        """Spec 4.4.5: '&#38;#38;' in an entity value yields a literal
        '&#38;' replacement, which expands to '&' at the point of use."""
        document = parse_document(
            '<!DOCTYPE x [<!ENTITY amper "&#38;#38;">]><x>&amper;</x>'
        )
        assert document.root.text() == "&"

    def test_tricky_example(self):
        """Spec 4.4.8's 'tricky' example (adapted to internal entities)."""
        document = parse_document(
            "<!DOCTYPE test [\n"
            '<!ENTITY example "<p>An ampersand (&#38;#38;) may be escaped\n'
            "numerically (&#38;#38;#38;) or with a general entity\n"
            '(&amp;amp;).</p>">\n'
            "]>\n"
            "<test>&example;</test>"
        )
        # The spec's expected fully-expanded text (section 4.4.8): the
        # doubly-escaped forms unwrap exactly one level per expansion.
        text = document.root.text()
        assert "An ampersand (&) may be escaped" in text
        assert "numerically (&#38;)" in text
        assert "(&amp;)" in text
        # The '<p>' of the replacement stays character data: this
        # implementation expands general entities as text, never
        # re-parsing them as markup (a deliberate hardening choice).
        assert "<p>" in text

    def test_predefined_entities_doubly_declared(self):
        """Spec 4.6: documents may re-declare the predefined entities;
        the predefined meaning must survive."""
        document = parse_document(
            "<!DOCTYPE x [\n"
            '<!ENTITY lt "&#38;#60;">\n'
            '<!ENTITY amp "&#38;#38;">\n'
            "]>\n"
            "<x>&lt;&amp;</x>"
        )
        assert document.root.text() == "<&"


class TestSection24CharacterData:
    def test_cdata_end_in_content_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<x>legal]]?> no: ]]> </x>")

    def test_amp_must_be_escaped(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<x>AT&T</x>")

    def test_right_angle_allowed_bare(self):
        assert parse_document("<x>a > b</x>").root.text() == "a > b"


class TestSection33AttributeNormalization:
    def test_literal_newline_becomes_space(self):
        document = parse_document('<x a="1\n2"/>')
        assert document.root.get_attribute("a") == "1 2"

    def test_character_reference_newline_survives(self):
        document = parse_document('<x a="1&#10;2"/>')
        assert document.root.get_attribute("a") == "1\n2"

    def test_tab_reference_survives(self):
        document = parse_document('<x a="1&#9;2"/>')
        assert document.root.get_attribute("a") == "1\t2"

    def test_entity_expansion_in_attribute(self):
        document = parse_document(
            "<!DOCTYPE x [<!ENTITY v 'inner'>]><x a='pre &v; post'/>"
        )
        assert document.root.get_attribute("a") == "pre inner post"


class TestMiscProse:
    def test_empty_element_forms_equivalent(self):
        first = parse_document("<x></x>")
        second = parse_document("<x/>")
        assert first.root.children == second.root.children == []

    def test_xml_declaration_must_be_first(self):
        with pytest.raises(XMLSyntaxError):
            parse_document(' <?xml version="1.0"?><x/>')

    def test_version_required_in_declaration(self):
        with pytest.raises(XMLSyntaxError, match="version"):
            parse_document('<?xml encoding="UTF-8"?><x/>')

    def test_standalone_values_restricted(self):
        with pytest.raises(XMLSyntaxError, match="standalone"):
            parse_document('<?xml version="1.0" standalone="maybe"?><x/>')
