"""Tests for escaping and reference resolution."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml.escape import (
    PREDEFINED_ENTITIES,
    escape_attribute,
    escape_text,
    resolve_references,
)


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_markup_characters_escaped(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_quotes_left_alone(self):
        assert escape_text("'\"") == "'\""

    def test_cdata_end_made_safe(self):
        assert "]]>" not in escape_text("]]>")


class TestEscapeAttribute:
    def test_double_quote_escaped(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_newline_and_tab_as_char_refs(self):
        assert escape_attribute("a\nb\tc") == "a&#10;b&#9;c"

    def test_ampersand_and_lt(self):
        assert escape_attribute("<&") == "&lt;&amp;"


class TestResolveReferences:
    def test_predefined_entities(self):
        for name, char in PREDEFINED_ENTITIES.items():
            assert resolve_references(f"&{name};") == char

    def test_decimal_reference(self):
        assert resolve_references("&#65;") == "A"

    def test_hex_reference(self):
        assert resolve_references("&#x41;") == "A"
        assert resolve_references("&#X41;") == "A"

    def test_mixed_text(self):
        assert resolve_references("1 &lt; 2 &amp;&amp; 3 &gt; 2") == "1 < 2 && 3 > 2"

    def test_custom_entities(self):
        assert resolve_references("&who;!", {"who": "world"}) == "world!"

    def test_entities_expand_recursively(self):
        entities = {"inner": "X", "outer": "a&inner;b"}
        assert resolve_references("&outer;", entities) == "aXb"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            resolve_references("&nope;")

    def test_unterminated_reference_raises(self):
        with pytest.raises(XMLSyntaxError, match="unterminated"):
            resolve_references("&amp")

    def test_bad_decimal_raises(self):
        with pytest.raises(XMLSyntaxError, match="bad decimal"):
            resolve_references("&#xyz&#;".split("&#")[0] + "&#12a;")

    def test_reference_to_control_char_rejected(self):
        with pytest.raises(XMLSyntaxError, match="not a valid XML character"):
            resolve_references("&#0;")

    def test_reference_out_of_unicode_range_rejected(self):
        with pytest.raises(XMLSyntaxError, match="out of range"):
            resolve_references("&#x110000;")

    def test_no_ampersand_fast_path(self):
        text = "just plain text"
        assert resolve_references(text) is text

    def test_predefined_cannot_be_overridden(self):
        assert resolve_references("&lt;", {"lt": "WRONG"}) == "<"
