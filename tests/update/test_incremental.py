"""Differential proof: incremental relabeling ≡ full relabeling.

The tentpole claim of the update subsystem is that after an edit only
the affected subtree needs re-running — the labels (and therefore the
views) come out *identical* to labeling the post-edit document from
scratch. This suite generates random documents, random write-grant
sets and random edit batches, applies them through the engine's
incremental path, and compares every node's label against a fresh
full :class:`~repro.update.LabelState` on the result — under all four
conflict policies. A facade-level test additionally holds the *served
view bytes* identical to a from-scratch server, open and closed.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.authz.authorization import Authorization
from repro.authz.conflict import _POLICIES, policy_by_name
from repro.errors import ReproError
from repro.server.request import AccessRequest
from repro.server.service import PolicyConfig, SecureXMLServer
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.update import (
    DeleteNode,
    InsertChild,
    LabelState,
    ReplaceSubtree,
    SetAttribute,
    SetText,
    UpdateEngine,
    UpdateRequest,
)
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.traversal import preorder

URI = "u://board.xml"
POLICY_NAMES = sorted(_POLICIES)


def build_document(seed: int) -> str:
    rng = random.Random(seed)
    cards = []
    for index in range(rng.randint(2, 5)):
        owner = rng.choice(["alice", "bob"])
        tags = "".join(f"<tag>t{index}{t}</tag>" for t in range(rng.randint(0, 2)))
        cards.append(
            f'<card owner="{owner}" prio="{rng.randint(0, 5)}">'
            f"<text>body {index}</text>{tags}</card>"
        )
    return "<board>" + "".join(cards) + "</board>"


def build_auths(seed: int) -> list[Authorization]:
    """Random write-authorization sets, biased towards applicable ones."""
    rng = random.Random(seed)
    paths = [
        f"{URI}://card",
        f"{URI}://card[@owner='alice']",
        f"{URI}://card[@owner='bob']",
        f"{URI}://text",
        f"{URI}://tag",
        f"{URI}:/board",
    ]
    auths = [
        # A broad grant keeps the application rate high enough that the
        # differential actually runs (denied batches only test atomicity).
        Authorization.build(
            ("alice", "*", "*"), f"{URI}://card", "+", "R", action="write"
        )
    ]
    for _ in range(rng.randint(1, 4)):
        auths.append(
            Authorization.build(
                (rng.choice(["alice", "Public"]), "*", "*"),
                rng.choice(paths),
                rng.choice(["+", "-"]),
                rng.choice(["L", "R", "LW", "RW"]),
                action="write",
            )
        )
    return auths


def build_operations(seed: int) -> list:
    rng = random.Random(seed)
    operations = []
    for step in range(rng.randint(1, 4)):
        position = rng.randint(1, 3)
        operations.append(
            rng.choice(
                [
                    SetAttribute(f"//card[{position}]", "prio", str(step)),
                    SetText(f"//card[{position}]/text", f"edited {step}"),
                    InsertChild(f"//card[{position}]", f"<tag>new{step}</tag>"),
                    InsertChild(
                        "/board",
                        f'<card owner="alice"><text>ins {step}</text></card>',
                    ),
                    DeleteNode(f"//card[{position}]/tag[1]"),
                    ReplaceSubtree(
                        f"//card[{position}]",
                        f'<card owner="alice"><text>rep {step}</text></card>',
                    ),
                ]
            )
        )
    return operations


@settings(max_examples=40, deadline=None)
@given(
    doc_seed=st.integers(0, 10_000),
    auth_seed=st.integers(0, 10_000),
    op_seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(POLICY_NAMES),
)
def test_incremental_labels_equal_full_relabel(
    doc_seed, auth_seed, op_seed, policy_name
):
    document = parse_document(build_document(doc_seed), uri=URI)
    auths = build_auths(auth_seed)
    before = serialize(document)
    hierarchy = SubjectHierarchy()
    policy = policy_by_name(policy_name)
    engine = UpdateEngine(hierarchy, policy=policy, validate_result=False)
    request = UpdateRequest.of(
        Requester("alice", "1.2.3.4", "pc.x"), URI, *build_operations(op_seed)
    )
    try:
        result = engine.apply_full(document, request, auths, [])
    except ReproError:
        # Denied (or op-shape) failures must leave the input untouched.
        assert serialize(document) == before
        return
    assert serialize(document) == before  # the engine edits a clone
    fresh = LabelState.build(result.document, auths, [], hierarchy, policy=policy)
    for node in preorder(result.document.root):
        assert result.state.label(node) == fresh.label(node), (
            f"label diverged at {node!r} under {policy_name}"
        )


@settings(max_examples=15, deadline=None)
@given(
    doc_seed=st.integers(0, 10_000),
    op_seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(POLICY_NAMES),
    open_policy=st.booleans(),
)
def test_served_views_match_fresh_server(
    doc_seed, op_seed, policy_name, open_policy
):
    """After a facade update, every requester's served view is
    byte-identical to a from-scratch server over the post-edit bytes."""
    config = PolicyConfig(conflict_policy=policy_name, open_policy=open_policy)
    grants = [
        Authorization.build("Public", f"{URI}://card", "+", "R"),
        Authorization.build(("bob", "*", "*"), f"{URI}://text", "-", "R"),
        Authorization.build(
            ("alice", "*", "*"), f"{URI}://card", "+", "R", action="write"
        ),
        Authorization.build(
            ("alice", "*", "*"), f"{URI}:/board", "+", "L", action="write"
        ),
    ]

    def build_server(xml: str) -> SecureXMLServer:
        server = SecureXMLServer(default_policy=config)
        server.add_user("alice")
        server.add_user("bob")
        server.publish_document(URI, xml)
        for grant in grants:
            server.grant(grant)
        return server

    server = build_server(build_document(doc_seed))
    requesters = [
        Requester("alice", "10.0.0.1", "pc.x"),
        Requester("bob", "10.0.0.2", "pc2.x"),
    ]
    request = UpdateRequest.of(
        requesters[0], URI, *build_operations(op_seed)
    )
    try:
        outcome = server.update(request)
    except ReproError:
        return
    assert outcome.applied
    replay = build_server(serialize(server.repository.document(URI)))
    for requester in requesters:
        incremental = server.serve(AccessRequest(requester, URI))
        scratch = replay.serve(AccessRequest(requester, URI))
        assert incremental.xml_text == scratch.xml_text, (
            f"view diverged for {requester.user} under "
            f"{policy_name}/open={open_policy}"
        )
