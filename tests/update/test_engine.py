"""Engine-level tests for :mod:`repro.update`.

The facade-level behaviour (denials, atomicity, auditing) is pinned in
``tests/server/test_updates.py``; this suite exercises the pieces the
facade composes — ``clone_with_map``, ``ReplaceSubtree``, incremental
relabel bookkeeping on :class:`UpdateResult` and write provenance.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.errors import ValidationError
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.update import (
    ReplaceSubtree,
    SetAttribute,
    UpdateDenied,
    UpdateEngine,
    UpdateRequest,
    clone_with_map,
)
from repro.xml.nodes import Attribute, Element
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.traversal import preorder

URI = "http://x/tasks.xml"
DTD_URI = "http://x/tasks.dtd"

TASKS_DTD = """\
<!ELEMENT tasks (task*)>
<!ELEMENT task (title, note?)>
<!ATTLIST task owner CDATA #REQUIRED state (open|done) "open">
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"""

TASKS_XML = """\
<tasks>
  <task owner="alice" state="open"><title>write tests</title></task>
  <task owner="bob" state="open"><title>review design</title><note>p</note></task>
</tasks>
"""


@pytest.fixture
def server():
    s = SecureXMLServer()
    s.add_user("alice")
    s.publish_dtd(DTD_URI, TASKS_DTD)
    s.publish_document(URI, TASKS_XML, dtd_uri=DTD_URI, validate_on_add=True)
    s.grant(Authorization.build("Public", URI, "+", "R"))
    s.grant(
        Authorization.build(
            ("alice", "*", "*"),
            f"{URI}://task[@owner='alice']",
            "+",
            "R",
            action="write",
        )
    )
    return s


def alice():
    return Requester("alice", "10.0.0.1", "pc.x")


class TestCloneWithMap:
    def test_clone_is_byte_identical_and_disjoint(self):
        document = parse_document(
            "<a x='1'><b>t</b><!--c--><?pi d?></a>", uri="u"
        )
        clone, node_map = clone_with_map(document)
        assert serialize(clone) == serialize(document)
        assert clone.uri == "u"
        originals = set(map(id, preorder(document)))
        for node in preorder(clone):
            assert id(node) not in originals

    def test_map_covers_every_element_and_attribute(self):
        document = parse_document("<a x='1'><b y='2'/><b/></a>")
        _, node_map = clone_with_map(document)
        for node in preorder(document):
            if isinstance(node, (Element, Attribute)):
                assert node in node_map
                assert type(node_map[node]) is type(node)

    def test_dtd_and_prolog_carry_over(self):
        document = parse_document(
            "<?xml version='1.0' encoding='UTF-8'?>"
            "<!DOCTYPE a SYSTEM 'a.dtd'><a/>"
        )
        clone, _ = clone_with_map(document)
        assert clone.doctype_name == "a"
        assert clone.system_id == "a.dtd"
        assert clone.encoding == document.encoding


class TestReplaceSubtree:
    def test_replace_own_subtree(self, server):
        outcome = server.update(
            UpdateRequest.of(
                alice(),
                URI,
                ReplaceSubtree(
                    "//task[@owner='alice']",
                    '<task owner="alice" state="done"><title>new</title></task>',
                ),
            )
        )
        assert outcome.applied
        text = server.serve(AccessRequest(alice(), URI)).xml_text
        assert "<title>new</title>" in text
        assert "write tests" not in text

    def test_replace_keeps_document_order(self, server):
        server.update(
            UpdateRequest.of(
                alice(),
                URI,
                ReplaceSubtree(
                    "//task[@owner='alice']",
                    '<task owner="alice"><title>first</title></task>',
                ),
            )
        )
        text = server.serve(AccessRequest(alice(), URI)).xml_text
        assert text.index("first") < text.index("review design")

    def test_replace_requires_whole_old_subtree_writable(self, server):
        # alice may write bob's task element but not its children.
        server.grant(
            Authorization.build(
                ("alice", "*", "*"),
                f"{URI}://task[@owner='bob']",
                "+",
                "L",
                action="write",
            )
        )
        with pytest.raises(UpdateDenied):
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    ReplaceSubtree(
                        "//task[@owner='bob']",
                        '<task owner="bob"><title>x</title></task>',
                    ),
                )
            )

    def test_root_cannot_be_replaced(self, server):
        server.grant(
            Authorization.build(("alice", "*", "*"), URI, "+", "R", action="write")
        )
        with pytest.raises(UpdateDenied, match="root element"):
            server.update(
                UpdateRequest.of(alice(), URI, ReplaceSubtree("//tasks", "<tasks/>"))
            )

    def test_invalid_replacement_rejected_atomically(self, server):
        before = server.serve(AccessRequest(alice(), URI)).xml_text
        with pytest.raises(ValidationError):
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    ReplaceSubtree(
                        "//task[@owner='alice']", '<task owner="alice"/>'
                    ),
                )
            )
        assert server.serve(AccessRequest(alice(), URI)).xml_text == before


class TestIncrementalBookkeeping:
    def test_outcome_reports_incremental_relabel(self, server):
        outcome = server.update(
            UpdateRequest.of(
                alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
            )
        )
        assert outcome.incremental
        # Only the edited task subtree relabels, never the whole tree.
        assert 0 < outcome.relabeled_nodes < 8

    def test_version_increments_monotonically(self, server):
        versions = [
            server.update(
                UpdateRequest.of(
                    alice(),
                    URI,
                    SetAttribute("//task[@owner='alice']", "state", state),
                )
            ).version
            for state in ("done", "open", "done")
        ]
        assert versions == sorted(versions)
        assert len(set(versions)) == 3


class TestWriteProvenance:
    def test_admitted_names_the_admitting_authorization(self, server):
        outcome = server.update(
            UpdateRequest.of(
                alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
            )
        )
        assert outcome.admitted
        path, grants = outcome.admitted[0]
        assert path == "/tasks/task[1]"
        assert any("task[@owner='alice']" in grant for grant in grants)
        assert all("write" in grant for grant in grants)

    def test_engine_collects_admitted_only_on_request(self, server):
        document = server.repository.document(URI)
        auths = server.store.applicable(alice(), URI, "write")
        engine = UpdateEngine(SubjectHierarchy())
        request = UpdateRequest.of(
            alice(), URI, SetAttribute("//task[@owner='alice']", "state", "done")
        )
        plain = engine.apply_full(document, request, auths, [])
        assert plain.outcome.admitted == ()
        collected = engine.apply_full(
            document, request, auths, [], collect_admitted=True
        )
        assert collected.outcome.admitted
