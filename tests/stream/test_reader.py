"""The incremental tokenizer against the DOM parser, chunk by chunk.

The contract: for any chunking of the input — including one character
at a time, which puts every entity reference, character reference, tag,
CDATA marker and CRLF pair across a chunk boundary —
``parse_document_chunks`` builds the same tree, raises the same errors,
and honors the same guards as ``parse_document`` of the joined text.
"""

import dataclasses

import pytest

from repro.errors import XMLLimitExceeded, XMLSyntaxError
from repro.limits import ResourceLimits
from repro.stream import DocumentBuilder, document_from_events, iter_events
from repro.xml.parser import parse_document, parse_document_chunks
from repro.xml.serializer import serialize
from repro.xml.traversal import count_nodes

TRICKY = (
    '<?xml version="1.0" encoding="UTF-8"?>\n'
    "<!-- prolog -->\n"
    '<?xml-stylesheet href="s.css"?>\n'
    '<!DOCTYPE memo SYSTEM "memo.dtd" [\n'
    '<!ENTITY who "world">\n'
    "]>\n"
    '<memo date="2000-01-02" note="a&#9;b&who;">\n'
    "  <to>hello &who; &amp; &#72;&#x69;</to>\n"
    "  <body>lead<![CDATA[raw <markup> & stuff]]>tail</body>\n"
    "  <empty/>\n"
    "  <ws>   </ws>\n"
    "  <!-- inner -->\n"
    "  <?pi data?>\n"
    "</memo>\n"
    "<!-- trailer -->\n"
)


def chunked(text, size):
    return [text[i : i + size] for i in range(0, len(text), size)]


def assert_same_tree(reference, rebuilt):
    assert serialize(rebuilt) == serialize(reference)
    assert count_nodes(rebuilt.root) == count_nodes(reference.root)
    assert rebuilt.doctype_name == reference.doctype_name
    assert rebuilt.system_id == reference.system_id
    assert rebuilt.xml_version == reference.xml_version
    assert rebuilt.encoding == reference.encoding
    assert rebuilt.standalone == reference.standalone
    assert (rebuilt.dtd is None) == (reference.dtd is None)


class TestChunkParity:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 16, 64, 10_000])
    def test_every_split_matches_the_dom_parser(self, size):
        reference = parse_document(TRICKY, uri="u")
        rebuilt = parse_document_chunks(chunked(TRICKY, size), uri="u")
        assert_same_tree(reference, rebuilt)

    @pytest.mark.parametrize("keep_comments", [True, False])
    @pytest.mark.parametrize("keep_ws", [True, False])
    def test_keep_flags_match(self, keep_comments, keep_ws):
        reference = parse_document(
            TRICKY,
            keep_comments=keep_comments,
            keep_ignorable_whitespace=keep_ws,
        )
        rebuilt = parse_document_chunks(
            chunked(TRICKY, 3),
            keep_comments=keep_comments,
            keep_ignorable_whitespace=keep_ws,
        )
        assert_same_tree(reference, rebuilt)

    def test_references_split_mid_token(self):
        # The regression this module exists for: '&#72;' and '&who;'
        # arriving as '&', '#7', '2;' etc. must resolve identically.
        text = (
            '<!DOCTYPE a [<!ENTITY who "world">]>'
            "<a t='x&#72;y'>&who;&amp;&#x41;&#66;</a>"
        )
        reference = parse_document(text)
        for size in range(1, 9):
            rebuilt = parse_document_chunks(chunked(text, size))
            assert_same_tree(reference, rebuilt)
        assert reference.root.text() == "world&AB"

    def test_crlf_split_between_cr_and_lf(self):
        text = "<a>line1\r\nline2\rline3</a>"
        reference = parse_document(text)
        # Force the boundary exactly between '\r' and '\n'.
        cut = text.index("\r\n") + 1
        rebuilt = parse_document_chunks([text[:cut], text[cut:]])
        assert_same_tree(reference, rebuilt)
        assert rebuilt.root.text() == "line1\nline2\nline3"

    def test_cdata_end_marker_split(self):
        text = "<a><![CDATA[x]]y]]></a>"
        reference = parse_document(text)
        for size in (1, 2, 3):
            assert_same_tree(
                reference, parse_document_chunks(chunked(text, size))
            )


class TestErrorParity:
    BAD = [
        "<a><b></a></b>",  # mismatched tags
        "<a>unclosed",  # unterminated element
        "<a>text]]>more</a>",  # ']]>' in character data
        "<a>&undefined;</a>",  # unknown entity
        "<a a='1' a='2'/>",  # duplicate attribute
        "<a/><b/>",  # two roots
        "",  # no root at all
    ]

    @pytest.mark.parametrize("text", BAD)
    @pytest.mark.parametrize("size", [1, 4, 10_000])
    def test_malformed_fails_in_both(self, text, size):
        with pytest.raises(XMLSyntaxError):
            parse_document(text)
        with pytest.raises(XMLSyntaxError):
            parse_document_chunks(chunked(text, size))


class TestGuards:
    def test_node_count_guard_trips(self):
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_node_count=3
        )
        text = "<a><b/><c/><d/></a>"
        with pytest.raises(XMLLimitExceeded) as trip:
            parse_document_chunks(chunked(text, 4), limits=limits)
        assert trip.value.limit == "max_node_count"

    def test_input_budget_counts_across_chunks(self):
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_input_bytes=10
        )
        with pytest.raises(XMLLimitExceeded) as trip:
            parse_document_chunks(chunked("<aaaa>xxxx</aaaa>", 4), limits=limits)
        assert trip.value.limit == "max_input_bytes"

    def test_stream_buffer_budget_bounds_heldback_markup(self):
        # A comment that never terminates must not buffer forever.
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_stream_buffer_bytes=64
        )
        chunks = ["<a><!-- "] + ["x" * 32] * 8
        with pytest.raises(XMLLimitExceeded) as trip:
            parse_document_chunks(chunks, limits=limits)
        assert trip.value.limit == "max_stream_buffer_bytes"


class TestEventApi:
    def test_document_from_events_round_trips(self):
        reference = parse_document(TRICKY, uri="u")
        rebuilt = document_from_events(
            iter_events(chunked(TRICKY, 5)), uri="u"
        )
        assert_same_tree(reference, rebuilt)

    def test_builder_requires_end_document(self):
        builder = DocumentBuilder()
        with pytest.raises(XMLSyntaxError):
            builder.finish()
