"""Bounded memory: the streaming backend's reason to exist.

The acceptance criterion: a document at least 10× larger (in nodes)
than what ``ResourceLimits`` allows the DOM pipeline to materialize
streams successfully — the streaming path never creates tree nodes, so
``max_node_count`` does not apply — while the DOM ``serve`` comes back
as a typed structured failure. Hostile inputs (entity bombs, nesting
attacks, never-terminating markup) trip the same typed guards through
``serve_stream`` as through ``serve``.
"""

import dataclasses

import pytest

from repro.authz.authorization import Authorization
from repro.errors import XMLLimitExceeded
from repro.limits import DEFAULT_LIMITS, ResourceLimits
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester

URI = "http://x/doc.xml"

BILLION_LAUGHS = (
    "<?xml version='1.0'?>"
    "<!DOCTYPE lolz ["
    "<!ENTITY lol 'lol'>"
    + "".join(
        f"<!ENTITY lol{i} '" + f"&lol{i - 1 if i > 1 else ''};" * 10 + "'>"
        for i in range(1, 10)
    )
    + "]><lolz>&lol9;</lolz>"
)


def requester():
    return Requester("anyone", "10.0.0.1", "h.example")


def wide_text(items: int) -> str:
    rows = "".join(f'<row id="r{i}"><v>value {i}</v></row>' for i in range(items))
    return f"<table>{rows}</table>"


def make_server(text, defer=True):
    server = SecureXMLServer()
    server.publish_document(URI, text, defer_parse=defer)
    server.grant(Authorization.build("Public", URI, "+", "R"))
    return server


class TestBoundedMemory:
    def test_stream_serves_what_dom_cannot_hold(self):
        # ~4000 rows -> ~16k tree nodes, >= 10x the 1500-node cap the
        # DOM pipeline gets below.
        limits = dataclasses.replace(
            ResourceLimits.unlimited(),
            max_node_count=1500,
            max_stream_buffer_bytes=DEFAULT_LIMITS.max_stream_buffer_bytes,
        )
        text = wide_text(4000)
        dom_server = make_server(text)
        dom = dom_server.serve(AccessRequest(requester(), URI), limits=limits)
        assert not dom.ok
        assert dom.error.limit == "max_node_count"

        stream_server = make_server(text)
        stream = stream_server.serve_stream(
            AccessRequest(requester(), URI), limits=limits
        )
        assert stream.ok
        assert stream.xml_text.count("<row") == 4000
        assert stream.total_nodes > 10 * limits.max_node_count

    def test_streamed_bytes_leave_before_input_ends(self):
        # With a small sink chunk size the first output chunk must be
        # produced while most of the document is still unread.
        server = make_server(wide_text(2000))
        chunks = []
        response = server.serve_stream(
            AccessRequest(requester(), URI),
            sink=chunks.append,
            chunk_size=512,
            feed_size=1024,
        )
        assert response.ok
        assert len(chunks) > 10
        assert "".join(chunks) == response.xml_text

    def test_pending_buffer_budget_trips_on_deep_hidden_chains(self):
        # Elements awaiting a visible descendant buffer only their
        # names — but even that is bounded.
        depth = 200
        text = (
            "<r0>" + "".join(f"<n{i}>" for i in range(1, depth))
            + "leaf"
            + "".join(f"</n{i}>" for i in range(depth - 1, 0, -1))
            + "</r0>"
        )
        server = SecureXMLServer()
        server.publish_document(URI, text, defer_parse=True)
        # Only the leaf text's parent chain survives; every ancestor
        # name sits in the pending buffer until the text arrives.
        server.grant(
            Authorization.build("Public", f"{URI}://n{depth - 1}", "+", "R")
        )
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_stream_buffer_bytes=64
        )
        response = server.serve_stream(
            AccessRequest(requester(), URI), limits=limits
        )
        assert not response.ok
        assert response.error.limit == "max_stream_buffer_bytes"


class TestHostileInputs:
    def test_entity_bomb_is_a_typed_failure(self):
        server = make_server(BILLION_LAUGHS)
        response = server.serve_stream(AccessRequest(requester(), URI))
        assert not response.ok
        assert isinstance(response.error, XMLLimitExceeded)
        assert response.error.limit == "max_entity_expansion_chars"

    def test_nesting_attack_trips_depth_guard(self):
        depth = 4000
        text = "<a>" * depth + "</a>" * depth
        server = make_server(text)
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_tree_depth=100
        )
        response = server.serve_stream(
            AccessRequest(requester(), URI), limits=limits
        )
        assert not response.ok
        assert response.error.limit == "max_tree_depth"

    def test_unterminated_markup_cannot_buffer_forever(self):
        server = make_server("<a><!-- " + "x" * 100_000)
        limits = dataclasses.replace(
            ResourceLimits.unlimited(), max_stream_buffer_bytes=1024
        )
        response = server.serve_stream(
            AccessRequest(requester(), URI), limits=limits
        )
        assert not response.ok
        assert response.error.limit == "max_stream_buffer_bytes"

    def test_malformed_document_is_a_parse_error_not_a_crash(self):
        server = make_server("<a><b></a></b>")
        from repro.errors import XMLSyntaxError

        with pytest.raises(XMLSyntaxError):
            server.serve_stream(AccessRequest(requester(), URI))
