"""Boundary-condition pins for the bulk-scan reader.

Every regression here was a real hazard of the offset-buffer rebuild:
the ``<?xml `` prefix hold in misc context, the ``_pending_cr`` carry
across chunk boundaries and into ``close()``, and the input budget,
which must charge *normalized* (post-CRLF-folding) characters in both
the streaming reader and the DOM parser so the same document costs the
same under either line-ending convention.
"""

import dataclasses

import pytest

from repro.errors import XMLLimitExceeded
from repro.limits import DEFAULT_LIMITS
from repro.stream.events import Characters
from repro.stream.reader import StreamReader
from repro.xml.parser import parse_document

DOCS = [
    '<?xml version="1.0"?><r a="v">t</r>',
    "<?xml version='1.0' encoding='utf-8' standalone='yes'?>\n<r/>",
    "<r><!-- c --><![CDATA[<&]]><?pi d?>x&amp;&#65;</r>",
    "<!DOCTYPE r [<!ENTITY e \"ee\">]><r>&e;</r>",
    "<r>a\r\nb\rc</r>\r\n",
    "<r>]]</r>",
    "<a><b x='1' y='2'/><b>t1<c/>t2</b></a>",
]


def events_for(text, size=None, limits=None):
    reader = StreamReader(limits=limits)
    events = []
    if size is None:
        events.extend(reader.feed(text))
    else:
        for start in range(0, len(text), size):
            events.extend(reader.feed(text[start : start + size]))
    events.extend(reader.close())
    return merge_continuations(events)


def merge_continuations(events):
    """Join batched ``Characters`` continuations into whole text nodes.

    The reader may emit one DOM text node as several ``Characters``
    events (``new_segment=False`` marks continuations) depending on
    where chunk boundaries fall; the *logical* stream — one event per
    text node — must not depend on chunking.
    """
    merged = []
    for event in events:
        if (
            isinstance(event, Characters)
            and not event.new_segment
            and merged
            and isinstance(merged[-1], Characters)
        ):
            prev = merged[-1]
            merged[-1] = Characters(
                data=prev.data + event.data,
                cdata=prev.cdata and event.cdata,
                new_segment=prev.new_segment,
            )
        else:
            merged.append(event)
    return merged


class TestChunkSizeParity:
    @pytest.mark.parametrize("doc", DOCS, ids=range(len(DOCS)))
    @pytest.mark.parametrize("size", range(1, 9))
    def test_all_chunk_sizes_1_to_8(self, doc, size):
        assert events_for(doc, size) == events_for(doc)


class TestXmlDeclPrefixHold:
    def test_decl_split_one_char_at_a_time(self):
        # "<?xml " must be held back until the reader can tell a
        # declaration from a PI whose target merely starts with "xml".
        doc = '<?xml version="1.0" encoding="utf-8"?><r/>'
        assert events_for(doc, 1) == events_for(doc)

    def test_pi_target_prefixed_with_xml_split(self):
        doc = "<?xmlish data?><r/>"
        assert events_for(doc, 1) == events_for(doc)

    def test_decl_like_pi_after_root_rejected_identically(self):
        doc = "<r/><?xml version='1.0'?>"
        with pytest.raises(Exception) as whole:
            events_for(doc)
        with pytest.raises(Exception) as split:
            events_for(doc, 1)
        assert type(split.value) is type(whole.value)


class TestPendingCarriageReturn:
    def test_cr_lf_split_across_chunks(self):
        reader = StreamReader()
        events = list(reader.feed("<r>a\r"))
        events += reader.feed("\nb</r>")
        events += reader.close()
        assert merge_continuations(events) == events_for("<r>a\nb</r>")

    def test_lone_cr_in_final_chunk_before_close(self):
        # A trailing "\r" with no following "\n" is held as pending;
        # close() must materialize it as the normalized "\n".
        assert events_for("<r>a</r>\r") == events_for("<r>a</r>\n")

    def test_cr_only_document_tail_one_char_chunks(self):
        assert events_for("<r>a\r</r>\r", 1) == events_for("<r>a\n</r>\n")

    def test_pending_cr_counts_toward_buffered(self):
        # A held "\r" is unconsumed input: it must show up in the
        # buffered count even though it is not in the scan buffer.
        reader = StreamReader()
        reader.feed("<r>abc")
        base = reader.buffered
        reader.feed("\r")
        assert reader.buffered == base + 1


class TestNormalizedInputBudget:
    LF_DOC = "<r>\n<a>x</a>\n<a>y</a>\n</r>\n"

    def limits(self, budget):
        return dataclasses.replace(DEFAULT_LIMITS, max_input_bytes=budget)

    def test_crlf_and_lf_cost_the_same_in_stream_reader(self):
        lf = self.LF_DOC
        crlf = lf.replace("\n", "\r\n")
        exact = self.limits(len(lf))
        # Budget equal to the normalized length admits both spellings.
        events_for(lf, 3, exact)
        events_for(crlf, 3, exact)
        # One character short rejects both.
        short = self.limits(len(lf) - 1)
        with pytest.raises(XMLLimitExceeded):
            events_for(lf, 3, short)
        with pytest.raises(XMLLimitExceeded):
            events_for(crlf, 3, short)

    def test_crlf_and_lf_cost_the_same_in_dom_parser(self):
        lf = self.LF_DOC
        crlf = lf.replace("\n", "\r\n")
        exact = self.limits(len(lf))
        parse_document(lf, limits=exact)
        parse_document(crlf, limits=exact)
        short = self.limits(len(lf) - 1)
        with pytest.raises(XMLLimitExceeded):
            parse_document(lf, limits=short)
        with pytest.raises(XMLLimitExceeded):
            parse_document(crlf, limits=short)

    def test_pending_cr_charged_at_close(self):
        doc = "<r/>\r"
        events_for(doc, limits=self.limits(5))
        with pytest.raises(XMLLimitExceeded):
            events_for(doc, limits=self.limits(4))
