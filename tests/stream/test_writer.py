"""StreamWriter contract tests: sink relay, collect modes, reuse."""

import pytest

from repro.stream import iter_events
from repro.stream.writer import StreamWriter
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

DOC = (
    '<?xml version="1.0"?>\n'
    '<lab name="x"><project type="public"><paper cat="a &amp; b">'
    "<title>S&lt;1&gt;</title></paper><paper/></project>"
    "<note></note></lab>"
)


def pump(writer):
    """Replay DOC's event stream into *writer*; return end_document()."""
    for event in iter_events([DOC]):
        kind = type(event).__name__
        if kind == "StartDocument":
            writer.start_document(event.xml_version, event.encoding, event.standalone)
        elif kind == "StartElement":
            writer.start_element(event.name, event.attributes)
        elif kind == "EndElement":
            writer.end_element()
        elif kind == "Characters":
            writer.text(event.data)
    return writer.end_document()


class TestConstructorContract:
    def test_collect_false_without_sink_raises(self):
        with pytest.raises(ValueError, match="collect=False and no sink"):
            StreamWriter(sink=None, collect=False)

    def test_collect_false_with_sink_is_fine(self):
        StreamWriter(sink=lambda chunk: None, collect=False)

    def test_default_collects(self):
        writer = StreamWriter()
        writer.start_element("r")
        writer.end_element()
        assert writer.end_document() == "<r/>"


class TestSinkRelay:
    def test_relay_is_byte_identical_to_collected(self):
        collected = pump(StreamWriter())
        reference = serialize(parse_document(DOC), doctype=False)
        assert collected == reference

        for chunk_size in (1, 7, 64, 65536):
            relayed: list[str] = []
            writer = StreamWriter(
                sink=relayed.append, chunk_size=chunk_size, collect=False
            )
            result = pump(writer)
            assert result == ""  # nothing collected in relay mode
            assert "".join(relayed) == reference

    def test_collect_and_sink_together_agree(self):
        relayed: list[str] = []
        writer = StreamWriter(sink=relayed.append, chunk_size=5, collect=True)
        collected = pump(writer)
        assert "".join(relayed) == collected

    def test_small_chunk_size_emits_early(self):
        relayed: list[str] = []
        writer = StreamWriter(sink=relayed.append, chunk_size=4, collect=False)
        writer.start_document()
        writer.start_element("root")
        writer.text("body")
        # Output must already be leaving before the document ends.
        assert relayed
        writer.end_element()
        writer.end_document()

    def test_chars_written_tracks_total(self):
        writer = StreamWriter(sink=lambda chunk: None, chunk_size=3, collect=False)
        writer.start_element("a")
        writer.text("xy")
        writer.end_element()
        writer.end_document()
        assert writer.chars_written == len("<a>xy</a>")
