"""The SEED per-character StreamReader, frozen as a differential oracle.

This is a verbatim snapshot of ``repro/stream/reader.py`` as it stood
before the bulk-scan rebuild (PR 10), kept **only** so the property
suites can prove the rebuilt reader emits an identical event stream
under every chunking. It is not part of the library; nothing under
``src/`` may import it. Delete it once the rebuilt reader has survived
a few releases.
"""


from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import LimitExceeded, XMLLimitExceeded, XMLSyntaxError
from repro.limits import Deadline, ResourceLimits
from repro.xml.chars import WHITESPACE, is_name_char, is_name_start_char, is_xml_char
from repro.xml.escape import incomplete_reference_suffix, resolve_references
from repro.stream.events import (
    Characters,
    CommentEvent,
    DoctypeDecl,
    EndDocument,
    EndElement,
    PIEvent,
    StartDocument,
    StartElement,
    StreamEvent,
)

__all__ = ["SeedStreamReader", "seed_iter_events"]

_PROLOG = 0
_CONTENT = 1
_EPILOG = 2

#: Events between two deadline checks.
_DEADLINE_STRIDE = 256


class SeedStreamReader:
    """One incremental parse; feed() chunks, then close()."""

    def __init__(
        self,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self._limits = limits
        self._deadline = (
            deadline if deadline is not None and not deadline.unbounded else None
        )
        self._buf = ""
        self._pending_cr = False
        self._line = 1
        self._col = 1
        self._state = _PROLOG
        self._at_start = True
        self._started = False
        self._seen_doctype = False
        self._entities: dict[str, str] = {}
        self._stack: list[str] = []
        self._segment_open = False
        self._chars_fed = 0
        self._events = 0
        self._finished = False
        self._max_chars = limits.max_entity_expansion_chars if limits else None
        self._max_depth = limits.max_entity_expansion_depth if limits else None

    @property
    def chars_fed(self) -> int:
        """Raw characters accepted so far (pre-normalization)."""
        return self._chars_fed

    @property
    def buffered(self) -> int:
        """Characters currently held back."""
        return len(self._buf) + (1 if self._pending_cr else 0)

    # -- public -------------------------------------------------------------

    def feed(self, chunk: str) -> list[StreamEvent]:
        """Accept the next chunk; return the events it completed."""
        if self._finished:
            raise ValueError("reader already closed")
        events: list[StreamEvent] = []
        if chunk:
            self._chars_fed += len(chunk)
            self._check_input_budget()
            if self._pending_cr:
                self._pending_cr = False
                if not chunk.startswith("\n"):
                    self._buf += "\n"
            if chunk.endswith("\r"):
                self._pending_cr = True
                chunk = chunk[:-1]
            if "\r" in chunk:
                chunk = chunk.replace("\r\n", "\n").replace("\r", "\n")
            self._buf += chunk
            self._pump(events, at_eof=False)
            self._check_buffer_budget()
        if self._deadline is not None:
            self._deadline.check("stream parse")
        return events

    def close(self) -> list[StreamEvent]:
        """Signal end of input; return the final events."""
        if self._finished:
            raise ValueError("reader already closed")
        if self._pending_cr:
            self._pending_cr = False
            self._buf += "\n"
        events: list[StreamEvent] = []
        self._pump(events, at_eof=True)
        if self._state == _CONTENT:
            self._fail(f"unterminated element <{self._stack[-1]}>")
        if self._buf:
            if self._state == _EPILOG:
                self._fail("unexpected content after root element")
            self._fail("expected root element")
        if self._state == _PROLOG:
            self._fail("expected root element")
        self._ensure_started(events)
        events.append(EndDocument())
        self._finished = True
        return events

    # -- pump loop ----------------------------------------------------------

    def _pump(self, events: list[StreamEvent], at_eof: bool) -> None:
        while self._step(events, at_eof):
            self._events += 1
            if (
                self._deadline is not None
                and self._events % _DEADLINE_STRIDE == 0
            ):
                self._deadline.check("stream parse")

    def _step(self, events: list[StreamEvent], at_eof: bool) -> bool:
        """Emit at most one construct; False when more input is needed."""
        if self._state == _CONTENT:
            return self._step_content(events, at_eof)
        return self._step_misc(events, at_eof)

    # -- prolog / epilog ----------------------------------------------------

    def _step_misc(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        if self._at_start:
            if not at_eof and len(buf) < 6 and "<?xml ".startswith(buf):
                return False
            if buf.startswith("<?xml") and (
                len(buf) == 5 or buf[5] in WHITESPACE
            ):
                return self._read_xml_declaration(events, at_eof)
            self._at_start = False
        # Inter-construct whitespace is consumed silently.
        i = 0
        while i < len(buf) and buf[i] in WHITESPACE:
            i += 1
        if i:
            self._consume(i)
            buf = self._buf
            self._at_start = False
        if not buf:
            return False
        if buf[0] != "<":
            if self._state == _EPILOG:
                self._fail("unexpected content after root element")
            self._fail("expected root element")
        if buf.startswith("<!--"):
            return self._read_comment(events, at_eof)
        if not at_eof and len(buf) < 4 and "<!--".startswith(buf):
            return False
        if self._state == _PROLOG:
            if buf.startswith("<!DOCTYPE"):
                return self._read_doctype(events, at_eof)
            if not at_eof and len(buf) < 9 and "<!DOCTYPE".startswith(buf):
                return False
        if buf.startswith("<?"):
            return self._read_pi(events, at_eof)
        if not at_eof and len(buf) < 2:
            return False
        if self._state == _EPILOG:
            self._fail("unexpected content after root element")
        return self._read_start_tag(events, at_eof)

    def _read_xml_declaration(
        self, events: list[StreamEvent], at_eof: bool
    ) -> bool:
        end = self._find_unquoted(self._buf, "?>", 5)
        if end is None:
            if not at_eof:
                return False
            self._fail("unterminated XML declaration")
        body = self._buf[5:end]
        attrs = self._parse_pseudo_attributes(body)
        version = attrs.get("version")
        if version is None:
            self._fail("XML declaration must specify a version")
        standalone_raw = attrs.get("standalone")
        standalone: Optional[bool] = None
        if standalone_raw is not None:
            if standalone_raw not in ("yes", "no"):
                self._fail("standalone must be 'yes' or 'no'")
            standalone = standalone_raw == "yes"
        self._consume(end + 2)
        self._at_start = False
        self._started = True
        events.append(
            StartDocument(
                xml_version=version,
                encoding=attrs.get("encoding"),
                standalone=standalone,
            )
        )
        return True

    def _parse_pseudo_attributes(self, body: str) -> dict[str, str]:
        attrs: dict[str, str] = {}
        i, n = 0, len(body)
        while True:
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n:
                return attrs
            start = i
            if not is_name_start_char(body[i]):
                self._fail("expected a name")
            i += 1
            while i < n and is_name_char(body[i]):
                i += 1
            name = body[start:i]
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n or body[i] != "=":
                self._fail("expected '='")
            i += 1
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n or body[i] not in "'\"":
                self._fail("expected a quoted literal")
            quote = body[i]
            closing = body.find(quote, i + 1)
            if closing == -1:
                self._fail("unterminated literal")
            attrs[name] = body[i + 1 : closing]
            i = closing + 1

    def _read_doctype(self, events: list[StreamEvent], at_eof: bool) -> bool:
        if self._seen_doctype:
            self._fail("multiple DOCTYPE declarations")
        end = self._find_doctype_end(self._buf)
        if end is None:
            if not at_eof:
                return False
            self._fail("unterminated DOCTYPE declaration")
        self._ensure_started(events)
        name, system_id, dtd = self._parse_doctype_body(self._buf[9:end])
        self._seen_doctype = True
        self._consume(end + 1)
        events.append(DoctypeDecl(name=name, system_id=system_id, dtd=dtd))
        return True

    @staticmethod
    def _find_doctype_end(buf: str) -> Optional[int]:
        depth = 0
        quote: Optional[str] = None
        for i in range(9, len(buf)):
            ch = buf[i]
            if quote is not None:
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                return i
        return None

    def _parse_doctype_body(
        self, body: str
    ) -> tuple[str, Optional[str], Optional[object]]:
        i, n = 0, len(body)
        if i >= n or body[i] not in WHITESPACE:
            self._fail("expected whitespace")
        while i < n and body[i] in WHITESPACE:
            i += 1
        start = i
        if i >= n or not is_name_start_char(body[i]):
            self._fail("expected a name")
        i += 1
        while i < n and is_name_char(body[i]):
            i += 1
        name = body[start:i]
        while i < n and body[i] in WHITESPACE:
            i += 1
        system_id: Optional[str] = None

        def read_literal(j: int) -> tuple[str, int]:
            if j >= n or body[j] not in "'\"":
                self._fail("expected a quoted literal")
            closing = body.find(body[j], j + 1)
            if closing == -1:
                self._fail("unterminated literal")
            return body[j + 1 : closing], closing + 1

        if body.startswith("SYSTEM", i):
            i += 6
            if i >= n or body[i] not in WHITESPACE:
                self._fail("expected whitespace")
            while i < n and body[i] in WHITESPACE:
                i += 1
            system_id, i = read_literal(i)
            while i < n and body[i] in WHITESPACE:
                i += 1
        elif body.startswith("PUBLIC", i):
            i += 6
            if i >= n or body[i] not in WHITESPACE:
                self._fail("expected whitespace")
            while i < n and body[i] in WHITESPACE:
                i += 1
            _public, i = read_literal(i)  # public id (kept out of the model)
            if i >= n or body[i] not in WHITESPACE:
                self._fail("expected whitespace")
            while i < n and body[i] in WHITESPACE:
                i += 1
            system_id, i = read_literal(i)
            while i < n and body[i] in WHITESPACE:
                i += 1
        dtd = None
        if i < n and body[i] == "[":
            closing = body.rfind("]")
            if closing < i:
                self._fail("unterminated internal DTD subset")
            subset = body[i + 1 : closing]
            dtd = self._parse_internal_subset(subset)
            i = closing + 1
            while i < n and body[i] in WHITESPACE:
                i += 1
        if i != n:
            self._fail("expected '>'")
        return name, system_id, dtd

    def _parse_internal_subset(self, subset: str):
        # Imported lazily: repro.dtd depends on repro.xml.nodes, so a
        # top-level import here would be circular.
        from repro.dtd.parser import parse_dtd

        try:
            dtd = parse_dtd(subset, limits=self._limits)
        except LimitExceeded as exc:  # keep the typed guard trip
            raise XMLLimitExceeded(
                f"error in internal DTD subset: {exc}",
                self._line,
                self._col,
                limit=exc.limit,
                value=exc.value,
                maximum=exc.maximum,
            ) from exc
        except Exception as exc:  # re-anchor DTD errors in this document
            raise XMLSyntaxError(
                f"error in internal DTD subset: {exc}", self._line, self._col
            ) from exc
        self._entities.update(dtd.general_entities)
        return dtd

    # -- content ------------------------------------------------------------

    def _step_content(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        if not buf:
            return False
        if buf[0] != "<":
            return self._read_text(events, at_eof)
        self._segment_open = False
        if buf.startswith("</"):
            return self._read_end_tag(events, at_eof)
        if buf.startswith("<!--"):
            return self._read_comment(events, at_eof)
        if buf.startswith("<![CDATA["):
            return self._read_cdata(events, at_eof)
        if buf.startswith("<?"):
            return self._read_pi(events, at_eof)
        if buf.startswith("<!"):
            if not at_eof and (
                "<!--".startswith(buf) or "<![CDATA[".startswith(buf)
            ):
                return False
            self._fail("declarations are not allowed in content")
        if not at_eof and len(buf) < 9 and (
            "<!--".startswith(buf) or "<![CDATA[".startswith(buf) or buf == "<"
        ):
            return False
        return self._read_start_tag(events, at_eof)

    def _read_text(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        idx = buf.find("<")
        if idx == 0:
            return True
        if idx == -1:
            if at_eof:
                self._fail(f"unterminated element <{self._stack[-1]}>")
            # No markup in sight: emit the safe prefix so huge text runs
            # stream in bounded memory, holding back anything a later
            # chunk could complete into a reference, ']]>' or CRLF.
            hold = incomplete_reference_suffix(buf)
            if hold == 0:
                if buf.endswith("]]"):
                    hold = 2
                elif buf.endswith("]"):
                    hold = 1
            raw = buf[: len(buf) - hold] if hold else buf
            if not raw:
                return False
            self._emit_text(events, raw, final=False)
            return True
        self._emit_text(events, buf[:idx], final=True)
        return True

    def _emit_text(self, events: list[StreamEvent], raw: str, final: bool) -> None:
        if "]]>" in raw:
            self._fail("']]>' not allowed in character data")
        for ch in raw:
            if not is_xml_char(ch):
                self._fail(f"invalid character U+{ord(ch):04X} in character data")
        data = resolve_references(
            raw, self._entities, self._line, self._col,
            self._max_chars, self._max_depth,
        )
        events.append(
            Characters(data, cdata=False, new_segment=not self._segment_open)
        )
        self._segment_open = not final
        self._consume(len(raw))

    def _read_cdata(self, events: list[StreamEvent], at_eof: bool) -> bool:
        end = self._buf.find("]]>", 9)
        if end == -1:
            if not at_eof:
                return False
            self._fail("unterminated CDATA section")
        events.append(Characters(self._buf[9:end], cdata=True))
        self._consume(end + 3)
        return True

    def _read_end_tag(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        end = buf.find(">", 2)
        if end == -1:
            if not at_eof:
                return False
            self._fail(f"unterminated element <{self._stack[-1]}>")
        body = buf[2:end]
        i, n = 0, len(body)
        if i >= n or not is_name_start_char(body[i]):
            self._fail("expected a name")
        i += 1
        while i < n and is_name_char(body[i]):
            i += 1
        closing = body[:i]
        while i < n and body[i] in WHITESPACE:
            i += 1
        if i != n:
            self._fail("expected '>'")
        current = self._stack[-1]
        if closing != current:
            self._fail(
                f"mismatched end tag: expected </{current}>, found </{closing}>"
            )
        self._stack.pop()
        self._consume(end + 1)
        events.append(EndElement(closing))
        if not self._stack:
            self._state = _EPILOG
        return True

    def _read_comment(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        end = buf.find("--", 4)
        if end == -1 or end + 2 >= len(buf):
            if end != -1 and at_eof:
                self._fail("expected '-->'")
            if not at_eof:
                return False
            self._fail("unterminated comment")
        if buf[end + 2] != ">":
            self._fail("expected '-->'")
        self._ensure_started(events)
        events.append(CommentEvent(buf[4:end]))
        self._consume(end + 3)
        return True

    def _read_pi(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        end = buf.find("?>", 2)
        if end == -1:
            if not at_eof:
                return False
            self._fail("unterminated processing instruction")
        body = buf[2:end]
        i, n = 0, len(body)
        if i >= n or not is_name_start_char(body[i]):
            self._fail("expected a name")
        i += 1
        while i < n and is_name_char(body[i]):
            i += 1
        target = body[:i]
        if target.lower() == "xml":
            self._fail("processing instruction target may not be 'xml'")
        data = ""
        if i < n:
            if body[i] not in WHITESPACE:
                self._fail("expected '?>'")
            while i < n and body[i] in WHITESPACE:
                i += 1
            data = body[i:]
        self._ensure_started(events)
        events.append(PIEvent(target, data))
        self._consume(end + 2)
        return True

    def _read_start_tag(self, events: list[StreamEvent], at_eof: bool) -> bool:
        buf = self._buf
        end = self._find_unquoted(buf, ">", 1)
        if end is None:
            if not at_eof:
                return False
            return self._parse_tag_slice(events, buf[1:], at_eof=True)
        return self._parse_tag_slice(events, buf[1:end], at_eof=False)

    def _parse_tag_slice(
        self, events: list[StreamEvent], body: str, at_eof: bool
    ) -> bool:
        """Parse ``name attrs...[/]`` (the inside of a start tag)."""
        i, n = 0, len(body)
        if i >= n or not is_name_start_char(body[i]):
            self._fail("expected a name")
        i += 1
        while i < n and is_name_char(body[i]):
            i += 1
        name = body[:i]
        attributes: dict[str, str] = {}
        self_closing = False
        while True:
            before = i
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n:
                if at_eof:
                    self._fail(f"unterminated element <{name}>")
                break
            if body[i] == "/":
                if at_eof:  # the '>' never arrived
                    self._fail(f"unterminated element <{name}>")
                if i + 1 != n:
                    self._fail("expected '>'")
                self_closing = True
                break
            if before == i:
                self._fail("expected whitespace before attribute")
            start = i
            if not is_name_start_char(body[i]):
                self._fail("expected a name")
            i += 1
            while i < n and is_name_char(body[i]):
                i += 1
            attr_name = body[start:i]
            if attr_name in attributes:
                self._fail(f"duplicate attribute {attr_name!r}")
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n or body[i] != "=":
                self._fail("expected '='")
            i += 1
            while i < n and body[i] in WHITESPACE:
                i += 1
            if i >= n or body[i] not in "'\"":
                self._fail("attribute value must be quoted")
            quote = body[i]
            closing = body.find(quote, i + 1)
            if closing == -1:
                self._fail("unterminated attribute value")
            raw = body[i + 1 : closing]
            if "<" in raw:
                self._fail("'<' not allowed in attribute value")
            i = closing + 1
            # Attribute-value normalization: *literal* whitespace becomes
            # a plain space; whitespace produced by character references
            # survives, so normalize before resolving.
            raw = raw.replace("\t", " ").replace("\n", " ")
            attributes[attr_name] = resolve_references(
                raw, self._entities, self._line, self._col,
                self._max_chars, self._max_depth,
            )
        self._ensure_started(events)
        self._consume(n + 2)  # the tag body plus '<' and '>'
        events.append(StartElement(name, attributes))
        if self._state == _PROLOG:
            self._state = _CONTENT
        if self_closing:
            events.append(EndElement(name))
            if not self._stack:
                self._state = _EPILOG
        else:
            self._stack.append(name)
            self._check_depth()
        return True

    # -- guards / helpers ---------------------------------------------------

    def _check_depth(self) -> None:
        limits = self._limits
        if (
            limits is not None
            and limits.max_tree_depth is not None
            and len(self._stack) > limits.max_tree_depth
        ):
            raise XMLLimitExceeded(
                f"element nesting exceeds the {limits.max_tree_depth}-level "
                "depth limit",
                self._line,
                self._col,
                limit="max_tree_depth",
                value=len(self._stack),
                maximum=limits.max_tree_depth,
            )

    def _check_input_budget(self) -> None:
        limits = self._limits
        if (
            limits is not None
            and limits.max_input_bytes is not None
            and self._chars_fed > limits.max_input_bytes
        ):
            raise XMLLimitExceeded(
                f"document is over the {limits.max_input_bytes}-character "
                "input limit",
                limit="max_input_bytes",
                value=self._chars_fed,
                maximum=limits.max_input_bytes,
            )

    def _check_buffer_budget(self) -> None:
        limits = self._limits
        if (
            limits is not None
            and limits.max_stream_buffer_bytes is not None
            and len(self._buf) > limits.max_stream_buffer_bytes
        ):
            raise XMLLimitExceeded(
                "streaming hold-back buffer exceeds the "
                f"{limits.max_stream_buffer_bytes}-character budget "
                "(single construct too large to stream)",
                self._line,
                self._col,
                limit="max_stream_buffer_bytes",
                value=len(self._buf),
                maximum=limits.max_stream_buffer_bytes,
            )

    def _ensure_started(self, events: list[StreamEvent]) -> None:
        if not self._started:
            self._started = True
            events.append(StartDocument())

    @staticmethod
    def _find_unquoted(buf: str, token: str, start: int) -> Optional[int]:
        """First index of *token* at/after *start*, outside quotes."""
        quote: Optional[str] = None
        first = token[0]
        for i in range(start, len(buf)):
            ch = buf[i]
            if quote is not None:
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch == first and buf.startswith(token, i):
                return i
        return None

    def _consume(self, count: int) -> None:
        consumed = self._buf[:count]
        self._buf = self._buf[count:]
        newlines = consumed.count("\n")
        if newlines:
            self._line += newlines
            self._col = count - consumed.rfind("\n")
        else:
            self._col += count

    def _fail(self, message: str) -> None:
        raise XMLSyntaxError(message, self._line, self._col)


def seed_iter_events(
    chunks: Iterable[str],
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[StreamEvent]:
    """Pull-parse *chunks* into a stream of events."""
    reader = SeedStreamReader(limits=limits, deadline=deadline)
    for chunk in chunks:
        yield from reader.feed(chunk)
    yield from reader.close()
