"""Differential harness: ``serve_stream`` against the DOM pipeline.

The acceptance criterion for the streaming backend: for every
document/policy pair in the generated corpus, the streamed view is
byte-identical to ``serve``'s — same XML text, same loosened DTD, same
``empty`` flag, same node accounting — and queries over the streamed
view return the same matches.
"""

import pytest

from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import PolicyConfig, SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.workloads.generator import (
    synthetic_authorizations,
    synthetic_document,
)
from repro.workloads.scenarios import (
    LAB_DOCUMENT_URI,
    LAB_DTD_TEXT,
    LAB_DTD_URI,
    lab_authorizations,
    lab_document,
)
from repro.xml.serializer import serialize

URI = "http://bench.example/doc.xml"
DTD_URI = "http://bench.example/doc.dtd"


def requester():
    return Requester("anyone", "10.0.0.1", "host.example.com")


def build_server(document, instance, schema, policy=None):
    server = SecureXMLServer(default_policy=policy or PolicyConfig())
    server.publish_document(
        URI, serialize(document), dtd_uri=DTD_URI if schema else None
    )
    for authorization in instance + schema:
        server.grant(authorization)
    return server


def assert_responses_match(dom, stream):
    assert dom.ok and stream.ok
    assert stream.xml_text == dom.xml_text
    assert stream.loosened_dtd_text == dom.loosened_dtd_text
    assert stream.empty == dom.empty
    assert stream.visible_nodes == dom.visible_nodes
    assert stream.total_nodes == dom.total_nodes


class TestCorpusParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_corpus(self, seed):
        document = synthetic_document(240, seed=seed, uri=URI)
        instance, schema = synthetic_authorizations(
            document, count=10, seed=seed
        )
        server = build_server(document, instance, schema)
        request = AccessRequest(requester(), URI)
        assert_responses_match(
            server.serve(request), server.serve_stream(request)
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "policy",
        [
            PolicyConfig(),
            PolicyConfig(open_policy=True),
            PolicyConfig(conflict_policy="permissions-take-precedence"),
            PolicyConfig(relative_paths="root"),
        ],
        ids=["closed", "open", "permissions", "root-relative"],
    )
    def test_policy_matrix(self, seed, policy):
        document = synthetic_document(160, seed=seed, uri=URI)
        instance, schema = synthetic_authorizations(
            document, count=8, seed=seed + 100
        )
        server = build_server(document, instance, schema, policy=policy)
        request = AccessRequest(requester(), URI)
        assert_responses_match(
            server.serve(request), server.serve_stream(request)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_schema_level_authorizations(self, seed):
        document = synthetic_document(160, seed=seed, uri=URI)
        instance, schema = synthetic_authorizations(
            document,
            count=10,
            seed=seed,
            dtd_uri=DTD_URI,
            schema_share=0.5,
        )
        server = build_server(document, instance, schema)
        request = AccessRequest(requester(), URI)
        assert_responses_match(
            server.serve(request), server.serve_stream(request)
        )

    def test_paper_running_example(self):
        server = SecureXMLServer()
        server.add_group("Foreign")
        server.add_group("Admin")
        server.add_user("Tom", groups=["Foreign"])
        server.publish_dtd(LAB_DTD_URI, LAB_DTD_TEXT)
        server.publish_document(
            LAB_DOCUMENT_URI, serialize(lab_document()), dtd_uri=LAB_DTD_URI
        )
        for authorization in lab_authorizations():
            server.grant(authorization)
        tom = Requester("Tom", "130.100.50.8", "infosys.bld1.it")
        request = AccessRequest(tom, LAB_DOCUMENT_URI)
        assert_responses_match(
            server.serve(request), server.serve_stream(request)
        )

    def test_empty_view(self):
        server = SecureXMLServer()
        server.publish_document(URI, "<a><b>x</b></a>")
        request = AccessRequest(requester(), URI)
        dom, stream = server.serve(request), server.serve_stream(request)
        assert dom.empty and stream.empty
        assert_responses_match(dom, stream)


class TestQueryParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_query_over_streamed_view(self, seed):
        document = synthetic_document(160, seed=seed, uri=URI)
        instance, schema = synthetic_authorizations(
            document, count=8, seed=seed
        )
        server = build_server(document, instance, schema)
        for xpath in ("//record", "//section/@kind", "//entry"):
            request = QueryRequest(requester(), URI, xpath)
            dom = server.query(request)
            stream = server.query(request, stream=True)
            assert stream.matches == dom.matches
            assert stream.visible_nodes == dom.visible_nodes
            assert stream.total_nodes == dom.total_nodes

    def test_query_over_empty_streamed_view(self):
        server = SecureXMLServer()
        server.publish_document(URI, "<a><b>x</b></a>")
        response = server.query(
            QueryRequest(requester(), URI, "//b"), stream=True
        )
        assert response.ok
        assert response.matches == []


class TestStreamingBehaviour:
    def test_sink_receives_chunks_that_concatenate_to_the_view(self):
        document = synthetic_document(300, uri=URI)
        instance, schema = synthetic_authorizations(document, count=6, seed=1)
        server = build_server(document, instance, schema)
        chunks = []
        response = server.serve_stream(
            AccessRequest(requester(), URI),
            sink=chunks.append,
            chunk_size=256,
        )
        assert response.ok
        assert "".join(chunks) == response.xml_text
        if not response.empty:
            assert len(chunks) > 1  # output left incrementally

    def test_unsupported_path_falls_back_to_dom(self):
        from repro.authz.authorization import Authorization

        server = SecureXMLServer()
        server.publish_document(URI, "<a><b>x</b></a>")
        server.grant(Authorization.build("Public", URI, "+", "R"))
        server.grant(
            Authorization.build("Public", f"{URI}://b/..", "+", "R")
        )
        request = AccessRequest(requester(), URI)
        dom, stream = server.serve(request), server.serve_stream(request)
        assert_responses_match(dom, stream)
        fallback = server.metrics.counter(
            "stream_fallback_total", reason="unsupported-path"
        )
        assert fallback.value >= 1

    def test_stream_metrics_and_spans_are_recorded(self):
        document = synthetic_document(120, uri=URI)
        instance, schema = synthetic_authorizations(document, count=4, seed=2)
        server = build_server(document, instance, schema)
        response = server.serve_stream(AccessRequest(requester(), URI))
        assert response.ok
        assert server.metrics.counter("stream_events_total").value > 0
        assert "stream.pipeline" in response.timings
        assert "stream.compile" in response.timings
        assert "authz.bind" in response.timings

    def test_audit_marks_streamed_requests(self):
        server = SecureXMLServer()
        server.publish_document(URI, "<a><b>x</b></a>")
        server.serve_stream(AccessRequest(requester(), URI))
        entry = list(server.audit)[-1]
        assert "stream" in entry.detail
