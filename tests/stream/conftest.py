"""Fixtures for the streaming-engine test package.

The CI stream job runs this whole package under a deliberately tight
``max_stream_buffer_bytes`` budget (see ``.github/workflows/ci.yml``):
set ``REPRO_STREAM_TIGHT_LIMITS`` to a byte count and every server the
suite constructs with default limits gets that budget instead of the
generous production default. The differential suite then doubles as a
bounded-memory test — byte-parity with the DOM pipeline must hold even
when the engine is only allowed a few KiB of working buffer.

Tests that pass explicit ``limits=`` (the guard-trip tests) are
unaffected.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.limits import DEFAULT_LIMITS


@pytest.fixture(autouse=True)
def _tight_stream_limits(monkeypatch):
    budget = os.environ.get("REPRO_STREAM_TIGHT_LIMITS")
    if not budget:
        yield
        return
    tight = dataclasses.replace(
        DEFAULT_LIMITS, max_stream_buffer_bytes=int(budget)
    )
    monkeypatch.setattr("repro.server.service.DEFAULT_LIMITS", tight)
    yield
