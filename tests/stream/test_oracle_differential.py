"""The bulk-scan reader against the frozen seed per-character reader.

``tests/stream/_seed_reader.py`` is a verbatim snapshot of the reader
before the bulk-scanning rebuild — the per-character oracle. Any
document, chunked any way, must produce the *identical* event list (or
the identical exception type) through both. Hypothesis drives random
documents through random chunk boundaries; a hand-picked hostile corpus
covers entity bombs, deep nesting, invalid characters, and markup
split mid-token.

The oracle is temporary scaffolding: once a release cycle of
production traffic has exercised the rebuilt reader, this file and the
snapshot can be dropped together.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.limits import ResourceLimits
from repro.stream.reader import StreamReader
from tests.stream._seed_reader import SeedStreamReader


def drive(reader_cls, text, cuts, limits=None):
    """Feed *text* split at *cuts*; return ("ok", events) or ("err", type)."""
    reader = reader_cls(limits=limits)
    events = []
    try:
        last = 0
        for cut in cuts:
            events.extend(reader.feed(text[last:cut]))
            last = cut
        events.extend(reader.feed(text[last:]))
        events.extend(reader.close())
        return ("ok", events)
    except Exception as exc:  # noqa: BLE001 - compared, not swallowed
        return ("err", type(exc).__name__, str(exc))


def assert_identical(text, cuts, limits=None):
    expected = drive(SeedStreamReader, text, cuts, limits)
    actual = drive(StreamReader, text, cuts, limits)
    assert actual == expected, (
        f"divergence for {text!r} cut at {cuts}:\n"
        f"  seed: {expected}\n  new:  {actual}"
    )


# -- hypothesis strategies ---------------------------------------------------

NAMES = st.sampled_from(["a", "b", "r2", "x-y", "_n", "André"])
TEXTS = st.sampled_from(
    ["", "t", "  spaced  ", "a&amp;b", "x&#65;", "&#x1F600;", "]]", "]",
     "one]two", "tab\tnl\n", "é€𝄞"]
)
ATTR_VALUES = st.sampled_from(["", "v", "a b", "&lt;x&gt;", "x&#10;y", "'"])


@st.composite
def documents(draw, max_depth=4):
    def element(depth):
        name = draw(NAMES)
        attrs = ""
        for attr in draw(
            st.lists(st.tuples(NAMES, ATTR_VALUES), max_size=2, unique_by=lambda t: t[0])
        ):
            attrs += f' {attr[0]}="{attr[1]}"'
        if depth >= max_depth or draw(st.booleans()):
            return f"<{name}{attrs}/>"
        inner = "".join(
            element(depth + 1) if draw(st.booleans()) else draw(TEXTS)
            for _ in range(draw(st.integers(0, 3)))
        )
        extra = draw(
            st.sampled_from(["", "<!-- c -->", "<?pi d?>", "<![CDATA[<raw>&]]>"])
        )
        return f"<{name}{attrs}>{inner}{extra}</{name}>"

    prolog = draw(
        st.sampled_from(
            ["", '<?xml version="1.0"?>', "<?xml version='1.0' encoding='utf-8'?>\n",
             "<!-- lead -->", '<!DOCTYPE r [<!ENTITY e "ee">]>']
        )
    )
    return prolog + element(0)


@st.composite
def cut_points(draw, length):
    if length < 2:
        return []
    return sorted(draw(st.lists(st.integers(1, length - 1), max_size=6)))


@st.composite
def documents_with_cuts(draw):
    text = draw(documents())
    return text, draw(cut_points(len(text)))


@st.composite
def mutated_with_cuts(draw):
    """Valid documents damaged at a random point — the error paths must
    diverge from the oracle neither in type nor in batching."""
    text = draw(documents())
    pos = draw(st.integers(0, max(0, len(text) - 1)))
    damage = draw(
        st.sampled_from(
            ["<", ">", "&", "&;", "]]>", "--", '"', "\x00", "\x0b", "<!x", "</",
             "<?xml ", "\r"]
        )
    )
    mutated = text[:pos] + damage + text[pos:]
    return mutated, draw(cut_points(len(mutated)))


class TestHypothesisDifferential:
    @settings(max_examples=120, deadline=None)
    @given(documents_with_cuts())
    def test_random_documents_random_chunks(self, case):
        text, cuts = case
        assert_identical(text, cuts)

    @settings(max_examples=120, deadline=None)
    @given(mutated_with_cuts())
    def test_damaged_documents_random_chunks(self, case):
        text, cuts = case
        assert_identical(text, cuts)

    @settings(max_examples=60, deadline=None)
    @given(documents_with_cuts())
    def test_crlf_variant_matches_oracle(self, case):
        text, cuts = case
        crlf = text.replace("\n", "\r\n")
        assert_identical(crlf, [c for c in cuts if c < len(crlf)])


HOSTILE = [
    # entity bomb: expansion guard must trip identically
    (
        '<!DOCTYPE r [<!ENTITY a "xxxxxxxxxx">'
        '<!ENTITY b "&a;&a;&a;&a;&a;&a;&a;&a;&a;&a;">'
        '<!ENTITY c "&b;&b;&b;&b;&b;&b;&b;&b;&b;&b;">]>'
        "<r>&c;&c;&c;&c;&c;&c;&c;&c;&c;&c;</r>"
    ),
    # reference cycle
    '<!DOCTYPE r [<!ENTITY a "&b;"><!ENTITY b "&a;">]><r>&a;</r>',
    # deep nesting
    "".join(f"<n{i}>" for i in range(60))
    + "x"
    + "".join(f"</n{i}>" for i in reversed(range(60))),
    # long text run with hold-back suspects sprinkled in
    "<r>" + ("word ]] & more ]]" + "&amp;") * 50 + "</r>",
    # invalid characters in every construct
    "<r>\x00</r>",
    "<r a='\x01'/>",
    "<r><![CDATA[\x02]]></r>",
    # markup split mid-token is exercised by 1-char chunking below
    "<r><![CDATA[]]]]><![CDATA[>]]></r>",
    '<!DOCTYPE r PUBLIC "p>u" "s>y" [<!ENTITY e "v">]><r>&e;</r>',
    "<r>\r\rmixed\r\n\rendings\r</r>\r",
]


class TestHostileCorpus:
    @pytest.mark.parametrize("doc", HOSTILE, ids=range(len(HOSTILE)))
    def test_one_char_chunks(self, doc):
        assert_identical(doc, list(range(1, len(doc))))

    @pytest.mark.parametrize("doc", HOSTILE, ids=range(len(HOSTILE)))
    def test_whole_string(self, doc):
        assert_identical(doc, [])

    def test_entity_bomb_with_tight_limits(self):
        doc = HOSTILE[0]
        limits = ResourceLimits(max_entity_expansion_chars=500)
        assert_identical(doc, [len(doc) // 2], limits)

    def test_depth_guard_trips_identically(self):
        doc = HOSTILE[2]
        limits = ResourceLimits(max_tree_depth=10)
        assert_identical(doc, [7], limits)

    def test_buffer_guard_trips_identically(self):
        doc = "<r>" + "x" * 200 + "<c/></r>"
        limits = ResourceLimits(max_stream_buffer_bytes=64)
        assert_identical(doc, [50, 100, 150], limits)
