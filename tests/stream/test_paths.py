"""Stream path matchers against the reference XPath evaluator.

For every path shape the authorization generator produces (plus unions,
wildcards and the bare-URI root denotation), walking a document while
advancing the compiled :class:`StreamPattern` must select exactly the
elements/attributes the DOM evaluator selects.
"""

import pytest

from repro.stream.paths import StreamPathUnsupported, compile_stream_pattern
from repro.workloads.generator import synthetic_document
from repro.xml.nodes import Attribute, Element
from repro.xml.traversal import node_path
from repro.xpath.evaluator import select

PATHS = [
    "//record",
    "//section",
    "//*",
    "/archive",
    "/archive/section",
    '//record[./@kind="private"]',
    '//record[@kind="private"]',
    '//item[./@kind != "public"]',
    "//entry[@id]",
    "//section[@*]",
    "//record/@kind",
    "//record/@*",
    "//archive//item",
    "//section//entry//title",
    "//record | //entry",
    ".//record",
    "//record/text()",
    "//node()",
]

UNSUPPORTED = [
    "//record/..",
    "//record/ancestor::archive",
    "//record[1]",
    "//record[title]",
    "count(//record)",
    "//record[@kind]/@id/..",
    '//record[text()="x"]',
]


def stream_select(pattern, document):
    """Walk the tree advancing *pattern*; collect selected nodes."""
    elements, attributes = [], []

    def visit(element: Element, states) -> None:
        attrs = {name: a.value for name, a in element.attributes.items()}
        states = pattern.advance(states, element.name, attrs)
        if pattern.accepts_element(states):
            elements.append(element)
        for name, attr in element.attributes.items():
            if pattern.matches_attribute(states, name):
                attributes.append(attr)
        for child in element.children:
            if isinstance(child, Element):
                visit(child, states)

    visit(document.root, pattern.initial())
    return elements, attributes


def paths(nodes):
    return sorted(node_path(node) for node in nodes)


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_matcher_agrees_with_evaluator(path, seed):
    document = synthetic_document(200, seed=seed)
    pattern = compile_stream_pattern(path)
    got_elements, got_attributes = stream_select(pattern, document)
    expected = select(path, document)
    assert paths(got_elements) == paths(
        [n for n in expected if isinstance(n, Element)]
    )
    assert paths(got_attributes) == paths(
        [n for n in expected if isinstance(n, Attribute)]
    )


def test_bare_uri_selects_the_root_element():
    document = synthetic_document(60)
    pattern = compile_stream_pattern(None)
    elements, attributes = stream_select(pattern, document)
    assert elements == [document.root]
    assert attributes == []


@pytest.mark.parametrize("path", UNSUPPORTED)
def test_unstreamable_paths_raise(path):
    with pytest.raises(StreamPathUnsupported):
        compile_stream_pattern(path)


def test_compilation_is_cached():
    first = compile_stream_pattern("//record")
    second = compile_stream_pattern("//record")
    assert first is second
