"""Tests for the fault-injection harness and the retry wrapper."""

import pytest

from repro.server.retry import RetryPolicy, retry_call
from repro.testing.faults import FAULTS, FaultInjector, InjectedFault


class TestFaultInjector:
    def test_unarmed_trip_is_a_no_op(self):
        injector = FaultInjector()
        injector.trip("anything")  # nothing armed -> free

    def test_always_fail(self):
        injector = FaultInjector()
        injector.arm("cache.get")
        for _ in range(3):
            with pytest.raises(InjectedFault, match="cache.get"):
                injector.trip("cache.get")
        assert injector.fired("cache.get") == 3

    def test_fail_n_times_then_recover(self):
        injector = FaultInjector()
        injector.arm("persistence.write", times=2)
        with pytest.raises(InjectedFault):
            injector.trip("persistence.write")
        with pytest.raises(InjectedFault):
            injector.trip("persistence.write")
        injector.trip("persistence.write")  # budget spent -> passes
        assert injector.fired("persistence.write") == 2

    def test_custom_exception_factory(self):
        injector = FaultInjector()
        injector.arm("persistence.read", exception=lambda p, n: OSError(f"{p}#{n}"))
        with pytest.raises(OSError, match="persistence.read#1"):
            injector.trip("persistence.read")

    def test_other_points_unaffected(self):
        injector = FaultInjector()
        injector.arm("cache.get")
        injector.trip("cache.put")  # different point -> no failure

    def test_injected_context_manager_disarms(self):
        injector = FaultInjector()
        with injector.injected("repository.read"):
            assert injector.armed("repository.read")
            with pytest.raises(InjectedFault):
                injector.trip("repository.read")
        assert not injector.armed("repository.read")
        injector.trip("repository.read")

    def test_reset_clears_counters(self):
        injector = FaultInjector()
        injector.arm("cache.get", times=1)
        with pytest.raises(InjectedFault):
            injector.trip("cache.get")
        injector.reset()
        assert injector.fired("cache.get") == 0
        assert not injector.armed("cache.get")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("x", times=0)

    def test_global_injector_exists(self):
        assert isinstance(FAULTS, FaultInjector)

    def test_occurrence_numbering(self):
        injector = FaultInjector()
        injector.arm("p")
        with pytest.raises(InjectedFault) as first:
            injector.trip("p")
        with pytest.raises(InjectedFault) as second:
            injector.trip("p")
        assert first.value.occurrence == 1
        assert second.value.occurrence == 2


class TestRetryPolicy:
    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(attempts=4, base_delay=0.01, multiplier=2.0, max_delay=1.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.01, 0.02, 0.04]

    def test_max_delay_caps_the_schedule(self):
        policy = RetryPolicy(attempts=10, base_delay=0.5, multiplier=10.0, max_delay=2.0)
        assert policy.delay(5) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetryCall:
    def test_success_first_try(self):
        assert retry_call(lambda: 42) == 42

    def test_recovers_after_transient_failures(self):
        calls = []
        waits = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("busy")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.01, multiplier=2.0)
        assert retry_call(flaky, policy=policy, sleep=waits.append) == "ok"
        assert len(calls) == 3
        assert waits == [0.01, 0.02]

    def test_exhausted_policy_reraises_original(self):
        def always():
            raise OSError("disk on fire")

        with pytest.raises(OSError, match="disk on fire"):
            retry_call(always, policy=RetryPolicy(attempts=2), sleep=lambda _: None)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(broken, policy=RetryPolicy(attempts=5), sleep=lambda _: None)
        assert len(calls) == 1  # no retry for non-transient errors

    def test_on_retry_observer(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError("once")
            return "ok"

        retry_call(
            flaky,
            policy=RetryPolicy(attempts=2),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "once")]

    def test_retries_injected_faults_when_listed(self):
        injector = FaultInjector()
        injector.arm("persistence.write", times=1)

        def attempt():
            injector.trip("persistence.write")
            return "written"

        result = retry_call(
            attempt,
            policy=RetryPolicy(attempts=2),
            retry_on=(OSError, InjectedFault),
            sleep=lambda _: None,
        )
        assert result == "written"


class TestArmAfter:
    def test_after_lets_first_trips_pass(self):
        injector = FaultInjector()
        injector.arm("repository.read", times=2, after=3)
        for _ in range(3):
            injector.trip("repository.read")  # skip budget
        with pytest.raises(InjectedFault):
            injector.trip("repository.read")
        with pytest.raises(InjectedFault):
            injector.trip("repository.read")
        injector.trip("repository.read")  # times budget spent
        assert injector.fired("repository.read") == 2

    def test_after_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("x", after=-1)


class TestFaultPlan:
    """The serializable plan that crosses the pool's IPC boundary."""

    def _plan(self):
        from repro.testing.faults import FaultPlan, FaultSpec

        return FaultPlan(
            (
                FaultSpec("pool.worker.crash", times=1, after=2, worker=1),
                FaultSpec("repository.read", times=None),
            )
        )

    def test_json_round_trip(self):
        from repro.testing.faults import FaultPlan

        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_pickle_round_trip(self):
        import pickle

        plan = self._plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_from_dict_ignores_unknown_keys(self):
        from repro.testing.faults import FaultPlan, FaultSpec

        data = {"specs": [{"point": "cache.get", "times": 3, "future_field": 1}]}
        assert FaultPlan.from_dict(data) == FaultPlan(
            (FaultSpec("cache.get", times=3),)
        )

    def test_arm_into_scopes_by_worker(self):
        plan = self._plan()
        worker1 = FaultInjector()
        assert plan.arm_into(worker1, worker=1) == 2
        worker0 = FaultInjector()
        assert plan.arm_into(worker0, worker=0) == 1  # crash spec filtered
        assert worker0.armed("repository.read")
        assert not worker0.armed("pool.worker.crash")

    def test_armed_plan_honours_times_and_after(self):
        injector = FaultInjector()
        self._plan().arm_into(injector, worker=1)
        injector.trip("pool.worker.crash")
        injector.trip("pool.worker.crash")  # after=2 -> first two pass
        with pytest.raises(InjectedFault):
            injector.trip("pool.worker.crash")
        injector.trip("pool.worker.crash")  # times=1 spent
