"""Tests for the resource-limit and deadline primitives."""

import pytest

from repro.errors import DeadlineExceeded, LimitExceeded, ResourceError
from repro.limits import DEFAULT_LIMITS, UNLIMITED, Deadline, ResourceLimits


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.unbounded
        assert not deadline.expired
        assert deadline.remaining() is None
        deadline.check()  # no-op

    def test_shared_unbounded_singleton(self):
        assert Deadline.UNBOUNDED.unbounded
        Deadline.UNBOUNDED.check()

    def test_expired_deadline_raises(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="deadline"):
            deadline.check()

    def test_check_names_the_stage(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded, match="tree labeling"):
            deadline.check("tree labeling")

    def test_generous_deadline_passes(self):
        deadline = Deadline.after(3600.0)
        assert not deadline.expired
        deadline.check()
        assert 0.0 <= deadline.elapsed()
        assert 0.0 < deadline.remaining() <= 3600.0

    def test_carries_elapsed_and_budget(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check()
        assert excinfo.value.budget == 0.0
        assert excinfo.value.elapsed >= 0.0

    def test_deadline_exceeded_is_resource_error(self):
        assert issubclass(DeadlineExceeded, ResourceError)
        assert issubclass(LimitExceeded, ResourceError)


class TestResourceLimits:
    def test_defaults_are_bounded(self):
        assert DEFAULT_LIMITS.max_input_bytes is not None
        assert DEFAULT_LIMITS.max_tree_depth is not None
        assert DEFAULT_LIMITS.max_entity_expansion_chars is not None
        assert DEFAULT_LIMITS.deadline_seconds is None  # opt-in

    def test_unlimited_disables_every_cap(self):
        assert all(
            getattr(UNLIMITED, field) is None
            for field in (
                "max_input_bytes",
                "max_tree_depth",
                "max_node_count",
                "max_entity_expansion_chars",
                "max_entity_expansion_depth",
                "max_entity_expansions",
                "max_xpath_steps",
                "deadline_seconds",
            )
        )

    def test_deadline_from_limits(self):
        assert DEFAULT_LIMITS.deadline() is Deadline.UNBOUNDED
        armed = DEFAULT_LIMITS.with_deadline(0.0).deadline()
        assert not armed.unbounded
        assert armed.expired

    def test_with_deadline_is_a_copy(self):
        bounded = DEFAULT_LIMITS.with_deadline(1.5)
        assert bounded.deadline_seconds == 1.5
        assert DEFAULT_LIMITS.deadline_seconds is None
        assert bounded.max_tree_depth == DEFAULT_LIMITS.max_tree_depth

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_LIMITS.max_tree_depth = 1  # type: ignore[misc]

    def test_importable_from_package_root(self):
        import repro

        assert repro.ResourceLimits is ResourceLimits
        assert repro.Deadline is Deadline
        assert repro.DEFAULT_LIMITS is DEFAULT_LIMITS
        assert repro.LimitExceeded is LimitExceeded
        assert repro.DeadlineExceeded is DeadlineExceeded
