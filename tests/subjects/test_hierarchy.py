"""Tests for the authorization subject hierarchy ASH (Definition 1)."""

import pytest

from repro.errors import SubjectError
from repro.subjects.hierarchy import Requester, SubjectHierarchy, SubjectSpec
from repro.subjects.users import Directory


@pytest.fixture
def hierarchy():
    directory = Directory()
    directory.add_group("CS")
    directory.add_group("Foreign")
    directory.add_group("Grad", parents=["CS"])
    directory.add_user("alice", groups=["CS"])
    directory.add_user("tom", groups=["Foreign"])
    return SubjectHierarchy(directory)


def spec(ug, ip="*", sym="*"):
    return SubjectSpec.parse(ug, ip, sym)


class TestSubjectSpec:
    def test_parse_and_unparse(self):
        s = spec("Sam", "*", "*.lab.com")
        assert s.unparse() == "<Sam,*.*.*.*,*.lab.com>"

    def test_empty_user_group_rejected(self):
        with pytest.raises(SubjectError):
            SubjectSpec.parse("  ")

    def test_equality_and_hash(self):
        assert spec("A") == spec("A")
        assert spec("A") != spec("B")
        assert len({spec("A"), spec("A")}) == 1


class TestDominates:
    def test_group_component(self, hierarchy):
        assert hierarchy.dominates(spec("alice"), spec("CS"))
        assert hierarchy.dominates(spec("Grad"), spec("CS"))
        assert not hierarchy.dominates(spec("CS"), spec("Grad"))

    def test_location_components(self, hierarchy):
        lower = spec("CS", "151.100.30.8", "tweety.lab.com")
        upper = spec("CS", "151.100.*", "*.lab.com")
        assert hierarchy.dominates(lower, upper)
        assert not hierarchy.dominates(upper, lower)

    def test_all_components_must_dominate(self, hierarchy):
        lower = spec("alice", "151.100.30.8", "x.other.org")
        upper = spec("CS", "151.100.*", "*.lab.com")
        assert not hierarchy.dominates(lower, upper)  # symbolic fails

    def test_reflexive(self, hierarchy):
        s = spec("CS", "1.2.3.4", "a.b.c")
        assert hierarchy.dominates(s, s)
        assert not hierarchy.strictly_dominates(s, s)

    def test_strict_dominance(self, hierarchy):
        assert hierarchy.strictly_dominates(spec("alice"), spec("CS"))
        # Same group, more specific location.
        assert hierarchy.strictly_dominates(
            spec("CS", "1.2.3.4", "*"), spec("CS", "*", "*")
        )

    def test_comparable(self, hierarchy):
        assert hierarchy.comparable(spec("alice"), spec("CS"))
        assert not hierarchy.comparable(spec("CS"), spec("Foreign"))


class TestAppliesTo:
    def test_group_membership_applies(self, hierarchy):
        requester = Requester("tom", "130.100.50.8", "infosys.bld1.it")
        assert hierarchy.applies_to(spec("Foreign"), requester)
        assert hierarchy.applies_to(spec("Public"), requester)
        assert not hierarchy.applies_to(spec("CS"), requester)

    def test_location_filtering(self, hierarchy):
        requester = Requester("alice", "130.89.56.8", "pc.lab.com")
        assert hierarchy.applies_to(spec("CS", "130.89.56.8", "*"), requester)
        assert hierarchy.applies_to(spec("CS", "*", "*.lab.com"), requester)
        assert not hierarchy.applies_to(spec("CS", "10.0.0.1", "*"), requester)
        assert not hierarchy.applies_to(spec("CS", "*", "*.it"), requester)

    def test_specific_user_spec(self, hierarchy):
        requester = Requester("alice", "1.2.3.4", "a.example.org")
        assert hierarchy.applies_to(spec("alice"), requester)
        assert not hierarchy.applies_to(spec("tom"), requester)

    def test_unknown_user_only_matches_public_or_literal(self, hierarchy):
        requester = Requester("stranger", "1.2.3.4", "a.example.org")
        assert hierarchy.applies_to(spec("Public"), requester)
        assert hierarchy.applies_to(spec("stranger"), requester)
        assert not hierarchy.applies_to(spec("CS"), requester)

    def test_paper_example_subjects(self, hierarchy):
        tom = Requester("tom", "130.100.50.8", "infosys.bld1.it")
        assert hierarchy.applies_to(spec("Public", "*", "*.it"), tom)
        assert not hierarchy.applies_to(spec("Admin", "130.89.56.8", "*"), tom)


class TestMostSpecific:
    def test_filters_dominated(self, hierarchy):
        specs = [spec("CS"), spec("alice"), spec("Public")]
        result = hierarchy.most_specific(specs)
        assert result == [spec("alice")]

    def test_keeps_incomparable(self, hierarchy):
        specs = [spec("CS"), spec("Foreign")]
        assert set(
            s.user_group for s in hierarchy.most_specific(specs)
        ) == {"CS", "Foreign"}

    def test_location_specificity(self, hierarchy):
        specs = [spec("CS", "*", "*"), spec("CS", "1.2.3.4", "*")]
        result = hierarchy.most_specific(specs)
        assert result == [spec("CS", "1.2.3.4", "*")]

    def test_duplicate_specs_survive(self, hierarchy):
        # Equal subjects do not strictly dominate each other.
        specs = [spec("CS"), spec("CS")]
        assert len(hierarchy.most_specific(specs)) == 2


class TestRequester:
    def test_as_spec_is_minimal(self, hierarchy):
        requester = Requester("alice", "10.0.0.1", "pc.lab.com")
        as_spec = requester.as_spec()
        assert as_spec.ip.is_concrete
        assert as_spec.symbolic.is_concrete

    def test_str(self):
        requester = Requester("alice", "10.0.0.1", "pc.lab.com")
        assert "alice" in str(requester)
        assert "10.0.0.1" in str(requester)

    def test_defaults_anonymous(self):
        assert Requester().user == "anonymous"
