"""Tests for the user/group directory."""

import pytest

from repro.errors import SubjectError
from repro.subjects.users import ANONYMOUS_USER, PUBLIC_GROUP, Directory


@pytest.fixture
def directory():
    d = Directory()
    d.add_group("CS")
    d.add_group("Foreign")
    d.add_group("Grad", parents=["CS"])
    d.add_user("alice", groups=["CS"])
    d.add_user("bob", groups=["Grad", "Foreign"])
    return d


class TestBasics:
    def test_builtins_exist(self, directory):
        assert directory.is_group(PUBLIC_GROUP)
        assert directory.is_user(ANONYMOUS_USER)

    def test_users_and_groups_listings(self, directory):
        assert "alice" in list(directory.users())
        assert "CS" in list(directory.groups())

    def test_everyone_in_public(self, directory):
        assert directory.is_member("alice", PUBLIC_GROUP)
        assert directory.is_member(ANONYMOUS_USER, PUBLIC_GROUP)

    def test_duplicate_registration_is_idempotent(self, directory):
        directory.add_user("alice")
        directory.add_group("CS")

    def test_user_group_name_clash_rejected(self, directory):
        with pytest.raises(SubjectError, match="already exists"):
            directory.add_group("alice")
        with pytest.raises(SubjectError, match="already exists"):
            directory.add_user("CS")

    def test_empty_name_rejected(self, directory):
        with pytest.raises(SubjectError):
            directory.add_user("  ")


class TestMembership:
    def test_direct_membership(self, directory):
        assert directory.is_member("alice", "CS")
        assert not directory.is_member("alice", "Foreign")

    def test_transitive_membership(self, directory):
        assert directory.is_member("bob", "CS")  # bob -> Grad -> CS

    def test_reflexive_membership(self, directory):
        assert directory.is_member("CS", "CS")
        assert not directory.is_member("CS", "CS", strict=True)

    def test_group_in_group(self, directory):
        assert directory.is_member("Grad", "CS")
        assert not directory.is_member("CS", "Grad")

    def test_unknown_subject_not_member(self, directory):
        assert not directory.is_member("ghost", "CS")

    def test_expanded_groups(self, directory):
        closure = directory.expanded_groups("bob")
        assert {"bob", "Grad", "Foreign", "CS", PUBLIC_GROUP} <= closure

    def test_expanded_groups_unknown_raises(self, directory):
        with pytest.raises(SubjectError):
            directory.expanded_groups("ghost")

    def test_members_recursive(self, directory):
        assert directory.members_recursive("CS") == frozenset({"alice", "bob"})
        assert directory.members_recursive(PUBLIC_GROUP) >= {"alice", "bob"}

    def test_direct_members(self, directory):
        assert "Grad" in directory.direct_members("CS")
        assert "bob" not in directory.direct_members("CS")


class TestMutationRules:
    def test_add_member_to_unknown_group(self, directory):
        with pytest.raises(SubjectError, match="unknown group"):
            directory.add_member("NoSuch", "alice")

    def test_add_unknown_member(self, directory):
        with pytest.raises(SubjectError, match="unknown subject"):
            directory.add_member("CS", "ghost")

    def test_self_membership_rejected(self, directory):
        with pytest.raises(SubjectError, match="cannot contain itself"):
            directory.add_member("CS", "CS")

    def test_cycle_rejected(self, directory):
        with pytest.raises(SubjectError, match="cycle"):
            directory.add_member("Grad", "CS")  # CS already contains Grad

    def test_long_cycle_rejected(self, directory):
        directory.add_group("A")
        directory.add_group("B", parents=["A"])
        directory.add_group("C", parents=["B"])
        with pytest.raises(SubjectError, match="cycle"):
            directory.add_member("C", "A")

    def test_diamond_allowed(self, directory):
        # Non-disjoint nested groups are explicitly allowed by the paper.
        directory.add_group("X")
        directory.add_group("Y")
        directory.add_group("Z", parents=["X", "Y"])
        assert directory.is_member("Z", "X")
        assert directory.is_member("Z", "Y")

    def test_closure_cache_invalidated_on_mutation(self, directory):
        assert not directory.is_member("alice", "Foreign")
        directory.add_member("Foreign", "alice")
        assert directory.is_member("alice", "Foreign")


class TestEnsureUser:
    def test_none_maps_to_anonymous(self, directory):
        assert directory.ensure_user(None) == ANONYMOUS_USER

    def test_known_user_passes(self, directory):
        assert directory.ensure_user("alice") == "alice"

    def test_unknown_user_rejected(self, directory):
        with pytest.raises(SubjectError):
            directory.ensure_user("ghost")
