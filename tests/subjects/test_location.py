"""Tests for IP and symbolic location patterns (paper, Section 3)."""

import pytest

from repro.errors import PatternError
from repro.subjects.location import ANY_IP, ANY_SYMBOLIC, IPPattern, SymbolicPattern


class TestIPPatternParsing:
    def test_concrete_address(self):
        pattern = IPPattern.parse("150.100.30.8")
        assert pattern.is_concrete
        assert str(pattern) == "150.100.30.8"

    def test_short_form_padded(self):
        # '151.100.*' is equivalent to '151.100.*.*' (paper, Section 3).
        assert IPPattern.parse("151.100.*") == IPPattern.parse("151.100.*.*")

    def test_bare_star(self):
        assert IPPattern.parse("*") == ANY_IP

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "151.*.30.8",        # wildcard must be right-most
            "*.100.30.8",
            "151.100.30.8.9",    # too many components
            "151.100.300.8",     # component out of range
            "151.100.x.8",       # non-numeric
            "151.100",           # short form must end with '*'
        ],
    )
    def test_invalid_patterns(self, bad):
        with pytest.raises(PatternError):
            IPPattern.parse(bad)


class TestIPPatternOrder:
    def test_concrete_matches_itself(self):
        pattern = IPPattern.parse("150.100.30.8")
        assert pattern.matches("150.100.30.8")
        assert not pattern.matches("150.100.30.9")

    def test_network_pattern_matches_members(self):
        pattern = IPPattern.parse("151.100.*")
        assert pattern.matches("151.100.30.8")
        assert pattern.matches("151.100.0.1")
        assert not pattern.matches("151.101.30.8")

    def test_star_matches_everything(self):
        assert ANY_IP.matches("1.2.3.4")

    def test_dominated_by_partial_order(self):
        concrete = IPPattern.parse("151.100.30.8")
        network = IPPattern.parse("151.100.*")
        assert concrete.dominated_by(network)
        assert not network.dominated_by(concrete)
        assert network.dominated_by(ANY_IP)
        assert concrete.dominated_by(concrete)  # reflexive

    def test_incomparable_patterns(self):
        a = IPPattern.parse("151.100.*")
        b = IPPattern.parse("151.101.*")
        assert not a.dominated_by(b)
        assert not b.dominated_by(a)

    def test_specificity(self):
        assert IPPattern.parse("1.2.3.4").specificity() == 4
        assert IPPattern.parse("1.2.*").specificity() == 2
        assert ANY_IP.specificity() == 0

    def test_matches_requires_concrete_address(self):
        with pytest.raises(PatternError):
            IPPattern.parse("151.100.*").matches("151.100.*")

    def test_matches_non_ip_is_false(self):
        assert not IPPattern.parse("151.100.*").matches("not-an-ip")


class TestSymbolicPatternParsing:
    def test_concrete_host(self):
        pattern = SymbolicPattern.parse("tweety.lab.com")
        assert pattern.is_concrete

    def test_case_normalized(self):
        assert SymbolicPattern.parse("Lab.COM") == SymbolicPattern.parse("lab.com")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "lab.*",          # wildcard must be left-most
            "a.*.com",
            "lab..com",       # empty component
            "la b.com",       # invalid character
        ],
    )
    def test_invalid_patterns(self, bad):
        with pytest.raises(PatternError):
            SymbolicPattern.parse(bad)


class TestSymbolicPatternOrder:
    def test_domain_pattern_matches_hosts(self):
        pattern = SymbolicPattern.parse("*.it")
        assert pattern.matches("infosys.bld1.it")   # the paper's Example 2
        assert pattern.matches("host.it")
        assert not pattern.matches("it")            # '*' is one or more labels
        assert not pattern.matches("host.com")

    def test_nested_domain(self):
        pattern = SymbolicPattern.parse("*.lab.com")
        assert pattern.matches("tweety.lab.com")
        assert pattern.matches("a.b.lab.com")
        assert not pattern.matches("lab.com")

    def test_star_matches_everything(self):
        assert ANY_SYMBOLIC.matches("any.host.example")

    def test_dominated_by(self):
        host = SymbolicPattern.parse("tweety.lab.com")
        domain = SymbolicPattern.parse("*.lab.com")
        top = SymbolicPattern.parse("*.com")
        assert host.dominated_by(domain)
        assert domain.dominated_by(top)
        assert host.dominated_by(top)
        assert not top.dominated_by(domain)
        assert host.dominated_by(ANY_SYMBOLIC)

    def test_inner_wildcard_exactly_one_label(self):
        pattern = SymbolicPattern.parse("*.*.lab.com")
        assert pattern.matches("a.b.lab.com")
        assert pattern.matches("a.b.c.lab.com")
        assert not pattern.matches("b.lab.com")  # needs >= 2 extra labels

    def test_specificity(self):
        assert SymbolicPattern.parse("a.b.com").specificity() == 3
        assert SymbolicPattern.parse("*.com").specificity() == 1
        assert ANY_SYMBOLIC.specificity() == 0

    def test_matches_requires_concrete(self):
        with pytest.raises(PatternError):
            SymbolicPattern.parse("*.com").matches("*.lab.com")
