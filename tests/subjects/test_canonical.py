"""Property tests for subject canonicalization (effective classes).

The contract under test (``repro.subjects.canonical``):

- **Soundness**: equal :class:`EffectiveClass` keys ⇒ identical
  applicable-authorization sets for every URI and the keyed action.
  Cached views/plans shared by class never over-share.
- **Contrapositive**: requesters whose permissions differ anywhere
  never collide on one class key.
- **Collapse**: requesters that only differ in universe-irrelevant ways
  (login name within the same groups, machine outside referenced
  patterns, extra unreferenced credentials) share one class.
"""

from hypothesis import given, settings, strategies as st

from repro.authz.authorization import Authorization
from repro.authz.restrictions import CredentialClause
from repro.authz.store import AuthorizationStore
from repro.subjects.canonical import EffectiveClass
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.subjects.users import PUBLIC_GROUP, Directory

URIS = ("http://h/a.xml", "http://h/b.xml")
ACTIONS = ("read", "write")

_GROUPS = ("Staff", "Medical", "Admin", "Nurses")
_USERS = ("alice", "bob", "carol", "dave")
_IPS = ("10.0.0.1", "10.0.0.2", "150.100.30.8", "192.168.7.9")
_HOSTS = ("a.lab.com", "b.lab.com", "x.hospital.com", "outside.example")
_IP_PATTERNS = ("*", "10.0.0.*", "150.100.*", "10.0.0.1")
_SN_PATTERNS = ("*", "*.lab.com", "*.hospital.com", "a.lab.com")
_CLAUSES = (
    CredentialClause("role", "=", "physician"),
    CredentialClause("level", ">=", "3"),
    CredentialClause("badge", "present", ""),
)


@st.composite
def directories(draw):
    directory = Directory()
    for group in _GROUPS:
        directory.add_group(group)
    # Random nested-group edges (acyclic by index order).
    for i, group in enumerate(_GROUPS):
        for parent in _GROUPS[:i]:
            if draw(st.booleans()):
                directory.add_member(parent, group)
    for user in _USERS:
        memberships = draw(
            st.sets(st.sampled_from(_GROUPS), max_size=len(_GROUPS))
        )
        directory.add_user(user, tuple(sorted(memberships)))
    return directory


@st.composite
def stores(draw, hierarchy):
    store = AuthorizationStore(hierarchy)
    count = draw(st.integers(min_value=0, max_value=8))
    for _ in range(count):
        subject = (
            draw(st.sampled_from(_GROUPS + _USERS + (PUBLIC_GROUP,))),
            draw(st.sampled_from(_IP_PATTERNS)),
            draw(st.sampled_from(_SN_PATTERNS)),
        )
        clauses = draw(
            st.sets(st.sampled_from(_CLAUSES), max_size=2).map(tuple)
        )
        store.add(
            Authorization.build(
                subject,
                f"{draw(st.sampled_from(URIS))}://record",
                draw(st.sampled_from("+-")),
                draw(st.sampled_from(("R", "L"))),
                action=draw(st.sampled_from(ACTIONS)),
                credentials=clauses,
            )
        )
    return store


@st.composite
def requesters(draw):
    creds = draw(
        st.sets(
            st.sampled_from(
                (
                    ("role", "physician"),
                    ("role", "clerk"),
                    ("level", "5"),
                    ("level", "1"),
                    ("badge", "yes"),
                )
            ),
            max_size=3,
        )
    )
    # Dedup by key: Requester.credential_map is a dict.
    cred_map = {}
    for key, value in sorted(creds):
        cred_map[key] = value
    return Requester(
        user=draw(st.sampled_from(_USERS + ("mallory", "unknown-visitor"))),
        ip=draw(st.sampled_from(_IPS)),
        hostname=draw(st.sampled_from(_HOSTS)),
        credentials=tuple(sorted(cred_map.items())),
    )


def permissions_of(store, requester, action):
    """The full applicability verdict, URI by URI (time-blind)."""
    return {
        uri: tuple(store.applicable(requester, uri, action=action, at=None))
        for uri in URIS
    }


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_equal_class_implies_identical_permissions(data):
    directory = data.draw(directories())
    hierarchy = SubjectHierarchy(directory)
    store = data.draw(stores(hierarchy))
    first = data.draw(requesters())
    second = data.draw(requesters())
    for action in ACTIONS:
        same_class = store.effective_class(
            first, action=action
        ) == store.effective_class(second, action=action)
        same_permissions = permissions_of(
            store, first, action
        ) == permissions_of(store, second, action)
        # Soundness: equal keys never over-share...
        if same_class:
            assert same_permissions, (
                f"class collision with differing permissions: "
                f"{first} vs {second} for {action}"
            )
        # ...which is exactly: distinct permissions never collide.
        if not same_permissions:
            assert not same_class


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_class_is_stable_for_one_requester(data):
    directory = data.draw(directories())
    hierarchy = SubjectHierarchy(directory)
    store = data.draw(stores(hierarchy))
    requester = data.draw(requesters())
    first = store.effective_class(requester, action="read")
    second = store.effective_class(requester, action="read")
    assert first == second
    assert hash(first) == hash(second)
    assert isinstance(first, EffectiveClass)


def test_equivalent_requesters_collapse_to_one_class():
    directory = Directory()
    directory.add_group("Staff")
    for name in ("alice", "amy", "ann"):
        directory.add_user(name, ("Staff",))
    directory.add_user("eve")
    hierarchy = SubjectHierarchy(directory)
    store = AuthorizationStore(hierarchy)
    store.add(
        Authorization.build("Staff", "http://h/a.xml://record", "+", "R")
    )

    classes = {
        store.effective_class(
            Requester(user=name, ip="10.0.0.7", hostname="h.lab.com")
        )
        for name in ("alice", "amy", "ann")
    }
    assert len(classes) == 1
    # eve is not Staff: different permissions, different class.
    assert store.effective_class(Requester(user="eve")) not in classes


def test_universe_irrelevant_differences_do_not_split():
    directory = Directory()
    directory.add_group("Staff")
    directory.add_user("alice", ("Staff",))
    hierarchy = SubjectHierarchy(directory)
    store = AuthorizationStore(hierarchy)
    store.add(
        Authorization.build(
            ("Staff", "10.*", "*"), "http://h/a.xml://record", "+", "R"
        )
    )
    base = Requester(user="alice", ip="10.0.0.1", hostname="a.lab.com")
    # Different machine inside the same pattern, different hostname,
    # unreferenced credentials: all invisible to every authorization.
    twins = (
        Requester(user="alice", ip="10.9.9.9", hostname="b.lab.com"),
        base.with_credentials(shoe_size="44"),
    )
    reference = store.effective_class(base)
    for twin in twins:
        assert store.effective_class(twin) == reference
    # A machine outside the referenced pattern changes permissions and
    # therefore the class.
    outsider = Requester(user="alice", ip="192.168.0.1", hostname="a.lab.com")
    assert store.effective_class(outsider) != reference


def test_unknown_users_share_the_public_class_per_name():
    directory = Directory()
    directory.add_user("alice")
    hierarchy = SubjectHierarchy(directory)
    store = AuthorizationStore(hierarchy)
    store.add(
        Authorization.build(
            PUBLIC_GROUP, "http://h/a.xml://record", "+", "R"
        )
    )
    stranger = store.effective_class(Requester(user="mallory"))
    same_stranger = store.effective_class(Requester(user="mallory"))
    assert stranger == same_stranger
    # Unknown users match only {name, Public}; the universe references
    # Public alone, so all strangers (and alice) intersect to {Public}.
    other = store.effective_class(Requester(user="trudy"))
    assert other == stranger


def test_action_scoped_universe_ignores_other_actions():
    directory = Directory()
    directory.add_group("Staff")
    directory.add_user("alice", ("Staff",))
    directory.add_user("amy", ("Staff",))
    hierarchy = SubjectHierarchy(directory)
    store = AuthorizationStore(hierarchy)
    store.add(
        Authorization.build("Staff", "http://h/a.xml://record", "+", "R")
    )
    # A write-only grant naming alice must not split the *read* classes.
    store.add(
        Authorization.build(
            "alice", "http://h/a.xml://record", "+", "R", action="write"
        )
    )
    alice = Requester(user="alice")
    amy = Requester(user="amy")
    assert store.effective_class(alice, action="read") == store.effective_class(
        amy, action="read"
    )
    assert store.effective_class(
        alice, action="write"
    ) != store.effective_class(amy, action="write")
