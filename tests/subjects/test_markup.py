"""Tests for the subject-directory XML markup."""

import pytest

from repro.errors import SubjectError, XACLError
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.subjects.markup import DIRECTORY_DTD, parse_directory, serialize_directory
from repro.subjects.users import Directory
from repro.xml.parser import parse_document

SAMPLE = """\
<directory>
  <group name="Staff"/>
  <group name="Clinical" in="Staff"/>
  <user name="alice" in="Clinical"/>
  <user name="bob" in="Staff Clinical"/>
  <user name="guest"/>
</directory>
"""


class TestParsing:
    def test_groups_and_memberships(self):
        directory = parse_directory(SAMPLE)
        assert directory.is_group("Staff")
        assert directory.is_member("Clinical", "Staff")
        assert directory.is_member("alice", "Staff")  # transitive
        assert directory.is_member("bob", "Clinical")
        assert directory.is_user("guest")

    def test_order_independence(self):
        shuffled = (
            "<directory>"
            '<user name="alice" in="Clinical"/>'
            '<group name="Clinical" in="Staff"/>'
            '<group name="Staff"/>'
            "</directory>"
        )
        directory = parse_directory(shuffled)
        assert directory.is_member("alice", "Staff")

    def test_into_existing_directory(self):
        base = Directory()
        base.add_group("Existing")
        parse_directory('<directory><user name="x" in="Existing"/></directory>', base)
        assert base.is_member("x", "Existing")

    def test_everyone_still_in_public(self):
        directory = parse_directory(SAMPLE)
        assert directory.is_member("guest", "Public")

    @pytest.mark.parametrize(
        "bad,match",
        [
            ("<notdirectory/>", "root element"),
            ("<directory><thing/></directory>", "unexpected element"),
            ("<directory><group/></directory>", "name attribute"),
        ],
    )
    def test_malformed(self, bad, match):
        with pytest.raises(XACLError, match=match):
            parse_directory(bad)

    def test_unknown_parent_rejected(self):
        with pytest.raises(SubjectError, match="unknown group"):
            parse_directory('<directory><user name="x" in="Ghost"/></directory>')

    def test_cycle_rejected(self):
        with pytest.raises(SubjectError, match="cycle"):
            parse_directory(
                '<directory><group name="A" in="B"/><group name="B" in="A"/>'
                "</directory>"
            )


class TestSerialization:
    def test_round_trip(self):
        original = parse_directory(SAMPLE)
        text = serialize_directory(original)
        again = parse_directory(text)
        for user in ("alice", "bob", "guest"):
            assert set(original.expanded_groups(user)) == set(
                again.expanded_groups(user)
            )
        assert set(original.groups()) == set(again.groups())

    def test_implicit_subjects_omitted(self):
        text = serialize_directory(parse_directory(SAMPLE))
        assert "Public" not in text
        assert "anonymous" not in text

    def test_markup_validates_against_its_dtd(self):
        text = serialize_directory(parse_directory(SAMPLE))
        document = parse_document(text)
        report = validate(document, parse_dtd(DIRECTORY_DTD))
        assert report.valid, report.violations

    def test_diamond_memberships_preserved(self):
        directory = Directory()
        directory.add_group("X")
        directory.add_group("Y")
        directory.add_group("Z", parents=["X", "Y"])
        again = parse_directory(serialize_directory(directory))
        assert again.is_member("Z", "X")
        assert again.is_member("Z", "Y")
