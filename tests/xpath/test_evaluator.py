"""Tests for XPath evaluation: axes, node tests, predicates, operators."""

import math

import pytest

from repro.errors import XPathEvaluationError
from repro.xml.parser import parse_document
from repro.xml.nodes import Attribute, Element, Text
from repro.xpath.evaluator import evaluate, matches, select

DOC = """\
<laboratory name="CSlab">
  <project name="Access Models" type="public">
    <manager><flname>Alice Smith</flname><email>a@lab.com</email></manager>
    <paper category="private" type="internal"><title>Secret</title></paper>
    <paper category="public"><title>Open</title></paper>
    <fund sponsor="EC">FASTER</fund>
  </project>
  <project name="Kernel" type="internal">
    <manager><flname>Bob Jones</flname></manager>
    <paper category="public"><title>Kernel paper</title></paper>
  </project>
</laboratory>
"""


@pytest.fixture
def doc():
    return parse_document(DOC)


def names(nodes):
    return [node.name for node in nodes]


class TestChildAndDescendant:
    def test_absolute_child_path(self, doc):
        assert len(select("/laboratory/project", doc)) == 2

    def test_root_name_must_match(self, doc):
        assert select("/wrong/project", doc) == []

    def test_descendant_abbreviation(self, doc):
        assert len(select("//paper", doc)) == 3

    def test_descendant_from_inner_context(self, doc):
        project = select("/laboratory/project[2]", doc)[0]
        assert len(select(".//paper", project)) == 1

    def test_explicit_descendant_axis(self, doc):
        assert len(select("/laboratory/descendant::flname", doc)) == 2

    def test_descendant_or_self(self, doc):
        project = select("/laboratory/project[1]", doc)[0]
        result = select("descendant-or-self::*", project)
        assert result[0] is project

    def test_mixed_slash_double_slash(self, doc):
        assert len(select("/laboratory//title", doc)) == 3

    def test_wildcard_child(self, doc):
        project = select("/laboratory/project[1]", doc)[0]
        assert names(select("*", project)) == ["manager", "paper", "paper", "fund"]


class TestAttributeAxis:
    def test_attribute_step(self, doc):
        result = select("/laboratory/project/@name", doc)
        assert [attr.value for attr in result] == ["Access Models", "Kernel"]

    def test_attribute_wildcard(self, doc):
        paper = select("//paper[1]", doc)[0]
        assert len(select("@*", paper)) == 2

    def test_attribute_axis_explicit(self, doc):
        assert len(select("//project/attribute::type", doc)) == 2

    def test_attributes_are_attribute_nodes(self, doc):
        result = select("//fund/@sponsor", doc)
        assert isinstance(result[0], Attribute)


class TestUpwardAxes:
    def test_parent(self, doc):
        flname = select("//flname", doc)[0]
        assert select("..", flname)[0].name == "manager"

    def test_ancestor(self, doc):
        assert names(select("//fund/ancestor::project", doc)) == ["project"]

    def test_ancestor_includes_all_levels(self, doc):
        flname = select("//flname[1]", doc)[0]
        ancestors = select("ancestor::*", flname)
        assert names(ancestors) == ["laboratory", "project", "manager"]

    def test_ancestor_or_self(self, doc):
        flname = select("//flname[1]", doc)[0]
        result = select("ancestor-or-self::*", flname)
        assert names(result) == ["laboratory", "project", "manager", "flname"]

    def test_parent_of_root_is_document(self, doc):
        root = doc.root
        result = select("..", root)
        assert result == [doc]


class TestSiblingAxes:
    def test_following_sibling(self, doc):
        manager = select("//project[1]/manager", doc)[0]
        assert names(select("following-sibling::*", manager)) == [
            "paper",
            "paper",
            "fund",
        ]

    def test_preceding_sibling(self, doc):
        fund = select("//fund", doc)[0]
        assert names(select("preceding-sibling::*", fund)) == [
            "manager",
            "paper",
            "paper",
        ]

    def test_preceding_sibling_position_counts_backwards(self, doc):
        fund = select("//fund", doc)[0]
        nearest = select("preceding-sibling::*[1]", fund)
        assert nearest[0].name == "paper"
        assert nearest[0].get_attribute("category") == "public"


class TestNodeTests:
    def test_text_nodes(self, doc):
        result = select("//flname/text()", doc)
        assert [node.data for node in result] == ["Alice Smith", "Bob Jones"]

    def test_node_test_includes_text(self, doc):
        fund = select("//fund", doc)[0]
        assert len(select("node()", fund)) == 1

    def test_comment_nodes(self):
        document = parse_document("<a><!--x--><b/><!--y--></a>")
        assert len(select("//comment()", document)) == 2

    def test_name_test_does_not_match_text(self, doc):
        fund = select("//fund", doc)[0]
        assert select("FASTER", fund) == []


class TestPredicates:
    def test_positional(self, doc):
        assert select("/laboratory/project[1]", doc)[0].get_attribute("name") == (
            "Access Models"
        )
        assert select("/laboratory/project[2]", doc)[0].get_attribute("name") == (
            "Kernel"
        )

    def test_position_function(self, doc):
        assert len(select("//paper[position() = 1]", doc)) == 2  # one per project

    def test_last_function(self, doc):
        last_papers = select("//project/paper[last()]", doc)
        assert [p.get_attribute("category") for p in last_papers] == [
            "public",
            "public",
        ]

    def test_attribute_condition(self, doc):
        result = select('//paper[./@category="private"]', doc)
        assert len(result) == 1

    def test_attribute_existence(self, doc):
        assert len(select("//paper[@type]", doc)) == 1

    def test_chained_conditions(self, doc):
        result = select(
            '/laboratory/project[./@name="Access Models"]/paper[./@type="internal"]',
            doc,
        )
        assert len(result) == 1
        assert result[0].get_attribute("category") == "private"

    def test_and_or(self, doc):
        assert len(select('//paper[@category="public" or @category="private"]', doc)) == 3
        assert len(select('//paper[@category="public" and @type]', doc)) == 0

    def test_text_comparison(self, doc):
        assert len(select('//flname[. = "Alice Smith"]', doc)) == 1

    def test_path_predicate(self, doc):
        result = select('//project[manager/flname = "Bob Jones"]', doc)
        assert result[0].get_attribute("name") == "Kernel"

    def test_numeric_comparison_predicate(self, doc):
        assert len(select("//project[count(paper) > 1]", doc)) == 1

    def test_predicate_on_multiple_contexts_positions_reset(self, doc):
        # paper[1] is evaluated per project, not globally.
        firsts = select("//project/paper[1]", doc)
        assert len(firsts) == 2


class TestDocumentOrderAndUnion:
    def test_union_document_order(self, doc):
        result = select("//fund | //manager", doc)
        assert names(result) == ["manager", "fund", "manager"]

    def test_union_deduplicates(self, doc):
        result = select("//paper | //paper", doc)
        assert len(result) == 3

    def test_result_in_document_order_after_upward_axis(self, doc):
        result = select("//flname/ancestor::*", doc)
        assert names(result) == ["laboratory", "project", "manager", "project", "manager"]

    def test_union_requires_nodesets(self, doc):
        with pytest.raises(XPathEvaluationError):
            evaluate("//a | 3", doc)


class TestScalarExpressions:
    def test_arithmetic(self, doc):
        assert evaluate("1 + 2 * 3 - 4", doc) == 3.0
        assert evaluate("10 div 4", doc) == 2.5
        assert evaluate("10 mod 3", doc) == 1.0
        assert evaluate("-10 mod 3", doc) == -1.0

    def test_division_by_zero(self, doc):
        assert evaluate("1 div 0", doc) == math.inf
        assert evaluate("-1 div 0", doc) == -math.inf
        assert math.isnan(evaluate("0 div 0", doc))
        assert math.isnan(evaluate("1 mod 0", doc))

    def test_unary_minus(self, doc):
        assert evaluate("-(2 + 3)", doc) == -5.0

    def test_comparison_results(self, doc):
        assert evaluate("1 < 2", doc) is True
        assert evaluate("2 <= 2", doc) is True
        assert evaluate("3 > 4", doc) is False
        assert evaluate('"a" = "a"', doc) is True

    def test_boolean_connectives_short_circuit(self, doc):
        # The right side would raise if evaluated: unknown function.
        assert evaluate("true() or nosuchfn()", doc) is True
        assert evaluate("false() and nosuchfn()", doc) is False

    def test_string_literal(self, doc):
        assert evaluate('"hello"', doc) == "hello"

    def test_variables(self, doc):
        assert evaluate("$x + 1", doc, variables={"x": 2.0}) == 3.0

    def test_unbound_variable(self, doc):
        with pytest.raises(XPathEvaluationError, match="unbound variable"):
            evaluate("$missing", doc)


class TestSelectAndMatches:
    def test_select_requires_nodeset(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            select("1 + 1", doc)

    def test_matches(self, doc):
        paper = select('//paper[@category="private"]', doc)[0]
        assert matches("//paper", doc, paper)
        assert not matches('//paper[@category="public"]', doc, paper)

    def test_filter_on_nodeset_primary(self, doc):
        result = select("(//paper)[2]", doc)
        assert len(result) == 1
        assert result[0].get_attribute("category") == "public"

    def test_path_continuing_from_function(self, doc):
        document = parse_document('<a><b id="n1"><c/></b></a>')
        result = select("id('n1')/c", document)
        assert names(result) == ["c"]
