"""Tests for compiled path expressions and relative-path anchoring."""

from repro.xml.parser import parse_document
from repro.xpath.compile import CompiledXPath, compile_xpath


DOC = (
    '<laboratory><project type="internal"><manager/></project>'
    '<project type="public"><manager/></project></laboratory>'
)


class TestAnchoring:
    def test_relative_path_matches_anywhere_by_default(self):
        document = parse_document(DOC)
        compiled = CompiledXPath('project[./@type="internal"]')
        assert len(compiled.select(document)) == 1

    def test_relative_nested_path(self):
        document = parse_document(DOC)
        compiled = CompiledXPath('project[./@type="public"]/manager')
        assert len(compiled.select(document)) == 1

    def test_root_mode_requires_child_of_context(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("project", relative_mode="root")
        assert compiled.select(document) == []
        compiled2 = CompiledXPath("laboratory/project", relative_mode="root")
        assert len(compiled2.select(document)) == 2

    def test_absolute_path_unchanged(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("/laboratory/project")
        assert len(compiled.select(document)) == 2

    def test_leading_double_slash_unchanged(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("//manager")
        assert len(compiled.select(document)) == 2

    def test_union_parts_anchored_independently(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("manager | project")
        assert len(compiled.select(document)) == 4

    def test_non_path_expression_left_alone(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("count(//project)")
        assert compiled.evaluate(document) == 2.0


class TestCaching:
    def test_same_context_cached(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("//manager")
        first = compiled.select(document)
        second = compiled.select(document)
        assert first is second

    def test_different_context_recomputed(self):
        first_doc = parse_document(DOC)
        second_doc = parse_document(DOC)
        compiled = CompiledXPath("//manager")
        assert compiled.select(first_doc) is not compiled.select(second_doc)

    def test_invalidate(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("//manager")
        first = compiled.select(document)
        compiled.invalidate()
        assert compiled.select(document) is not first

    def test_compile_xpath_memoized(self):
        assert compile_xpath("//a/b") is compile_xpath("//a/b")
        assert compile_xpath("//a/b") is not compile_xpath("//a/b", "root")

    def test_node_set_returns_identity_set(self):
        document = parse_document(DOC)
        compiled = CompiledXPath("//manager")
        as_set = compiled.node_set(document)
        assert len(as_set) == 2
        assert all(node in as_set for node in compiled.select(document))

    def test_repr(self):
        assert "//a" in repr(CompiledXPath("//a"))
