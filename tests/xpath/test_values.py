"""Tests for the XPath value model and conversions."""

import math

from repro.xml.parser import parse_document, parse_fragment
from repro.xpath.values import (
    compare,
    number_to_string,
    string_value,
    to_boolean,
    to_number,
    to_string,
)


class TestStringValue:
    def test_element_concatenates_descendant_text(self):
        root = parse_fragment("<a>x<b>y</b>z</a>")
        assert string_value(root) == "xyz"

    def test_attribute(self):
        root = parse_fragment('<a k="v"/>')
        assert string_value(root.attribute_node("k")) == "v"

    def test_text_and_comment(self):
        root = parse_fragment("<a>t<!--c--></a>")
        assert string_value(root.children[0]) == "t"
        assert string_value(root.children[1]) == "c"

    def test_document(self):
        document = parse_document("<a>x<b>y</b></a>")
        assert string_value(document) == "xy"


class TestConversions:
    def test_to_string_booleans(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"

    def test_to_string_numbers(self):
        assert to_string(3.0) == "3"
        assert to_string(3.5) == "3.5"
        assert to_string(float("nan")) == "NaN"
        assert to_string(float("inf")) == "Infinity"
        assert to_string(float("-inf")) == "-Infinity"

    def test_to_string_nodeset_uses_first(self):
        root = parse_fragment("<a><b>first</b><b>second</b></a>")
        assert to_string(list(root.child_elements())) == "first"
        assert to_string([]) == ""

    def test_to_number(self):
        assert to_number("42") == 42.0
        assert to_number("  3.5  ") == 3.5
        assert math.isnan(to_number("abc"))
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_to_number_nodeset(self):
        root = parse_fragment("<a><b>7</b></a>")
        assert to_number(list(root.child_elements())) == 7.0

    def test_to_boolean(self):
        assert to_boolean("x") is True
        assert to_boolean("") is False
        assert to_boolean(1.0) is True
        assert to_boolean(0.0) is False
        assert to_boolean(float("nan")) is False
        assert to_boolean([parse_fragment("<a/>")]) is True
        assert to_boolean([]) is False

    def test_number_to_string_negative_zero(self):
        assert number_to_string(-0.0) == "0"


class TestCompare:
    def test_scalar_equality(self):
        assert compare("=", "a", "a")
        assert compare("!=", "a", "b")
        assert compare("=", 1.0, 1.0)
        assert not compare("=", float("nan"), float("nan"))

    def test_boolean_coercion_dominates(self):
        assert compare("=", True, "anything")  # boolean("anything") is true
        assert compare("=", False, "")

    def test_number_vs_string(self):
        assert compare("=", 5.0, "5")
        assert compare("<", 4.0, "5")

    def test_relational_converts_to_numbers(self):
        assert compare("<", "4", "5")
        assert not compare("<", "x", "5")  # NaN comparisons are false

    def test_nodeset_vs_string_existential(self):
        root = parse_fragment("<a><b>x</b><b>y</b></a>")
        nodes = list(root.child_elements())
        assert compare("=", nodes, "y")
        assert not compare("=", nodes, "z")
        # != is also existential: some node differs from "x".
        assert compare("!=", nodes, "x")

    def test_nodeset_vs_number(self):
        root = parse_fragment("<a><b>3</b><b>9</b></a>")
        nodes = list(root.child_elements())
        assert compare(">", nodes, 5.0)
        assert compare("<", nodes, 5.0)
        assert not compare(">", nodes, 10.0)

    def test_number_vs_nodeset_flipped(self):
        root = parse_fragment("<a><b>3</b></a>")
        nodes = list(root.child_elements())
        assert compare(">", 5.0, nodes)
        assert not compare("<", 5.0, nodes)

    def test_nodeset_vs_nodeset(self):
        left_root = parse_fragment("<a><b>x</b><b>y</b></a>")
        right_root = parse_fragment("<a><c>y</c><c>z</c></a>")
        left = list(left_root.child_elements())
        right = list(right_root.child_elements())
        assert compare("=", left, right)      # both contain 'y'
        assert compare("!=", left, right)
        empty = []
        assert not compare("=", left, empty)
        assert not compare("!=", left, empty)

    def test_nodeset_vs_boolean(self):
        root = parse_fragment("<a><b/></a>")
        nodes = list(root.child_elements())
        assert compare("=", nodes, True)
        assert not compare("=", [], True)
