"""Tests for the following/preceding axes and DTD-aware id()."""

import pytest

from repro.xml.parser import parse_document
from repro.xml.traversal import document_order
from repro.xpath.evaluator import select


@pytest.fixture
def doc():
    return parse_document(
        "<a>"
        "<b><b1/><b2/></b>"
        "<c><c1><deep/></c1></c>"
        "<d><d1/></d>"
        "</a>"
    )


def names(nodes):
    return [node.name for node in nodes]


class TestFollowingAxis:
    def test_following_excludes_descendants(self, doc):
        c = select("//c", doc)[0]
        assert names(select("following::*", c)) == ["d", "d1"]

    def test_following_from_nested(self, doc):
        b1 = select("//b1", doc)[0]
        assert names(select("following::*", b1)) == [
            "b2", "c", "c1", "deep", "d", "d1",
        ]

    def test_following_of_last_is_empty(self, doc):
        d1 = select("//d1", doc)[0]
        assert select("following::*", d1) == []

    def test_following_with_name_test(self, doc):
        b = select("//b", doc)[0]
        assert names(select("following::d1", b)) == ["d1"]

    def test_following_results_in_document_order(self, doc):
        b1 = select("//b1", doc)[0]
        order = document_order(doc)
        positions = [order[node] for node in select("following::*", b1)]
        assert positions == sorted(positions)


class TestPrecedingAxis:
    def test_preceding_excludes_ancestors(self, doc):
        deep = select("//deep", doc)[0]
        result = names(select("preceding::*", deep))
        assert result == ["b", "b1", "b2"]
        assert "c1" not in result and "c" not in result and "a" not in result

    def test_preceding_of_first_is_empty(self, doc):
        b1 = select("//b1", doc)[0]
        assert select("preceding::*", b1) == []

    def test_preceding_position_counts_backwards(self, doc):
        d = select("//d", doc)[0]
        nearest = select("preceding::*[1]", d)
        # Nearest preceding node in reverse document order is <deep/>.
        assert names(nearest) == ["deep"]

    def test_preceding_with_predicate_window(self, doc):
        d = select("//d", doc)[0]
        first_two = select("preceding::*[position() <= 2]", d)
        assert set(names(first_two)) == {"deep", "c1"}

    def test_following_preceding_partition(self, doc):
        """following ∪ preceding ∪ ancestors ∪ descendants ∪ self covers
        every element exactly once (the XPath axis partition)."""
        c1 = select("//c1", doc)[0]
        parts = {
            "self": select("self::*", c1),
            "anc": select("ancestor::*", c1),
            "desc": select("descendant::*", c1),
            "foll": select("following::*", c1),
            "prec": select("preceding::*", c1),
        }
        all_elements = select("//*", doc)
        combined = [node for nodes in parts.values() for node in nodes]
        assert len(combined) == len(all_elements)
        assert set(combined) == set(all_elements)


class TestAttributeContext:
    def test_following_of_attribute(self):
        document = parse_document('<a><b k="1"><c/></b><d/></a>')
        attr = select("//b/@k", document)[0]
        result = names(select("following::*", attr))
        assert "d" in result

    def test_preceding_of_attribute(self):
        document = parse_document('<a><b/><c k="1"/></a>')
        attr = select("//c/@k", document)[0]
        assert names(select("preceding::*", attr)) == ["b"]


class TestDtdAwareId:
    DOC = (
        "<!DOCTYPE reg [\n"
        "<!ELEMENT reg (person*)>\n"
        "<!ELEMENT person EMPTY>\n"
        "<!ATTLIST person badge ID #REQUIRED id CDATA #IMPLIED>\n"
        "]>\n"
        '<reg><person badge="p1" id="decoy"/><person badge="p2"/></reg>'
    )

    def test_declared_id_attribute_used(self):
        document = parse_document(self.DOC)
        result = select("id('p1')", document)
        assert len(result) == 1
        assert result[0].get_attribute("badge") == "p1"

    def test_plain_id_attribute_ignored_with_dtd(self):
        document = parse_document(self.DOC)
        assert select("id('decoy')", document) == []

    def test_fallback_without_dtd(self):
        document = parse_document('<reg><person id="p1"/></reg>')
        assert len(select("id('p1')", document)) == 1

    def test_multiple_tokens(self):
        document = parse_document(self.DOC)
        assert len(select("id('p1 p2')", document)) == 2
