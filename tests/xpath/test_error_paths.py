"""Error-path coverage for XPath evaluation."""

import pytest

from repro.errors import XPathEvaluationError
from repro.xml.parser import parse_document
from repro.xpath.evaluator import evaluate, select


@pytest.fixture
def doc():
    return parse_document("<a><b>1</b><b>2</b></a>")


class TestTypeErrors:
    def test_predicate_on_scalar_rejected(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            evaluate("(1 + 2)[1]", doc)

    def test_path_from_scalar_rejected(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            evaluate("concat('a','b')[1]/x", doc)

    def test_union_with_scalar_rejected(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            evaluate("//b | 'text'", doc)

    def test_select_of_boolean_rejected(self, doc):
        with pytest.raises(XPathEvaluationError):
            select("true()", doc)

    def test_sum_of_string_rejected(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            evaluate("sum('x')", doc)


class TestArithmeticEdges:
    def test_mod_by_zero_nan(self, doc):
        import math

        assert math.isnan(evaluate("5 mod 0", doc))

    def test_arithmetic_on_nodesets_coerces(self, doc):
        # number(//b) takes the first node's value.
        assert evaluate("//b + 1", doc) == 2.0

    def test_nan_propagates(self, doc):
        import math

        assert math.isnan(evaluate("'x' + 1", doc))

    def test_unary_minus_on_nodeset(self, doc):
        assert evaluate("-//b", doc) == -1.0


class TestContextEdges:
    def test_absolute_path_from_detached_element(self):
        from repro.xml.parser import parse_fragment

        # A detached element is its own tree root; '/' resolves to it.
        fragment = parse_fragment("<r><c/></r>")
        assert select("/r/c", fragment) != []

    def test_attribute_context_child_axis_empty(self, doc):
        root = doc.root
        attr = root.set_attribute("k", "v")
        assert select("*", attr) == []
        assert select("..", attr) == [root]

    def test_empty_nodeset_operations(self, doc):
        assert evaluate("count(//nothing)", doc) == 0.0
        assert evaluate("string(//nothing)", doc) == ""
        assert evaluate("boolean(//nothing)", doc) is False
        assert select("//nothing/child::*", doc) == []

    def test_position_outside_predicate_defaults_to_one(self, doc):
        assert evaluate("position()", doc) == 1.0
        assert evaluate("last()", doc) == 1.0
