"""XPath 1.0 specification conformance: the recommendation's own examples.

Section 2.5 of the W3C XPath 1.0 recommendation enumerates canonical
abbreviated-syntax examples ("para selects the para element children of
the context node", ...). Each test here encodes one of those sentences
against a purpose-built document, so the engine's semantics are pinned
to the spec's prose rather than to our own expectations.
"""

import pytest

from repro.xml.parser import parse_document
from repro.xpath.evaluator import evaluate, select

DOC = """\
<doc>
  <chapter n="1">
    <title>intro</title>
    <para type="warning">w1</para>
    <para>p1</para>
    <para type="warning">w2</para>
    <section>
      <para type="warning">w3</para>
      <title>inner</title>
    </section>
  </chapter>
  <chapter n="2">
    <title>details</title>
    <para>p2</para>
    <para type="warning">w4</para>
    <para type="warning">w5</para>
  </chapter>
  <chapter n="3">
    <appendix/>
  </chapter>
  <employee security="high">boss</employee>
  <employee>worker</employee>
</doc>
"""


@pytest.fixture
def doc():
    return parse_document(DOC)


def chapter(doc, n):
    return select(f'//chapter[@n="{n}"]', doc)[0]


class TestSection25Examples:
    def test_para_selects_para_children(self, doc):
        """'para selects the para element children of the context node'"""
        context = chapter(doc, 1)
        result = select("para", context)
        assert [node.text() for node in result] == ["w1", "p1", "w2"]

    def test_star_selects_all_element_children(self, doc):
        """'* selects all element children of the context node'"""
        context = chapter(doc, 1)
        assert [node.name for node in select("*", context)] == [
            "title", "para", "para", "para", "section",
        ]

    def test_text_selects_text_children(self, doc):
        """'text() selects all text node children'"""
        context = select("//para", doc)[0]
        assert [node.data for node in select("text()", context)] == ["w1"]

    def test_at_name_selects_attribute(self, doc):
        """'@name selects the name attribute of the context node'"""
        context = chapter(doc, 1)
        result = select("@n", context)
        assert len(result) == 1 and result[0].value == "1"

    def test_at_star_selects_all_attributes(self, doc):
        """'@* selects all the attributes of the context node'"""
        context = select("//employee[@security]", doc)[0]
        assert [attr.name for attr in select("@*", context)] == ["security"]

    def test_para_1_selects_first_para_child(self, doc):
        """'para[1] selects the first para child'"""
        context = chapter(doc, 1)
        assert select("para[1]", context)[0].text() == "w1"

    def test_para_last_selects_last_para_child(self, doc):
        """'para[last()] selects the last para child'"""
        context = chapter(doc, 1)
        assert select("para[last()]", context)[0].text() == "w2"

    def test_star_para_selects_grandchildren(self, doc):
        """'*/para selects all para grandchildren'"""
        result = select("*/para", doc.root)
        # paras under chapters (not the one nested inside section).
        assert [node.text() for node in result] == ["w1", "p1", "w2", "p2", "w4", "w5"]

    def test_absolute_positional_path(self, doc):
        """'/doc/chapter[2]/section[1] selects ...' (adapted indices)"""
        result = select("/doc/chapter[1]/section[1]", doc)
        assert len(result) == 1 and result[0].name == "section"

    def test_double_slash_para_selects_all_descendants(self, doc):
        """'//para selects all the para descendants of the document root'"""
        assert len(select("//para", doc)) == 7

    def test_relative_descendant(self, doc):
        """'.//para selects the para element descendants of the context'"""
        context = chapter(doc, 2)
        assert len(select(".//para", context)) == 3

    def test_dot_selects_context(self, doc):
        """'. selects the context node'"""
        context = chapter(doc, 1)
        assert select(".", context) == [context]

    def test_dotdot_selects_parent(self, doc):
        """'.. selects the parent of the context node'"""
        context = chapter(doc, 1)
        assert select("..", context) == [doc.root]

    def test_dotdot_lang_selects_parent_attribute(self, doc):
        """'../@lang selects the lang attribute of the parent' (adapted)"""
        title = select("//chapter[1]/title", doc)[0]
        result = select("../@n", title)
        assert len(result) == 1 and result[0].value == "1"

    def test_para_type_warning(self, doc):
        """'para[@type="warning"] selects all para children with type warning'"""
        context = chapter(doc, 1)
        assert len(select('para[@type="warning"]', context)) == 2

    def test_para_type_warning_5th_document_wide(self, doc):
        """'para[@type="warning"][5]' — the fifth warning para, counted
        per context; document-wide via (…)[5]."""
        result = select('(//para[@type="warning"])[5]', doc)
        assert [node.text() for node in result] == ["w5"]

    def test_para_5_type_warning(self, doc):
        """'para[5][@type="warning"] selects the fifth para child if it
        is a warning' (no chapter has 5 paras -> empty)"""
        context = chapter(doc, 1)
        assert select('para[5][@type="warning"]', context) == []

    def test_chapter_title_is_introduction(self, doc):
        """'chapter[title="Introduction"]' (adapted: 'intro')"""
        result = select('chapter[title="intro"]', doc.root)
        assert [node.get_attribute("n") for node in result] == ["1"]

    def test_chapter_with_title(self, doc):
        """'chapter[title] selects the chapter children that have one or
        more title children'"""
        result = select("chapter[title]", doc.root)
        assert [node.get_attribute("n") for node in result] == ["1", "2"]

    def test_employee_with_security_attribute(self, doc):
        """'employee[@security] selects employees with a security attribute'"""
        result = select("employee[@security]", doc.root)
        assert len(result) == 1 and result[0].text() == "boss"


class TestCoreFunctionExamplesFromSpec:
    """Examples stated in the function-library prose (section 4)."""

    def test_starts_with_spec(self, doc):
        assert evaluate("starts-with('abc', '')", doc) is True

    def test_substring_before_spec(self, doc):
        assert evaluate('substring-before("1999/04/01","/")', doc) == "1999"

    def test_substring_after_spec(self, doc):
        assert evaluate('substring-after("1999/04/01","/")', doc) == "04/01"
        assert evaluate('substring-after("1999/04/01","19")', doc) == "99/04/01"

    def test_substring_edge_cases_spec(self, doc):
        # All five examples from the spec's substring() prose.
        assert evaluate("substring('12345', 1.5, 2.6)", doc) == "234"
        assert evaluate("substring('12345', 0, 3)", doc) == "12"
        assert evaluate("substring('12345', 0 div 0, 3)", doc) == ""
        assert evaluate("substring('12345', 1, 0 div 0)", doc) == ""
        assert evaluate("substring('12345', -42, 1 div 0)", doc) == "12345"

    def test_normalize_space_argless(self, doc):
        title = select("//title", doc)[0]
        assert evaluate("normalize-space()", title) == "intro"

    def test_translate_spec(self, doc):
        assert evaluate('translate("bar","abc","ABC")', doc) == "BAr"
        assert evaluate('translate("--aaa--","abc-","ABC")', doc) == "AAA"

    def test_round_spec(self, doc):
        assert evaluate("round(1.5)", doc) == 2.0
        assert evaluate("round(-1.5)", doc) == -1.0

    def test_boolean_number_spec(self, doc):
        assert evaluate("boolean(0)", doc) is False
        assert evaluate("boolean(0 div 0)", doc) is False
        assert evaluate("boolean(-1)", doc) is True

    def test_negative_infinity_substring_guard(self, doc):
        assert evaluate("substring('12345', -1 div 0, 1 div 0)", doc) == ""
