"""Tests for the XPath parser and AST unparse round-trips."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTestKind,
    Number,
    PathExpr,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.parser import parse_xpath


class TestLocationPaths:
    def test_absolute_child_path(self):
        path = parse_xpath("/laboratory/project")
        assert isinstance(path, LocationPath)
        assert path.absolute
        assert [step.test.name for step in path.steps] == ["laboratory", "project"]
        assert all(step.axis is Axis.CHILD for step in path.steps)

    def test_relative_path(self):
        path = parse_xpath("project/manager")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_double_slash_desugars(self):
        path = parse_xpath("/laboratory//flname")
        assert len(path.steps) == 3
        middle = path.steps[1]
        assert middle.axis is Axis.DESCENDANT_OR_SELF
        assert middle.test.kind is NodeTestKind.NODE

    def test_leading_double_slash(self):
        path = parse_xpath("//paper")
        assert path.absolute
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[1].test.name == "paper"

    def test_bare_slash_is_root(self):
        path = parse_xpath("/")
        assert path.absolute
        assert path.steps == []

    def test_attribute_abbreviation(self):
        path = parse_xpath("paper/@category")
        assert path.steps[1].axis is Axis.ATTRIBUTE
        assert path.steps[1].test.name == "category"

    def test_dot_and_dotdot(self):
        path = parse_xpath("./..")
        assert path.steps[0].axis is Axis.SELF
        assert path.steps[1].axis is Axis.PARENT

    def test_explicit_axes(self):
        path = parse_xpath("fund/ancestor::project")
        assert path.steps[1].axis is Axis.ANCESTOR

    def test_all_axes_parse(self):
        for axis in Axis:
            path = parse_xpath(f"{axis.value}::x")
            assert path.steps[0].axis is axis

    def test_wildcard(self):
        path = parse_xpath("*/@*")
        assert path.steps[0].test.kind is NodeTestKind.WILDCARD
        assert path.steps[1].axis is Axis.ATTRIBUTE
        assert path.steps[1].test.kind is NodeTestKind.WILDCARD

    def test_node_type_tests(self):
        assert parse_xpath("text()").steps[0].test.kind is NodeTestKind.TEXT
        assert parse_xpath("node()").steps[0].test.kind is NodeTestKind.NODE
        assert parse_xpath("comment()").steps[0].test.kind is NodeTestKind.COMMENT


class TestPredicates:
    def test_positional_predicate(self):
        path = parse_xpath("project[1]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, Number)
        assert predicate.value == 1

    def test_comparison_predicate(self):
        path = parse_xpath('project[./@name = "Access Models"]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BinaryExpr)
        assert predicate.op == "="
        assert isinstance(predicate.right, Literal)

    def test_multiple_predicates(self):
        path = parse_xpath("a[@x][2]")
        assert len(path.steps[0].predicates) == 2

    def test_boolean_connectives(self):
        path = parse_xpath("a[@x = '1' and @y != '2' or @z]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BinaryExpr)
        assert predicate.op == "or"
        assert predicate.left.op == "and"

    def test_nested_paths_in_predicates(self):
        path = parse_xpath("project[paper/@category = 'public']")
        inner = path.steps[0].predicates[0].left
        assert isinstance(inner, LocationPath)
        assert not inner.absolute


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_xpath("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_div_mod(self):
        assert parse_xpath("4 div 2").op == "div"
        assert parse_xpath("4 mod 2").op == "mod"

    def test_unary_minus(self):
        expr = parse_xpath("-1")
        assert isinstance(expr, UnaryMinus)

    def test_double_unary_minus(self):
        expr = parse_xpath("--1")
        assert isinstance(expr.operand, UnaryMinus)

    def test_comparison_chain_left_assoc(self):
        expr = parse_xpath("1 < 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<"

    def test_union(self):
        expr = parse_xpath("//a | //b | //c")
        assert isinstance(expr, UnionExpr)
        assert len(expr.parts) == 3

    def test_function_call(self):
        expr = parse_xpath("contains(@name, 'Access')")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "contains"
        assert len(expr.args) == 2

    def test_function_no_args(self):
        expr = parse_xpath("position()")
        assert expr.args == []

    def test_filter_with_path_tail(self):
        expr = parse_xpath("id('n1')/child")
        assert isinstance(expr, PathExpr)
        assert isinstance(expr.filter.primary, FunctionCall)
        assert expr.tail.steps[0].test.name == "child"

    def test_parenthesized_expression(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_variable_reference(self):
        expr = parse_xpath("$user")
        assert isinstance(expr, VariableRef)
        assert expr.name == "user"

    def test_filter_predicate_on_parenthesized(self):
        expr = parse_xpath("(//a | //b)[1]")
        assert expr.predicates


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "/laboratory/",
            "//",
            "a[",
            "a[]",
            "a]",
            "foo(",
            "@",
            "a/child::@x",
            "nosuchaxis::a",
            "a b",
            "1 +",
            "text(x)",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestUnparse:
    @pytest.mark.parametrize(
        "expression",
        [
            "/laboratory/project",
            "//paper",
            "/laboratory//flname",
            "project/@name",
            'project[./@type = "internal"]',
            "fund/ancestor::project",
            "a | b",
            "1 + 2 * 3",
            "contains(@name, 'x')",
            "a[1][@x]",
            "-(3)",
            "self::node()",
            "preceding-sibling::a",
            "$v",
            "..",
            ".",
        ],
    )
    def test_parse_unparse_stable(self, expression):
        once = parse_xpath(expression)
        rendered = once.unparse()
        twice = parse_xpath(rendered)
        assert twice.unparse() == rendered
