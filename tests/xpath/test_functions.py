"""Tests for the XPath core function library."""

import math

import pytest

from repro.errors import XPathEvaluationError
from repro.xml.parser import parse_document
from repro.xpath.evaluator import evaluate, select
from repro.xpath.functions import FunctionRegistry, default_registry


@pytest.fixture
def doc():
    return parse_document(
        '<root xml:lang="en">'
        "<item>alpha</item><item>beta</item><item>42</item>"
        '<tagged id="t1">tagged text</tagged>'
        "</root>"
    )


class TestNodeSetFunctions:
    def test_count(self, doc):
        assert evaluate("count(//item)", doc) == 3.0
        assert evaluate("count(//nothing)", doc) == 0.0

    def test_count_requires_nodeset(self, doc):
        with pytest.raises(XPathEvaluationError):
            evaluate("count(3)", doc)

    def test_position_and_last(self, doc):
        assert len(select("//item[position() = last()]", doc)) == 1
        assert select("//item[position() = last()]", doc)[0].text() == "42"

    def test_name(self, doc):
        assert evaluate("name(//item)", doc) == "item"
        assert evaluate("name(//nothing)", doc) == ""
        item = select("//item", doc)[0]
        assert evaluate("name()", item) == "item"

    def test_name_of_attribute(self, doc):
        attr = select("//tagged/@id", doc)[0]
        assert evaluate("name()", attr) == "id"

    def test_id(self, doc):
        result = select("id('t1')", doc)
        assert len(result) == 1
        assert result[0].name == "tagged"

    def test_id_multiple_tokens(self, doc):
        assert len(select("id('t1 nope')", doc)) == 1

    def test_sum(self, doc):
        document = parse_document("<a><n>1</n><n>2</n><n>3.5</n></a>")
        assert evaluate("sum(//n)", document) == 6.5


class TestStringFunctions:
    def test_string_of_context(self, doc):
        item = select("//item", doc)[0]
        assert evaluate("string()", item) == "alpha"

    def test_concat(self, doc):
        assert evaluate("concat('a', 'b', 'c')", doc) == "abc"

    def test_concat_requires_two_args(self, doc):
        with pytest.raises(XPathEvaluationError):
            evaluate("concat('a')", doc)

    def test_starts_with(self, doc):
        assert evaluate("starts-with('abc', 'ab')", doc) is True
        assert evaluate("starts-with('abc', 'bc')", doc) is False

    def test_contains(self, doc):
        assert evaluate("contains('hello world', 'o w')", doc) is True
        assert evaluate("contains('hello', 'z')", doc) is False

    def test_substring_before_after(self, doc):
        assert evaluate("substring-before('1999/04/01', '/')", doc) == "1999"
        assert evaluate("substring-after('1999/04/01', '/')", doc) == "04/01"
        assert evaluate("substring-before('abc', 'z')", doc) == ""
        assert evaluate("substring-after('abc', 'z')", doc) == ""

    def test_substring_spec_examples(self, doc):
        assert evaluate("substring('12345', 2, 3)", doc) == "234"
        assert evaluate("substring('12345', 2)", doc) == "2345"
        assert evaluate("substring('12345', 1.5, 2.6)", doc) == "234"
        assert evaluate("substring('12345', 0, 3)", doc) == "12"
        assert evaluate("substring('12345', 0 div 0, 3)", doc) == ""

    def test_string_length(self, doc):
        assert evaluate("string-length('abcd')", doc) == 4.0
        item = select("//item", doc)[0]
        assert evaluate("string-length()", item) == 5.0

    def test_normalize_space(self, doc):
        assert evaluate("normalize-space('  a   b \t c  ')", doc) == "a b c"

    def test_translate(self, doc):
        assert evaluate("translate('bar', 'abc', 'ABC')", doc) == "BAr"
        assert evaluate("translate('--aaa--', 'abc-', 'ABC')", doc) == "AAA"


class TestBooleanFunctions:
    def test_boolean(self, doc):
        assert evaluate("boolean('x')", doc) is True
        assert evaluate("boolean('')", doc) is False
        assert evaluate("boolean(//item)", doc) is True
        assert evaluate("boolean(//nothing)", doc) is False

    def test_not(self, doc):
        assert evaluate("not(false())", doc) is True
        assert evaluate("not(//item)", doc) is False

    def test_true_false(self, doc):
        assert evaluate("true()", doc) is True
        assert evaluate("false()", doc) is False

    def test_lang(self, doc):
        item = select("//item", doc)[0]
        assert evaluate("lang('en')", item) is True
        assert evaluate("lang('EN')", item) is True
        assert evaluate("lang('fr')", item) is False

    def test_lang_with_subtag(self):
        document = parse_document('<a xml:lang="en-US"><b/></a>')
        b = select("//b", document)[0]
        assert evaluate("lang('en')", b) is True


class TestNumberFunctions:
    def test_number(self, doc):
        assert evaluate("number('12')", doc) == 12.0
        assert math.isnan(evaluate("number('x')", doc))
        item = select("//item[3]", doc)[0]
        assert evaluate("number()", item) == 42.0

    def test_floor_ceiling(self, doc):
        assert evaluate("floor(2.7)", doc) == 2.0
        assert evaluate("ceiling(2.1)", doc) == 3.0
        assert evaluate("floor(-2.5)", doc) == -3.0
        assert evaluate("ceiling(-2.5)", doc) == -2.0

    def test_round(self, doc):
        assert evaluate("round(2.5)", doc) == 3.0
        assert evaluate("round(-2.5)", doc) == -2.0  # rounds toward +inf
        assert evaluate("round(2.4)", doc) == 2.0
        assert math.isnan(evaluate("round(0 div 0)", doc))


class TestRegistry:
    def test_unknown_function(self, doc):
        with pytest.raises(XPathEvaluationError, match="unknown function"):
            evaluate("nosuch()", doc)

    def test_arity_checked(self, doc):
        with pytest.raises(XPathEvaluationError, match="at most"):
            evaluate("not(1, 2)", doc)
        with pytest.raises(XPathEvaluationError, match="at least"):
            evaluate("contains('x')", doc)

    def test_custom_registry(self, doc):
        registry = default_registry().child()
        registry.register("double", lambda ctx, args: args[0] * 2, 1, 1)
        assert evaluate("double(21)", doc, registry=registry) == 42.0

    def test_child_registry_inherits(self, doc):
        registry = default_registry().child()
        assert evaluate("count(//item)", doc, registry=registry) == 3.0

    def test_child_registry_overrides(self, doc):
        registry = default_registry().child()
        registry.register("true", lambda ctx, args: False, 0, 0)
        assert evaluate("true()", doc, registry=registry) is False

    def test_fresh_registry_isolated(self):
        registry = FunctionRegistry()
        assert registry.lookup("count") is None
