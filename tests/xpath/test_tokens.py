"""Tests for the XPath tokenizer."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.tokens import TokenKind, tokenize


def kinds(expression):
    return [token.kind for token in tokenize(expression)][:-1]  # drop END


def values(expression):
    return [token.value for token in tokenize(expression)][:-1]


class TestBasicTokens:
    def test_simple_path(self):
        assert kinds("/a/b") == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.SLASH,
            TokenKind.NAME,
        ]

    def test_double_slash(self):
        assert kinds("//a") == [TokenKind.DOUBLE_SLASH, TokenKind.NAME]

    def test_attribute(self):
        assert kinds("@name") == [TokenKind.AT, TokenKind.NAME]

    def test_dots(self):
        assert kinds(".") == [TokenKind.DOT]
        assert kinds("..") == [TokenKind.DOTDOT]
        assert kinds("./..") == [TokenKind.DOT, TokenKind.SLASH, TokenKind.DOTDOT]

    def test_axis_separator(self):
        assert kinds("ancestor::project") == [
            TokenKind.NAME,
            TokenKind.AXIS_SEP,
            TokenKind.NAME,
        ]
        assert values("ancestor::project") == ["ancestor", "::", "project"]

    def test_qualified_name_single_token(self):
        assert values("xml:lang") == ["xml:lang"]

    def test_predicate_brackets(self):
        assert kinds("a[1]") == [
            TokenKind.NAME,
            TokenKind.LBRACKET,
            TokenKind.NUMBER,
            TokenKind.RBRACKET,
        ]

    def test_always_ends_with_end_token(self):
        assert tokenize("a")[-1].kind is TokenKind.END
        assert tokenize("")[-1].kind is TokenKind.END


class TestLiteralsAndNumbers:
    def test_double_quoted(self):
        assert values('"hello"') == ["hello"]

    def test_single_quoted(self):
        assert values("'it''s'")[0] == "it"

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == "42"

    def test_decimal(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot_decimal(self):
        assert values(".5") == [".5"]

    def test_number_then_dotdot_not_merged(self):
        assert kinds("1..") == [TokenKind.NUMBER, TokenKind.DOTDOT]


class TestOperators:
    def test_comparisons(self):
        assert kinds("a = b") == [TokenKind.NAME, TokenKind.EQ, TokenKind.NAME]
        assert kinds("a != b")[1] is TokenKind.NEQ
        assert kinds("a < b")[1] is TokenKind.LT
        assert kinds("a <= b")[1] is TokenKind.LTE
        assert kinds("a > b")[1] is TokenKind.GT
        assert kinds("a >= b")[1] is TokenKind.GTE

    def test_arithmetic_and_union(self):
        assert kinds("a + b - c")[1] is TokenKind.PLUS
        assert kinds("a | b")[1] is TokenKind.PIPE
        assert kinds("a * b")[1] is TokenKind.STAR

    def test_operator_names_are_plain_names(self):
        assert values("a and b") == ["a", "and", "b"]
        assert values("a or b")[1] == "or"
        assert values("a div b")[1] == "div"
        assert values("a mod b")[1] == "mod"

    def test_variable_reference(self):
        assert kinds("$x") == [TokenKind.DOLLAR, TokenKind.NAME]

    def test_whitespace_ignored(self):
        assert kinds("  a  /  b  ") == kinds("a/b")


class TestErrors:
    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError, match="unterminated literal"):
            tokenize('"open')

    def test_lone_bang(self):
        with pytest.raises(XPathSyntaxError, match="'!'"):
            tokenize("a ! b")

    def test_lone_colon(self):
        with pytest.raises(XPathSyntaxError, match="':'"):
            tokenize("a : b")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError, match="unexpected character"):
            tokenize("a # b")

    def test_position_recorded(self):
        tokens = tokenize("abc/def")
        assert tokens[0].position == 0
        assert tokens[2].position == 4
