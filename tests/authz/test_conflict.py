"""Tests for conflict-resolution policies (paper, Section 5)."""

import pytest

from repro.errors import PolicyError
from repro.authz.authorization import Sign
from repro.authz.conflict import (
    EPSILON,
    DenialsTakePrecedence,
    MajorityTakesPrecedence,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
    policy_by_name,
)

P = Sign.PLUS
M = Sign.MINUS


class TestDenialsTakePrecedence:
    def test_single_signs(self):
        policy = DenialsTakePrecedence()
        assert policy.resolve([P]) == "+"
        assert policy.resolve([M]) == "-"

    def test_any_denial_wins(self):
        policy = DenialsTakePrecedence()
        assert policy.resolve([P, P, M]) == "-"
        assert policy.resolve([M, P]) == "-"

    def test_all_permissions(self):
        assert DenialsTakePrecedence().resolve([P, P, P]) == "+"


class TestPermissionsTakePrecedence:
    def test_any_permission_wins(self):
        policy = PermissionsTakePrecedence()
        assert policy.resolve([M, M, P]) == "+"
        assert policy.resolve([M, M]) == "-"


class TestNothingTakesPrecedence:
    def test_conflict_dissolves(self):
        assert NothingTakesPrecedence().resolve([P, M]) == EPSILON

    def test_agreement_stands(self):
        policy = NothingTakesPrecedence()
        assert policy.resolve([P, P]) == "+"
        assert policy.resolve([M]) == "-"


class TestMajority:
    def test_plain_majorities(self):
        policy = MajorityTakesPrecedence()
        assert policy.resolve([P, P, M]) == "+"
        assert policy.resolve([M, M, P]) == "-"

    def test_tie_defaults_to_denial(self):
        assert MajorityTakesPrecedence().resolve([P, M]) == "-"

    def test_tie_breaker_configurable(self):
        policy = MajorityTakesPrecedence(tie_breaker=PermissionsTakePrecedence())
        assert policy.resolve([P, M]) == "+"

    def test_tie_breaker_nothing(self):
        policy = MajorityTakesPrecedence(tie_breaker=NothingTakesPrecedence())
        assert policy.resolve([P, M]) == EPSILON


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        [
            "denials-take-precedence",
            "permissions-take-precedence",
            "nothing-takes-precedence",
            "majority-takes-precedence",
        ],
    )
    def test_lookup_by_name(self, name):
        policy = policy_by_name(name)
        assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(PolicyError, match="unknown conflict policy"):
            policy_by_name("coin-flip")
