"""Tests for the authorization store."""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.store import AuthorizationStore
from repro.subjects.hierarchy import Requester


@pytest.fixture
def store():
    s = AuthorizationStore()
    directory = s.hierarchy.directory
    directory.add_group("CS")
    directory.add_user("alice", groups=["CS"])
    directory.add_user("tom")
    s.add(Authorization.build("CS", "doc.xml://a", "+", "R"))
    s.add(Authorization.build("Public", "doc.xml://b", "+", "L"))
    s.add(Authorization.build(("alice", "10.0.0.1", "*"), "doc.xml://c", "-", "R"))
    s.add(Authorization.build("Public", "doc.dtd://a", "-", "R"))
    s.add(Authorization.build("Public", "other.xml", "+", "R", action="write"))
    return s


class TestStorage:
    def test_len_and_iter(self, store):
        assert len(store) == 5
        assert len(list(store)) == 5

    def test_for_uri(self, store):
        assert len(store.for_uri("doc.xml")) == 3
        assert len(store.for_uri("doc.dtd")) == 1
        assert store.for_uri("nope.xml") == []

    def test_uris(self, store):
        assert set(store.uris()) == {"doc.xml", "doc.dtd", "other.xml"}

    def test_remove(self, store):
        auth = store.for_uri("doc.dtd")[0]
        assert store.remove(auth)
        assert not store.remove(auth)
        assert len(store) == 4

    def test_clear_uri(self, store):
        assert store.clear_uri("doc.xml") == 3
        assert len(store) == 2
        assert store.clear_uri("doc.xml") == 0

    def test_add_all(self):
        s = AuthorizationStore()
        s.add_all(
            Authorization.build("Public", f"d{i}.xml", "+", "R") for i in range(3)
        )
        assert len(s) == 3


class TestApplicable:
    def test_group_member_sees_group_auths(self, store):
        alice = Requester("alice", "10.0.0.1", "pc.lab.com")
        applicable = store.applicable(alice, "doc.xml")
        assert len(applicable) == 3  # CS + Public + her own

    def test_non_member_filtered(self, store):
        tom = Requester("tom", "9.9.9.9", "x.example.org")
        applicable = store.applicable(tom, "doc.xml")
        assert len(applicable) == 1  # Public only

    def test_location_filtered(self, store):
        alice_elsewhere = Requester("alice", "10.0.0.2", "pc.lab.com")
        applicable = store.applicable(alice_elsewhere, "doc.xml")
        assert len(applicable) == 2  # her IP-pinned denial does not apply

    def test_action_filtered(self, store):
        alice = Requester("alice", "10.0.0.1", "pc.lab.com")
        assert store.applicable(alice, "other.xml", action="read") == []
        assert len(store.applicable(alice, "other.xml", action="write")) == 1

    def test_unknown_uri(self, store):
        alice = Requester("alice", "10.0.0.1", "pc.lab.com")
        assert store.applicable(alice, "nope.xml") == []

    def test_anonymous_gets_public(self, store):
        anonymous = Requester()
        assert len(store.applicable(anonymous, "doc.xml")) == 1
