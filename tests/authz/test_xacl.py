"""Tests for XACL markup (parse + serialize round-trips)."""

import pytest

from repro.errors import XACLError
from repro.authz.authorization import AuthType, Authorization, Sign
from repro.authz.xacl import XACL_DTD, parse_xacl, serialize_xacl, xacl_document
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.workloads.scenarios import lab_authorizations

SAMPLE = """\
<xacl base="http://www.lab.com/">
  <authorization sign="-" type="R">
    <subject user-group="Foreign"/>
    <object uri="laboratory.xml"
            path="/laboratory//paper[./@category='private']"/>
  </authorization>
  <authorization sign="+" type="RW" action="read">
    <subject user-group="Public" ip="*" sym="*.it"/>
    <object uri="CSlab.xml" path="project[./@type='public']/manager"/>
  </authorization>
</xacl>
"""


class TestParsing:
    def test_basic_fields(self):
        auths = parse_xacl(SAMPLE)
        assert len(auths) == 2
        first = auths[0]
        assert first.sign is Sign.MINUS
        assert first.type is AuthType.RECURSIVE
        assert first.action == "read"
        assert first.subject.user_group == "Foreign"

    def test_base_uri_resolution(self):
        auths = parse_xacl(SAMPLE)
        assert auths[0].object.uri == "http://www.lab.com/laboratory.xml"
        assert auths[1].object.uri == "http://www.lab.com/CSlab.xml"

    def test_absolute_uri_not_rebased(self):
        text = (
            '<xacl base="http://a/"><authorization sign="+" type="L">'
            '<subject user-group="Public"/><object uri="http://b/d.xml"/>'
            "</authorization></xacl>"
        )
        assert parse_xacl(text)[0].object.uri == "http://b/d.xml"

    def test_subject_location_defaults(self):
        auths = parse_xacl(SAMPLE)
        assert str(auths[0].subject.ip) == "*.*.*.*"
        assert str(auths[1].subject.symbolic) == "*.it"

    def test_empty_xacl(self):
        assert parse_xacl("<xacl/>") == []

    @pytest.mark.parametrize(
        "bad,match",
        [
            ("<notxacl/>", "root element"),
            ("<xacl><other/></xacl>", "unexpected element"),
            (
                '<xacl><authorization sign="%" type="R">'
                '<subject user-group="P"/><object uri="d"/></authorization></xacl>',
                "sign",
            ),
            (
                '<xacl><authorization sign="+" type="X">'
                '<subject user-group="P"/><object uri="d"/></authorization></xacl>',
                "type",
            ),
            (
                '<xacl><authorization sign="+" type="R">'
                '<object uri="d"/></authorization></xacl>',
                "exactly one <subject>",
            ),
            (
                '<xacl><authorization sign="+" type="R">'
                '<subject user-group="P"/></authorization></xacl>',
                "exactly one <object>",
            ),
            (
                '<xacl><authorization sign="+" type="R">'
                '<subject/><object uri="d"/></authorization></xacl>',
                "user-group",
            ),
            (
                '<xacl><authorization sign="+" type="R">'
                '<subject user-group="P"/><object/></authorization></xacl>',
                "uri",
            ),
        ],
    )
    def test_malformed_xacl(self, bad, match):
        with pytest.raises(XACLError, match=match):
            parse_xacl(bad)


class TestSerialization:
    def test_round_trip(self):
        original = lab_authorizations()
        text = serialize_xacl(original)
        parsed = parse_xacl(text)
        assert len(parsed) == len(original)
        for a, b in zip(original, parsed):
            assert a.subject == b.subject
            assert a.object.uri == b.object.uri
            assert a.object.path == b.object.path
            assert a.sign == b.sign
            assert a.type == b.type

    def test_base_shortens_uris(self):
        original = lab_authorizations()
        text = serialize_xacl(original, base="http://www.lab.com/")
        assert 'uri="CSlab.xml"' in text
        parsed = parse_xacl(text)
        assert parsed[1].object.uri == original[1].object.uri

    def test_compact_form(self):
        text = serialize_xacl(lab_authorizations(), indent=False)
        assert "\n" not in text

    def test_xacl_documents_validate_against_xacl_dtd(self):
        document = xacl_document(lab_authorizations())
        report = validate(document, parse_dtd(XACL_DTD))
        assert report.valid, report.violations

    def test_dogfooding_parse_with_own_parser(self):
        # serialize -> parse as plain XML -> interpret as XACL
        from repro.xml.parser import parse_document

        text = serialize_xacl(lab_authorizations())
        document = parse_document(text)
        assert len(parse_xacl(document)) == 4
