"""Unit tests for the write/read policy-consistency checker.

The facade endpoint (auditing, metrics) is pinned in
``tests/server/test_update_api.py``; here the checker itself: which
nodes get flagged, how the open/closed read policy changes the
answer, and that a suggested repair actually repairs.
"""

from repro.authz.authorization import Authorization
from repro.authz.consistency import check_write_consistency
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.parser import parse_document

URI = "http://x/d.xml"
DOC = (
    "<d>"
    "<visible secret='s'>shown</visible>"
    "<hidden>not shown</hidden>"
    "</d>"
)


def check(read, write, **kwargs):
    document = parse_document(DOC, uri=URI)
    return check_write_consistency(
        document,
        uri=URI,
        read_instance=read,
        read_schema=[],
        write_instance=write,
        write_schema=[],
        hierarchy=SubjectHierarchy(),
        **kwargs,
    )


def read_grant(path, sign="+", type_="R"):
    return Authorization.build("Public", f"{URI}:{path}", sign, type_)


def write_grant(path, sign="+", type_="R"):
    return Authorization.build(
        "Public", f"{URI}:{path}", sign, type_, action="write"
    )


class TestFlagging:
    def test_consistent_policy_yields_no_findings(self):
        findings = check(
            [read_grant("//visible")], [write_grant("//visible")]
        )
        assert findings == []

    def test_write_on_hidden_node_is_flagged_in_document_order(self):
        findings = check([read_grant("//visible")], [write_grant("/d")])
        paths = [finding.node_path for finding in findings]
        # /d and /d/hidden (and its text parent chain) are writable but
        # unreadable; /d/visible and its attribute are fine.
        assert "/d/hidden" in paths
        assert "/d/visible" not in paths
        assert paths == sorted(paths, key=paths.index)  # document order

    def test_attributes_are_checked_too(self):
        findings = check(
            # The element is readable but its attribute is explicitly
            # denied: a write grant covering both flags the attribute.
            [read_grant("//visible"), read_grant("//visible/@secret", "-")],
            [write_grant("//visible")],
        )
        paths = [finding.node_path for finding in findings]
        assert any(path.endswith("@secret") for path in paths)
        assert "/d/visible" not in paths

    def test_negative_write_labels_never_flag(self):
        findings = check([], [write_grant("//hidden", sign="-")])
        assert findings == []

    def test_open_read_policy_exposes_unlabeled_nodes(self):
        # Closed: an unlabeled node is hidden -> a write grant on it is
        # inconsistent. Open: the same node is visible -> consistent.
        closed = check([], [write_grant("//hidden")], open_policy=False)
        assert any(f.node_path == "/d/hidden" for f in closed)
        opened = check([], [write_grant("//hidden")], open_policy=True)
        assert not any(f.node_path == "/d/hidden" for f in opened)


class TestRepairs:
    def test_repairs_only_when_requested(self):
        findings = check([], [write_grant("//hidden")])
        assert all(finding.repair is None for finding in findings)

    def test_repair_is_attributed_and_actually_repairs(self):
        findings = check(
            [],
            [write_grant("//hidden")],
            suggest_repairs=True,
            repair_subject=("carol", "10.0.0.3", "pc3.x"),
        )
        assert findings
        for finding in findings:
            assert finding.repair is not None
            assert "carol" in finding.repair.unparse()
        # Granting every suggested repair makes the findings vanish.
        repaired = check(
            [finding.repair for finding in findings],
            [write_grant("//hidden")],
        )
        assert repaired == []
