"""Tests for the authorization 5-tuple (Definition 3)."""

import pytest

from repro.errors import AuthorizationError
from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.subjects.hierarchy import SubjectSpec
from repro.xml.parser import parse_document


class TestAuthObject:
    def test_bare_uri(self):
        obj = AuthObject.parse("http://www.lab.com/CSlab.xml")
        assert obj.uri == "http://www.lab.com/CSlab.xml"
        assert obj.path is None

    def test_uri_with_path(self):
        obj = AuthObject.parse(
            "http://www.lab.com/CSlab.xml:/laboratory//paper"
        )
        assert obj.uri == "http://www.lab.com/CSlab.xml"
        assert obj.path == "/laboratory//paper"

    def test_relative_uri_with_path(self):
        obj = AuthObject.parse('CSlab.xml:project[./@type="internal"]')
        assert obj.uri == "CSlab.xml"
        assert obj.path == 'project[./@type="internal"]'

    def test_scheme_colon_not_a_separator(self):
        obj = AuthObject.parse("https://host/doc.xml")
        assert obj.path is None

    def test_double_slash_path(self):
        obj = AuthObject.parse("http://host/doc.xml://note")
        assert obj.uri == "http://host/doc.xml"
        assert obj.path == "//note"

    def test_unparse_round_trip(self):
        for text in (
            "doc.xml",
            "doc.xml:/a/b",
            "http://h/d.xml://x",
        ):
            assert AuthObject.parse(text).unparse() == text

    def test_empty_rejected(self):
        with pytest.raises(AuthorizationError):
            AuthObject.parse("")

    def test_empty_path_rejected(self):
        with pytest.raises(AuthorizationError):
            AuthObject.parse("doc.xml:")


class TestAuthType:
    def test_recursive_flag(self):
        assert AuthType.RECURSIVE.recursive
        assert AuthType.RECURSIVE_WEAK.recursive
        assert not AuthType.LOCAL.recursive
        assert not AuthType.LOCAL_WEAK.recursive

    def test_weak_flag(self):
        assert AuthType.LOCAL_WEAK.weak
        assert AuthType.RECURSIVE_WEAK.weak
        assert not AuthType.LOCAL.weak
        assert not AuthType.RECURSIVE.weak

    def test_from_string(self):
        assert AuthType("L") is AuthType.LOCAL
        assert AuthType("RW") is AuthType.RECURSIVE_WEAK


class TestAuthorizationBuild:
    def test_build_from_strings(self):
        auth = Authorization.build("Public", "doc.xml://a", "+", "R")
        assert auth.subject.user_group == "Public"
        assert auth.sign is Sign.PLUS
        assert auth.type is AuthType.RECURSIVE

    def test_build_from_triple(self):
        auth = Authorization.build(("Admin", "130.89.56.8", "*"), "doc.xml", "-", "L")
        assert str(auth.subject.ip) == "130.89.56.8"

    def test_build_from_spec(self):
        subject = SubjectSpec.parse("CS")
        auth = Authorization.build(subject, "doc.xml", "+", "LW")
        assert auth.subject is subject

    def test_sign_and_type_coerced(self):
        auth = Authorization(
            SubjectSpec.parse("Public"), AuthObject("d.xml"), "read", "+", "RW"
        )
        assert auth.sign is Sign.PLUS
        assert auth.type is AuthType.RECURSIVE_WEAK

    def test_empty_action_rejected(self):
        with pytest.raises(AuthorizationError):
            Authorization(
                SubjectSpec.parse("Public"), AuthObject("d.xml"), "", Sign.PLUS,
                AuthType.LOCAL,
            )

    def test_unparse_paper_notation(self):
        auth = Authorization.build(
            ("Foreign", "*", "*"),
            'lab.xml:/laboratory//paper[./@category="private"]',
            "-",
            "R",
        )
        rendered = auth.unparse()
        assert rendered.startswith("<<Foreign,")
        assert rendered.endswith(",read,-,R>")


class TestSelectNodes:
    def test_path_selection(self):
        document = parse_document("<a><b/><b/><c/></a>", uri="d.xml")
        auth = Authorization.build("Public", "d.xml://b", "+", "R")
        assert len(auth.select_nodes(document)) == 2

    def test_bare_uri_selects_root(self):
        document = parse_document("<a><b/></a>", uri="d.xml")
        auth = Authorization.build("Public", "d.xml", "+", "R")
        assert auth.select_nodes(document) == [document.root]

    def test_relative_mode_respected(self):
        document = parse_document("<a><b/></a>", uri="d.xml")
        auth = Authorization.build("Public", "d.xml:b", "+", "R")
        assert len(auth.select_nodes(document)) == 1
        assert auth.select_nodes(document, relative_mode="root") == []

    def test_compiled_path_cached(self):
        auth = Authorization.build("Public", "d.xml://b", "+", "R")
        assert auth.compiled_path() is auth.compiled_path()

    def test_compiled_none_for_bare_uri(self):
        auth = Authorization.build("Public", "d.xml", "+", "R")
        assert auth.compiled_path() is None
