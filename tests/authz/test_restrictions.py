"""Tests for credential, time- and history-based restrictions
(the paper's Section-8 future-work items)."""

import time

import pytest

from repro.authz.authorization import Authorization
from repro.authz.restrictions import CredentialClause, HistoryLimit, ValidityWindow
from repro.authz.store import AuthorizationStore
from repro.authz.xacl import parse_xacl, serialize_xacl
from repro.errors import AuthorizationError, XACLError
from repro.server.request import AccessRequest
from repro.server.service import AccessLimitExceeded, PolicyConfig, SecureXMLServer
from repro.subjects.hierarchy import Requester


class TestValidityWindow:
    def test_open_window_always_active(self):
        window = ValidityWindow()
        assert window.active(0)
        assert window.active(1e12)

    def test_bounds(self):
        window = ValidityWindow(not_before=100.0, not_after=200.0)
        assert not window.active(99.9)
        assert window.active(100.0)
        assert window.active(150.0)
        assert window.active(200.0)
        assert not window.active(200.1)

    def test_half_open(self):
        assert ValidityWindow(not_before=100.0).active(1e12)
        assert not ValidityWindow(not_after=100.0).active(101.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(AuthorizationError):
            ValidityWindow(not_before=200.0, not_after=100.0)

    def test_authorization_is_active(self):
        auth = Authorization.build(
            "Public", "d.xml", "+", "R",
            validity=ValidityWindow(not_before=100.0, not_after=200.0),
        )
        assert auth.is_active(150.0)
        assert not auth.is_active(250.0)
        assert auth.is_active(None)  # None = skip the check
        unrestricted = Authorization.build("Public", "d.xml", "+", "R")
        assert unrestricted.is_active(250.0)


class TestCredentialClause:
    def test_present(self):
        clause = CredentialClause("role")
        assert clause.satisfied({"role": "physician"})
        assert not clause.satisfied({})

    def test_equality(self):
        clause = CredentialClause("role", "=", "physician")
        assert clause.satisfied({"role": "physician"})
        assert not clause.satisfied({"role": "nurse"})
        assert not clause.satisfied({})

    def test_inequality_includes_missing(self):
        clause = CredentialClause("role", "!=", "intern")
        assert clause.satisfied({"role": "physician"})
        assert clause.satisfied({})
        assert not clause.satisfied({"role": "intern"})

    def test_numeric_comparisons(self):
        clause = CredentialClause("clearance", ">=", "3")
        assert clause.satisfied({"clearance": "5"})
        assert not clause.satisfied({"clearance": "2"})
        assert not clause.satisfied({"clearance": "high"})  # non-numeric
        low = CredentialClause("clearance", "<=", "3")
        assert low.satisfied({"clearance": "2"})

    def test_contains(self):
        clause = CredentialClause("dept", "contains", "card")
        assert clause.satisfied({"dept": "cardiology"})
        assert not clause.satisfied({"dept": "oncology"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(AuthorizationError):
            CredentialClause("k", "~", "v")

    def test_empty_key_rejected(self):
        with pytest.raises(AuthorizationError):
            CredentialClause("")

    def test_authorization_conjunction(self):
        auth = Authorization.build(
            "Public", "d.xml", "+", "R",
            credentials=(
                CredentialClause("role", "=", "physician"),
                CredentialClause("clearance", ">=", "3"),
            ),
        )
        assert auth.credentials_satisfied({"role": "physician", "clearance": "4"})
        assert not auth.credentials_satisfied({"role": "physician", "clearance": "1"})
        assert not auth.credentials_satisfied({"clearance": "4"})


class TestStoreFiltering:
    def test_validity_filter(self):
        store = AuthorizationStore()
        store.add(
            Authorization.build(
                "Public", "d.xml", "+", "R",
                validity=ValidityWindow(not_before=100.0, not_after=200.0),
            )
        )
        requester = Requester()
        assert store.applicable(requester, "d.xml", at=150.0)
        assert not store.applicable(requester, "d.xml", at=250.0)
        # at=None (the default) ignores windows.
        assert store.applicable(requester, "d.xml")

    def test_credential_filter(self):
        store = AuthorizationStore()
        store.add(
            Authorization.build(
                "Public", "d.xml", "+", "R",
                credentials=(CredentialClause("role", "=", "auditor"),),
            )
        )
        plain = Requester()
        auditor = plain.with_credentials(role="auditor")
        assert not store.applicable(plain, "d.xml")
        assert store.applicable(auditor, "d.xml")

    def test_with_credentials_merges(self):
        requester = Requester("u", "1.1.1.1", "h.x").with_credentials(a="1")
        richer = requester.with_credentials(b="2")
        assert richer.credential_map == {"a": "1", "b": "2"}
        assert requester.credential_map == {"a": "1"}  # original unchanged


class TestEndToEnd:
    URI = "http://x/d.xml"

    def build_server(self, **grant_kwargs):
        server = SecureXMLServer()
        server.publish_document(self.URI, "<d><x>payload</x></d>")
        server.grant(
            Authorization.build("Public", self.URI, "+", "R", **grant_kwargs)
        )
        return server

    def test_expired_grant_yields_empty_view(self):
        past = ValidityWindow(not_after=time.time() - 3600)
        server = self.build_server(validity=past)
        response = server.serve(AccessRequest(Requester(), self.URI))
        assert response.empty

    def test_active_grant_serves(self):
        window = ValidityWindow(
            not_before=time.time() - 10, not_after=time.time() + 3600
        )
        server = self.build_server(validity=window)
        response = server.serve(AccessRequest(Requester(), self.URI))
        assert "payload" in response.xml_text

    def test_credentialed_grant(self):
        server = self.build_server(
            credentials=(CredentialClause("badge", "present"),)
        )
        assert server.serve(AccessRequest(Requester(), self.URI)).empty
        badged = Requester().with_credentials(badge="b-17")
        assert "payload" in server.serve(AccessRequest(badged, self.URI)).xml_text

    def test_history_limit(self):
        server = self.build_server()
        server.set_policy(
            self.URI,
            PolicyConfig(history_limit=HistoryLimit(2, window_seconds=3600)),
        )
        requester = Requester("anonymous", "9.9.9.9", "h.x")
        server.serve(AccessRequest(requester, self.URI))
        server.serve(AccessRequest(requester, self.URI))
        with pytest.raises(AccessLimitExceeded):
            server.serve(AccessRequest(requester, self.URI))
        # The denial itself is audited.
        assert server.audit.tail(1)[0].outcome == "denied"

    def test_history_limit_is_per_requester(self):
        server = self.build_server()
        server.set_policy(
            self.URI, PolicyConfig(history_limit=HistoryLimit(1, 3600))
        )
        first = Requester("anonymous", "1.1.1.1", "a.x")
        second = Requester("anonymous", "2.2.2.2", "b.x")
        server.serve(AccessRequest(first, self.URI))
        server.serve(AccessRequest(second, self.URI))  # different machine: fine
        with pytest.raises(AccessLimitExceeded):
            server.serve(AccessRequest(first, self.URI))

    def test_history_limit_validation(self):
        with pytest.raises(AuthorizationError):
            HistoryLimit(0, 10)
        with pytest.raises(AuthorizationError):
            HistoryLimit(1, 0)


class TestXACLRestrictionMarkup:
    def test_round_trip(self):
        original = [
            Authorization.build(
                "Public",
                "http://x/d.xml://a",
                "+",
                "R",
                validity=ValidityWindow(not_before=100.0, not_after=200.0),
                credentials=(
                    CredentialClause("role", "=", "auditor"),
                    CredentialClause("clearance", ">=", "3"),
                ),
            )
        ]
        parsed = parse_xacl(serialize_xacl(original))
        assert parsed[0].validity == original[0].validity
        assert parsed[0].credentials == original[0].credentials

    def test_parse_validity(self):
        auths = parse_xacl(
            '<xacl><authorization sign="+" type="R">'
            '<subject user-group="Public"/><object uri="d.xml"/>'
            '<valid not-before="10" not-after="20"/>'
            "</authorization></xacl>"
        )
        assert auths[0].validity == ValidityWindow(10.0, 20.0)

    def test_parse_requires(self):
        auths = parse_xacl(
            '<xacl><authorization sign="+" type="R">'
            '<subject user-group="Public"/><object uri="d.xml"/>'
            '<requires key="role" op="=" value="x"/>'
            '<requires key="badge"/>'
            "</authorization></xacl>"
        )
        assert len(auths[0].credentials) == 2
        assert auths[0].credentials[1].op == "present"

    def test_bad_validity_rejected(self):
        with pytest.raises(XACLError, match="bad <valid>"):
            parse_xacl(
                '<xacl><authorization sign="+" type="R">'
                '<subject user-group="P"/><object uri="d"/>'
                '<valid not-before="abc"/>'
                "</authorization></xacl>"
            )

    def test_bad_requires_rejected(self):
        with pytest.raises(XACLError):
            parse_xacl(
                '<xacl><authorization sign="+" type="R">'
                '<subject user-group="P"/><object uri="d"/>'
                '<requires op="="/>'
                "</authorization></xacl>"
            )

    def test_double_valid_rejected(self):
        with pytest.raises(XACLError, match="at most one"):
            parse_xacl(
                '<xacl><authorization sign="+" type="R">'
                '<subject user-group="P"/><object uri="d"/>'
                "<valid/><valid/>"
                "</authorization></xacl>"
            )

    def test_xacl_with_restrictions_validates_against_dtd(self):
        from repro.authz.xacl import XACL_DTD, xacl_document
        from repro.dtd.parser import parse_dtd
        from repro.dtd.validator import validate

        document = xacl_document(
            [
                Authorization.build(
                    "Public", "d.xml", "+", "R",
                    validity=ValidityWindow(1.0, 2.0),
                    credentials=(CredentialClause("k"),),
                )
            ]
        )
        report = validate(document, parse_dtd(XACL_DTD))
        assert report.valid, report.violations
