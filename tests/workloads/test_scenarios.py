"""Tests for the paper's laboratory scenario construction."""

from repro.dtd.validator import validate
from repro.workloads.scenarios import (
    LAB_DOCUMENT_URI,
    LAB_DTD_URI,
    lab_authorizations,
    lab_scenario,
)
from repro.xpath.evaluator import select


class TestLabScenario:
    def test_document_is_valid(self, lab):
        report = validate(lab.document, lab.dtd)
        assert report.valid, report.violations

    def test_document_uri_and_doctype(self, lab):
        assert lab.document.uri == LAB_DOCUMENT_URI
        assert lab.document.system_id == LAB_DTD_URI
        assert lab.document.doctype_name == "laboratory"

    def test_paper_path_expressions_select(self, lab):
        document = lab.document
        assert len(select("/laboratory/project", document)) == 2
        assert len(select("/laboratory//flname", document)) == 2
        assert len(select('//paper[./@category="private"]', document)) == 2
        assert len(select('//paper[./@category="public"]', document)) == 1
        assert len(select("//fund/ancestor::project", document)) == 1

    def test_four_authorizations(self, lab):
        assert len(lab.authorizations) == 4
        signs = [a.sign.value for a in lab.authorizations]
        assert signs == ["-", "+", "+", "+"]
        types = [a.type.value for a in lab.authorizations]
        assert types == ["R", "RW", "R", "RW"]

    def test_first_authorization_is_schema_level(self, lab):
        assert lab.authorizations[0].object.uri == LAB_DTD_URI
        assert all(
            a.object.uri == LAB_DOCUMENT_URI for a in lab.authorizations[1:]
        )

    def test_directory_population(self, lab):
        directory = lab.hierarchy.directory
        assert directory.is_member("Tom", "Foreign")
        assert directory.is_member("Alice", "Admin")
        assert directory.is_user("Sam")
        assert not directory.is_member("Sam", "Foreign")

    def test_requesters(self, lab):
        assert lab.tom.hostname == "infosys.bld1.it"
        assert lab.alice.ip == "130.89.56.8"

    def test_store_contains_all(self, lab):
        assert len(lab.store) == 4
        assert set(lab.store.uris()) == {LAB_DTD_URI, LAB_DOCUMENT_URI}

    def test_scenarios_are_independent(self):
        first = lab_scenario()
        second = lab_scenario()
        assert first.document is not second.document
        assert first.store is not second.store

    def test_authorizations_factory_fresh(self):
        assert lab_authorizations() is not lab_authorizations()
