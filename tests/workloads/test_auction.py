"""Integration tests for the auction-site macro scenario."""

import pytest

from repro.dtd.loosen import validate_against_loosened
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.server.request import AccessRequest
from repro.workloads.auction import (
    AUCTION_DTD_TEXT,
    AUCTION_SITE_URI,
    auction_document,
    auction_scenario,
)
from repro.xpath.evaluator import select


@pytest.fixture(scope="module")
def scenario():
    return auction_scenario(seed=3)


def view_of(scenario, requester):
    return scenario.server.serve(AccessRequest(requester, AUCTION_SITE_URI))


class TestDocumentGeneration:
    def test_document_valid(self):
        document = auction_document(seed=1)
        report = validate(document, parse_dtd(AUCTION_DTD_TEXT))
        assert report.valid, report.violations

    def test_deterministic(self):
        from repro.xml.serializer import serialize

        assert serialize(auction_document(seed=9)) == serialize(
            auction_document(seed=9)
        )

    def test_size_knobs(self):
        from repro.xml.traversal import count_nodes

        small = auction_document(people=4, items=4, auctions=4, seed=2)
        large = auction_document(people=40, items=60, auctions=50, seed=2)
        assert count_nodes(large.root) > 4 * count_nodes(small.root)

    def test_id_integrity(self):
        # Every IDREF in bids/sellers/itemrefs resolves (validator checks).
        document = auction_document(seed=5, people=12, items=20, auctions=25)
        assert validate(document, parse_dtd(AUCTION_DTD_TEXT)).valid


class TestVisitorView:
    def test_sees_items_and_open_auctions(self, scenario):
        response = view_of(scenario, scenario.visitor)
        assert "<items>" in response.xml_text
        assert 'status="open"' in response.xml_text

    def test_no_closed_auctions(self, scenario):
        response = view_of(scenario, scenario.visitor)
        assert 'status="closed"' not in response.xml_text

    def test_no_reserves_no_income_no_emails(self, scenario):
        response = view_of(scenario, scenario.visitor)
        assert "<reserve>" not in response.xml_text
        assert "<income>" not in response.xml_text
        assert "@mail.example" not in response.xml_text

    def test_view_valid_against_loosened_dtd(self, scenario):
        from repro.xml.parser import parse_document

        response = view_of(scenario, scenario.visitor)
        view_doc = parse_document(response.xml_text)
        report = validate_against_loosened(view_doc, parse_dtd(AUCTION_DTD_TEXT))
        assert report.valid, report.violations


class TestMemberViews:
    def test_member_sees_own_income_only(self, scenario):
        document = scenario.document
        with_income = [
            person.get_attribute("id")
            for person in select('//person[profile/income]', document)
        ]
        assert with_income, "scenario must generate incomes"
        member = with_income[0]
        response = view_of(scenario, scenario.requester_for(member))
        own_income = select(
            f'//person[@id="{member}"]/profile/income', document
        )[0].text()
        assert own_income in response.xml_text
        # No other member's income value count appears beyond their own.
        others = [
            select(f'//person[@id="{pid}"]/profile/income', document)[0]
            for pid in with_income[1:]
        ]
        for income_node in others:
            owner = income_node.parent.parent.get_attribute("id")
            if owner == member:
                continue
            assert f"<income>{income_node.text()}</income>" not in response.xml_text or (
                income_node.text() == own_income
            )

    def test_seller_sees_own_reserves(self, scenario):
        document = scenario.document
        auction = select("//auction[reserve]", document)[0]
        seller = auction.get_attribute("seller")
        reserve = select("reserve", auction)[0].text()
        response = view_of(scenario, scenario.requester_for(seller))
        assert f"<reserve>{reserve}</reserve>" in response.xml_text

    def test_non_seller_never_sees_that_reserve(self, scenario):
        document = scenario.document
        auction = select("//auction[reserve]", document)[0]
        seller = auction.get_attribute("seller")
        auction_id = auction.get_attribute("id")
        other = next(pid for pid in scenario.person_ids if pid != seller)
        # Verify via the view's own structure: that auction has no reserve.
        from repro.xml.parser import parse_document

        response = view_of(scenario, scenario.requester_for(other))
        if not response.empty:
            view_doc = parse_document(response.xml_text)
            hits = select(f'//auction[@id="{auction_id}"]/reserve', view_doc)
            assert hits == []

    def test_bidder_sees_own_bids_in_closed_auctions(self, scenario):
        document = scenario.document
        closed_bids = select('//auction[@status="closed"]/bid', document)
        if not closed_bids:
            pytest.skip("seed produced no closed-auction bids")
        bidder = closed_bids[0].get_attribute("bidder")
        amount = select("amount", closed_bids[0])[0].text()
        response = view_of(scenario, scenario.requester_for(bidder))
        assert f"<amount>{amount}</amount>" in response.xml_text


class TestFraudTeamView:
    def test_sees_everything(self, scenario):
        response = view_of(scenario, scenario.fraud_officer)
        assert response.visible_nodes == response.total_nodes

    def test_closed_auctions_and_incomes_included(self, scenario):
        response = view_of(scenario, scenario.fraud_officer)
        assert 'status="closed"' in response.xml_text
        assert "<income>" in response.xml_text


class TestAudiencesOnAuctionSite:
    def test_audience_partition(self, scenario):
        from repro.server.analysis import audience_report

        report = audience_report(scenario.server, AUCTION_SITE_URI)
        # fraud officer alone at the top; anonymous among the rest.
        top = max(report.audiences, key=lambda a: a.visible_nodes)
        assert top.users == ["fraud-officer"]
        assert len(report.audiences) >= 3
