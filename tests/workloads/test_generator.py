"""Tests for the synthetic workload generators."""

from repro.subjects.users import Directory
from repro.workloads.generator import (
    build_workload,
    deep_document,
    populate_directory,
    requester_pool,
    synthetic_authorizations,
    synthetic_document,
    wide_document,
)
from repro.xml.serializer import serialize
from repro.xml.traversal import count_nodes, depth, iter_elements


class TestSyntheticDocuments:
    def test_node_count_close_to_target(self):
        for target in (100, 1000, 5000):
            document = synthetic_document(target)
            actual = count_nodes(document.root)
            assert 0.6 * target <= actual <= 1.3 * target

    def test_deterministic(self):
        assert serialize(synthetic_document(200, seed=5)) == serialize(
            synthetic_document(200, seed=5)
        )

    def test_elements_carry_kind_attribute(self):
        document = synthetic_document(200)
        kinds = {el.get_attribute("kind") for el in iter_elements(document.root)}
        assert kinds <= {"public", "internal", "private", "restricted", None}
        assert len(kinds - {None}) >= 2

    def test_fanout_controls_breadth(self):
        narrow = synthetic_document(500, fanout=2, seed=1)
        wide = synthetic_document(500, fanout=10, seed=1)
        assert len(list(wide.root.child_elements())) > len(
            list(narrow.root.child_elements())
        )

    def test_deep_document(self):
        document = deep_document(50)
        leaf_depths = [
            depth(el) for el in iter_elements(document.root) if not list(el.child_elements())
        ]
        # The deepest leaf is the 50th element: 49 element ancestors
        # plus the document node.
        assert max(leaf_depths) == 50

    def test_wide_document(self):
        document = wide_document(40)
        assert len(list(document.root.child_elements())) == 40


class TestSyntheticAuthorizations:
    def test_count_and_split(self):
        document = synthetic_document(300, seed=2)
        instance, schema = synthetic_authorizations(
            document, 40, seed=2, dtd_uri="d.dtd", schema_share=0.5
        )
        assert len(instance) + len(schema) == 40
        assert schema  # with share 0.5 over 40 draws, ~0 chance of none
        assert all(a.object.uri == "d.dtd" for a in schema)

    def test_no_schema_without_dtd_uri(self):
        document = synthetic_document(300, seed=2)
        instance, schema = synthetic_authorizations(document, 20, seed=2)
        assert schema == []
        assert len(instance) == 20

    def test_paths_select_nodes(self):
        document = synthetic_document(400, seed=3)
        instance, _ = synthetic_authorizations(document, 30, seed=3)
        selecting = sum(1 for a in instance if a.select_nodes(document))
        assert selecting >= len(instance) // 2

    def test_deterministic(self):
        document = synthetic_document(300, seed=4)
        first, _ = synthetic_authorizations(document, 10, seed=9)
        second, _ = synthetic_authorizations(document, 10, seed=9)
        assert [a.unparse() for a in first] == [a.unparse() for a in second]

    def test_denial_share_respected(self):
        document = synthetic_document(300, seed=5)
        all_plus, _ = synthetic_authorizations(document, 30, seed=5, denial_share=0.0)
        assert all(a.sign.value == "+" for a in all_plus)
        all_minus, _ = synthetic_authorizations(document, 30, seed=5, denial_share=1.0)
        assert all(a.sign.value == "-" for a in all_minus)


class TestDirectoryPopulation:
    def test_population_counts(self):
        directory = Directory()
        users, groups = populate_directory(directory, users=15, groups=5, seed=1)
        assert len(users) == 15
        assert len(groups) == 5
        for user in users:
            assert directory.is_user(user)

    def test_nesting_chain(self):
        directory = Directory()
        _, groups = populate_directory(directory, groups=4, nesting=2, seed=1)
        assert directory.is_member(groups[1], groups[0])
        assert directory.is_member(groups[2], groups[0])  # transitive

    def test_every_user_in_some_group(self):
        directory = Directory()
        users, groups = populate_directory(directory, users=10, seed=2)
        for user in users:
            assert any(directory.is_member(user, group) for group in groups)

    def test_requester_pool(self):
        pool = requester_pool(["u1", "u2", "u3"], seed=0)
        assert len(pool) == 3
        assert all(requester.ip.count(".") == 3 for requester in pool)
        assert requester_pool(["u1", "u2"], count=1)[0].user == "u1"


class TestBuildWorkload:
    def test_complete_workload(self):
        workload = build_workload(nodes=300, auth_count=12, seed=1)
        assert workload.document.root is not None
        assert len(workload.instance_auths) + len(workload.schema_auths) == 12
        assert len(workload.store) == 12
        assert workload.requesters

    def test_workload_views_computable(self):
        from repro.core.view import compute_view

        workload = build_workload(nodes=300, auth_count=12, seed=2)
        requester = workload.requesters[0]
        result = compute_view(
            workload.document,
            requester,
            workload.store,
            dtd_uri="http://bench.example/doc.dtd",
        )
        assert result.total_nodes > 0
