"""Tests for the DTD-driven instance generator."""

import pytest

from repro.errors import ReproError
from repro.dtd.generator import InstanceGenerator, generate_instance
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.xml.serializer import serialize
from repro.xml.traversal import count_nodes
from repro.workloads.scenarios import LAB_DTD_TEXT


class TestGeneratedValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_lab_instances_are_valid(self, seed):
        dtd = parse_dtd(LAB_DTD_TEXT)
        document = generate_instance(dtd, seed=seed)
        report = validate(document, dtd)
        assert report.valid, report.violations

    @pytest.mark.parametrize("seed", range(5))
    def test_id_idref_instances_are_valid(self, seed):
        dtd = parse_dtd(
            "<!ELEMENT a (b+)><!ELEMENT b EMPTY>"
            "<!ATTLIST b i ID #REQUIRED r IDREF #IMPLIED>"
        )
        document = generate_instance(dtd, seed=seed)
        assert validate(document, dtd).valid

    def test_recursive_dtd_terminates(self):
        dtd = parse_dtd("<!ELEMENT a (a?, b)><!ELEMENT b (#PCDATA)>")
        generator = InstanceGenerator(dtd, seed=1, max_depth=5)
        document = generator.document()
        assert validate(document, dtd).valid

    def test_choice_only_recursive_dtd_terminates(self):
        dtd = parse_dtd("<!ELEMENT a (a* | b)><!ELEMENT b EMPTY>")
        generator = InstanceGenerator(dtd, seed=2, max_depth=4)
        document = generator.document()
        assert document.root.name == "a"

    def test_enumerated_attributes_use_declared_tokens(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ATTLIST a t (x|y|z) #REQUIRED>")
        for seed in range(6):
            document = generate_instance(dtd, seed=seed)
            assert document.root.get_attribute("t") in ("x", "y", "z")

    def test_fixed_attribute_value_used(self):
        dtd = parse_dtd('<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1">')
        document = generate_instance(dtd, seed=0)
        assert document.root.get_attribute("v") == "1"


class TestGeneratorBehaviour:
    def test_deterministic_for_same_seed(self):
        dtd = parse_dtd(LAB_DTD_TEXT)
        first = serialize(generate_instance(dtd, seed=42))
        second = serialize(generate_instance(dtd, seed=42))
        assert first == second

    def test_different_seeds_differ(self):
        dtd = parse_dtd(LAB_DTD_TEXT)
        outputs = {serialize(generate_instance(dtd, seed=s)) for s in range(6)}
        assert len(outputs) > 1

    def test_repeat_factor_grows_documents(self):
        dtd = parse_dtd(LAB_DTD_TEXT)
        small = generate_instance(dtd, seed=7, repeat_factor=0.2)
        large = generate_instance(dtd, seed=7, repeat_factor=6.0)
        assert count_nodes(large.root) > count_nodes(small.root)

    def test_explicit_root_choice(self):
        dtd = parse_dtd("<!ELEMENT a (b?)><!ELEMENT b EMPTY>")
        document = InstanceGenerator(dtd, seed=0).document(root="b")
        assert document.root.name == "b"

    def test_unknown_element_rejected(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        with pytest.raises(ReproError, match="not declared"):
            InstanceGenerator(dtd).element("zzz")

    def test_negative_repeat_factor_rejected(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        with pytest.raises(ReproError):
            InstanceGenerator(dtd, repeat_factor=-1)

    def test_uri_and_doctype_recorded(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        document = generate_instance(dtd, uri="http://x/gen.xml")
        assert document.uri == "http://x/gen.xml"
        assert document.doctype_name == "a"
        assert document.dtd is dtd
