"""Tests for document validation against a DTD."""

import pytest

from repro.errors import ValidationError
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import apply_defaults, validate
from repro.xml.parser import parse_document

LAB_DTD = """
<!ELEMENT laboratory (project+)>
<!ATTLIST laboratory name CDATA #REQUIRED>
<!ELEMENT project (manager, paper*, fund?)>
<!ATTLIST project name CDATA #REQUIRED type (public|internal) #REQUIRED>
<!ELEMENT manager (#PCDATA)>
<!ELEMENT paper (#PCDATA)>
<!ATTLIST paper category (public|private) "public">
<!ELEMENT fund (#PCDATA)>
"""


def check(xml: str, dtd_text: str = LAB_DTD):
    return validate(parse_document(xml), parse_dtd(dtd_text))


class TestStructuralValidation:
    def test_valid_document(self):
        report = check(
            '<laboratory name="L"><project name="p" type="public">'
            "<manager>m</manager></project></laboratory>"
        )
        assert report.valid
        assert bool(report)

    def test_undeclared_element(self):
        report = check(
            '<laboratory name="L"><bogus/></laboratory>'
        )
        assert any("not declared" in v for v in report.violations)

    def test_content_model_violation(self):
        report = check(
            '<laboratory name="L"><project name="p" type="public">'
            "<fund>f</fund></project></laboratory>"
        )
        assert not report.valid
        assert any("manager" in v for v in report.violations)

    def test_text_in_element_content(self):
        report = check(
            '<laboratory name="L">stray text<project name="p" type="public">'
            "<manager>m</manager></project></laboratory>"
        )
        assert any("character data" in v for v in report.violations)

    def test_whitespace_in_element_content_ok(self):
        report = check(
            '<laboratory name="L">\n  <project name="p" type="public">'
            "<manager>m</manager></project>\n</laboratory>"
        )
        assert report.valid

    def test_doctype_name_mismatch(self):
        document = parse_document('<!DOCTYPE wrong SYSTEM "x"><laboratory/>')
        report = validate(document, parse_dtd("<!ELEMENT laboratory EMPTY>"))
        assert any("DOCTYPE" in v for v in report.violations)

    def test_empty_element_with_content(self):
        report = check("<a>text</a>", "<!ELEMENT a EMPTY>")
        assert any("EMPTY" in v for v in report.violations)

    def test_raise_on_error(self):
        with pytest.raises(ValidationError) as excinfo:
            validate(
                parse_document("<bogus/>"),
                parse_dtd("<!ELEMENT a EMPTY>"),
                raise_on_error=True,
            )
        assert excinfo.value.violations

    def test_no_dtd_available(self):
        report = validate(parse_document("<a/>"))
        assert any("no DTD" in v for v in report.violations)

    def test_validate_bare_element(self):
        from repro.xml.parser import parse_fragment

        report = validate(parse_fragment("<a/>"), parse_dtd("<!ELEMENT a EMPTY>"))
        assert report.valid


def raise_on_error_shim(xml, dtd_text):
    return validate(parse_document(xml), parse_dtd(dtd_text), raise_on_error=True)


class TestAttributeValidation:
    def test_missing_required_attribute(self):
        report = check(
            '<laboratory><project name="p" type="public">'
            "<manager>m</manager></project></laboratory>"
        )
        assert any("required attribute 'name'" in v for v in report.violations)

    def test_undeclared_attribute(self):
        report = check(
            '<laboratory name="L" extra="x"><project name="p" type="public">'
            "<manager>m</manager></project></laboratory>"
        )
        assert any("'extra' is not declared" in v for v in report.violations)

    def test_enumeration_violation(self):
        report = check(
            '<laboratory name="L"><project name="p" type="weird">'
            "<manager>m</manager></project></laboratory>"
        )
        assert any("'weird' not in" in v for v in report.violations)

    def test_fixed_value_mismatch(self):
        report = check(
            '<a v="2.0"/>', '<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1.0">'
        )
        assert any("#FIXED" in v for v in report.violations)

    def test_fixed_value_match_ok(self):
        report = check(
            '<a v="1.0"/>', '<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1.0">'
        )
        assert report.valid

    def test_nmtoken_validation(self):
        dtd = "<!ELEMENT a EMPTY><!ATTLIST a n NMTOKEN #REQUIRED>"
        assert check('<a n="ok-token"/>', dtd).valid
        assert not check('<a n="two words"/>', dtd).valid

    def test_nmtokens_validation(self):
        dtd = "<!ELEMENT a EMPTY><!ATTLIST a n NMTOKENS #REQUIRED>"
        assert check('<a n="one two three"/>', dtd).valid
        assert not check('<a n="bad@token"/>', dtd).valid


class TestIdValidation:
    DTD = (
        "<!ELEMENT a (b*)><!ELEMENT b EMPTY>"
        "<!ATTLIST b i ID #REQUIRED r IDREF #IMPLIED rs IDREFS #IMPLIED>"
    )

    def test_unique_ids_ok(self):
        assert check('<a><b i="x"/><b i="y" r="x"/></a>', self.DTD).valid

    def test_duplicate_id(self):
        report = check('<a><b i="x"/><b i="x"/></a>', self.DTD)
        assert any("duplicate ID" in v for v in report.violations)

    def test_dangling_idref(self):
        report = check('<a><b i="x" r="nope"/></a>', self.DTD)
        assert any("does not match any ID" in v for v in report.violations)

    def test_idrefs_each_checked(self):
        report = check('<a><b i="x" rs="x nope"/></a>', self.DTD)
        assert any("nope" in v for v in report.violations)

    def test_id_not_a_name(self):
        report = check('<a><b i="1bad"/></a>', self.DTD)
        assert any("is not a name" in v for v in report.violations)

    def test_id_checks_can_be_disabled(self):
        document = parse_document('<a><b i="x" r="nope"/></a>')
        report = validate(document, parse_dtd(self.DTD), check_ids=False)
        assert report.valid


class TestApplyDefaults:
    DTD = (
        "<!ELEMENT a EMPTY>"
        '<!ATTLIST a k CDATA "dflt" f CDATA #FIXED "1" r CDATA #REQUIRED>'
    )

    def test_defaults_added(self):
        document = parse_document('<a r="x"/>')
        added = apply_defaults(document, parse_dtd(self.DTD))
        assert added == 2
        assert document.root.get_attribute("k") == "dflt"
        assert document.root.get_attribute("f") == "1"

    def test_existing_values_kept(self):
        document = parse_document('<a r="x" k="mine"/>')
        apply_defaults(document, parse_dtd(self.DTD))
        assert document.root.get_attribute("k") == "mine"

    def test_required_never_fabricated(self):
        document = parse_document("<a/>")
        apply_defaults(document, parse_dtd(self.DTD))
        assert not document.root.has_attribute("r")

    def test_no_dtd_noop(self):
        document = parse_document("<a/>")
        assert apply_defaults(document) == 0


class TestNormalizeAttributes:
    DTD = (
        "<!ELEMENT a EMPTY>"
        "<!ATTLIST a tok NMTOKEN #IMPLIED toks NMTOKENS #IMPLIED "
        "ref IDREF #IMPLIED raw CDATA #IMPLIED>"
    )

    def normalize(self, xml):
        from repro.dtd.validator import normalize_attributes

        document = parse_document(xml)
        changed = normalize_attributes(document, parse_dtd(self.DTD))
        return document.root, changed

    def test_tokenized_values_collapsed(self):
        root, changed = self.normalize('<a toks="  one   two  three "/>')
        assert root.get_attribute("toks") == "one two three"
        assert changed == 1

    def test_single_token_trimmed(self):
        root, _ = self.normalize('<a tok="  word  "/>')
        assert root.get_attribute("tok") == "word"

    def test_cdata_left_alone(self):
        root, changed = self.normalize('<a raw="  keep   spacing  "/>')
        assert root.get_attribute("raw") == "  keep   spacing  "
        assert changed == 0

    def test_idref_normalized(self):
        root, _ = self.normalize('<a ref=" x1 "/>')
        assert root.get_attribute("ref") == "x1"

    def test_already_normalized_unchanged(self):
        _, changed = self.normalize('<a toks="one two"/>')
        assert changed == 0

    def test_no_dtd_noop(self):
        from repro.dtd.validator import normalize_attributes

        document = parse_document('<a toks="  x  "/>')
        assert normalize_attributes(document) == 0

    def test_normalization_fixes_validation(self):
        # ' word ' fails NMTOKEN validation raw, passes normalized.
        from repro.dtd.validator import normalize_attributes

        document = parse_document('<a tok=" word "/>')
        dtd = parse_dtd(self.DTD)
        assert not validate(document, dtd).valid
        normalize_attributes(document, dtd)
        assert validate(document, dtd).valid
