"""Tests for the Glushkov content-model automaton."""

import pytest

from repro.dtd.content_model import compile_model, explain_mismatch, match_children
from repro.dtd.parser import parse_content_model


def accepts(model_text: str, sequence: list[str]) -> bool:
    return match_children(parse_content_model(model_text), sequence)


class TestSequences:
    def test_exact_sequence(self):
        assert accepts("(a, b, c)", ["a", "b", "c"])
        assert not accepts("(a, b, c)", ["a", "c", "b"])
        assert not accepts("(a, b, c)", ["a", "b"])
        assert not accepts("(a, b, c)", ["a", "b", "c", "c"])

    def test_optional_member(self):
        assert accepts("(a, b?, c)", ["a", "b", "c"])
        assert accepts("(a, b?, c)", ["a", "c"])
        assert not accepts("(a, b?, c)", ["a", "b", "b", "c"])

    def test_star_member(self):
        assert accepts("(a, b*, c)", ["a", "c"])
        assert accepts("(a, b*, c)", ["a", "b", "b", "b", "c"])

    def test_plus_member(self):
        assert not accepts("(a+, b)", ["b"])
        assert accepts("(a+, b)", ["a", "b"])
        assert accepts("(a+, b)", ["a", "a", "b"])

    def test_empty_sequence_vs_nullable(self):
        assert accepts("(a?, b?)", [])
        assert not accepts("(a, b?)", [])


class TestChoices:
    def test_simple_choice(self):
        assert accepts("(a | b)", ["a"])
        assert accepts("(a | b)", ["b"])
        assert not accepts("(a | b)", ["a", "b"])
        assert not accepts("(a | b)", [])

    def test_choice_star(self):
        assert accepts("(a | b)*", [])
        assert accepts("(a | b)*", ["a", "b", "a", "a"])

    def test_choice_plus(self):
        assert not accepts("(a | b)+", [])
        assert accepts("(a | b)+", ["b", "b"])


class TestNestedGroups:
    def test_paper_like_model(self):
        model = "(manager, paper*, fund?)"
        assert accepts(model, ["manager"])
        assert accepts(model, ["manager", "paper", "paper", "fund"])
        assert accepts(model, ["manager", "fund"])
        assert not accepts(model, ["paper"])
        assert not accepts(model, ["manager", "fund", "paper"])

    def test_nested_star_group(self):
        model = "(a, (b, c)*, d)"
        assert accepts(model, ["a", "d"])
        assert accepts(model, ["a", "b", "c", "b", "c", "d"])
        assert not accepts(model, ["a", "b", "d"])

    def test_nested_choice_in_sequence(self):
        model = "((a | b), c)"
        assert accepts(model, ["a", "c"])
        assert accepts(model, ["b", "c"])
        assert not accepts(model, ["a", "b", "c"])

    def test_deeply_nested(self):
        model = "((a?, (b | c)+)*, d)"
        assert accepts(model, ["d"])
        assert accepts(model, ["a", "b", "d"])
        assert accepts(model, ["b", "c", "a", "b", "d"])
        assert not accepts(model, ["a", "d"])

    def test_same_name_twice_in_model(self):
        # Glushkov positions distinguish the two occurrences of 'a'.
        model = "(a, b, a)"
        assert accepts(model, ["a", "b", "a"])
        assert not accepts(model, ["a", "b"])
        assert not accepts(model, ["a", "a", "b"])


class TestSpecialKinds:
    def test_empty_model(self):
        from repro.dtd.model import ContentModel, ModelKind

        model = ContentModel(ModelKind.EMPTY)
        assert match_children(model, [])
        assert not match_children(model, ["a"])

    def test_any_model(self):
        from repro.dtd.model import ContentModel, ModelKind

        model = ContentModel(ModelKind.ANY)
        assert match_children(model, [])
        assert match_children(model, ["whatever", "goes"])

    def test_mixed_model(self):
        from repro.dtd.model import ContentModel, ModelKind

        model = ContentModel(ModelKind.MIXED, mixed_names=("a", "b"))
        assert match_children(model, [])
        assert match_children(model, ["a", "a", "b"])
        assert not match_children(model, ["c"])

    def test_compile_returns_none_for_special_kinds(self):
        from repro.dtd.model import ContentModel, ModelKind

        assert compile_model(ContentModel(ModelKind.EMPTY)) is None
        assert compile_model(ContentModel(ModelKind.ANY)) is None


class TestAutomatonInternals:
    def test_compilation_cached(self):
        model = parse_content_model("(a, b)")
        assert compile_model(model) is compile_model(model)

    def test_unknown_name_rejected_quickly(self):
        assert not accepts("(a, b)", ["zzz"])

    def test_expected_after(self):
        automaton = compile_model(parse_content_model("(a, (b | c), d)"))
        assert automaton.expected_after(["a"], 1) == {"b", "c"}
        assert automaton.expected_after([], 0) == {"a"}

    def test_explain_mismatch_wrong_child(self):
        model = parse_content_model("(a, b)")
        message = explain_mismatch(model, ["a", "z"])
        assert "<z>" in message and "'b'" in message

    def test_explain_mismatch_too_short(self):
        model = parse_content_model("(a, b)")
        message = explain_mismatch(model, ["a"])
        assert "ended too early" in message

    def test_explain_accepting(self):
        model = parse_content_model("(a)")
        assert explain_mismatch(model, ["a"]) == "content matches"
