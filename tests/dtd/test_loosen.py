"""Tests for DTD loosening (paper, Section 6.2)."""

from repro.dtd.loosen import loosen, validate_against_loosened
from repro.dtd.model import DefaultKind, Occurrence
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.xml.parser import parse_document

DTD_TEXT = """
<!ELEMENT laboratory (project+)>
<!ATTLIST laboratory name CDATA #REQUIRED>
<!ELEMENT project (manager, paper*, fund?)>
<!ATTLIST project name CDATA #REQUIRED type CDATA #IMPLIED>
<!ELEMENT manager (#PCDATA)>
<!ELEMENT paper (#PCDATA)>
<!ELEMENT fund (#PCDATA)>
"""


class TestLoosenTransformation:
    def test_required_attribute_becomes_implied(self):
        loosened = loosen(parse_dtd(DTD_TEXT))
        attr = loosened.element("laboratory").attributes["name"]
        assert attr.default_kind is DefaultKind.IMPLIED

    def test_implied_attribute_unchanged(self):
        loosened = loosen(parse_dtd(DTD_TEXT))
        attr = loosened.element("project").attributes["type"]
        assert attr.default_kind is DefaultKind.IMPLIED

    def test_once_becomes_optional(self):
        loosened = loosen(parse_dtd(DTD_TEXT))
        items = loosened.element("project").content.particle.items
        assert items[0].occurrence is Occurrence.OPTIONAL  # manager

    def test_plus_becomes_star(self):
        loosened = loosen(parse_dtd(DTD_TEXT))
        particle = loosened.element("laboratory").content.particle
        assert particle.occurrence is Occurrence.ZERO_OR_MORE

    def test_star_and_optional_unchanged(self):
        loosened = loosen(parse_dtd(DTD_TEXT))
        items = loosened.element("project").content.particle.items
        assert items[1].occurrence is Occurrence.ZERO_OR_MORE  # paper*
        assert items[2].occurrence is Occurrence.OPTIONAL      # fund?

    def test_original_not_mutated(self):
        original = parse_dtd(DTD_TEXT)
        loosen(original)
        assert original.element("laboratory").attributes["name"].required

    def test_fixed_attribute_survives(self):
        dtd = parse_dtd('<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1">')
        loosened = loosen(dtd)
        assert loosened.element("a").attributes["v"].default_kind is DefaultKind.FIXED

    def test_empty_any_mixed_unchanged(self):
        dtd = parse_dtd(
            "<!ELEMENT e EMPTY><!ELEMENT a ANY><!ELEMENT m (#PCDATA | e)*>"
        )
        loosened = loosen(dtd)
        assert loosened.element("e").content.unparse() == "EMPTY"
        assert loosened.element("a").content.unparse() == "ANY"
        assert loosened.element("m").content.unparse() == "(#PCDATA | e)*"


class TestLoosenedValidity:
    def test_pruned_document_valid_under_loosened(self):
        # Simulates a view where manager and the name attribute were pruned.
        pruned = parse_document(
            "<laboratory><project><paper>p</paper></project></laboratory>"
        )
        dtd = parse_dtd(DTD_TEXT)
        assert not validate(pruned, dtd).valid
        assert validate(pruned, loosen(dtd)).valid

    def test_bare_root_valid_under_loosened(self):
        pruned = parse_document("<laboratory/>")
        dtd = parse_dtd(DTD_TEXT)
        assert not validate(pruned, dtd).valid
        assert validate(pruned, loosen(dtd)).valid

    def test_helper_uses_attached_dtd(self):
        document = parse_document("<laboratory/>")
        document.dtd = parse_dtd(DTD_TEXT)
        assert validate_against_loosened(document).valid

    def test_helper_reports_missing_dtd(self):
        report = validate_against_loosened(parse_document("<a/>"))
        assert not report.valid

    def test_loosening_is_idempotent(self):
        dtd = parse_dtd(DTD_TEXT)
        once = loosen(dtd)
        twice = loosen(once)
        for name in dtd.elements:
            assert (
                once.element(name).content.unparse()
                == twice.element(name).content.unparse()
            )
