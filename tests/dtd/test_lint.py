"""Tests for determinism checking and DTD linting."""

import pytest

from repro.dtd.content_model import check_deterministic
from repro.dtd.parser import parse_content_model, parse_dtd
from repro.dtd.validator import lint_dtd
from repro.workloads.scenarios import LAB_DTD_TEXT


class TestDeterminism:
    @pytest.mark.parametrize(
        "model",
        [
            "(a, b, c)",
            "(a?, b?, c?)",
            "(a | b | c)",
            "(a, (b | c)*, d?)",
            "(manager, paper*, fund?)",
            "(a, a)",          # consecutive same names: fine, no choice
            "(a, b, a)",
            "(a+, b)",
        ],
    )
    def test_deterministic_models(self, model):
        assert check_deterministic(parse_content_model(model)) is None

    @pytest.mark.parametrize(
        "model,offender",
        [
            ("(a?, a)", "a"),           # the spec's example shape
            ("((a | b)*, a)", "a"),
            ("((a, b) | (a, c))", "a"),
            ("(a*, a)", "a"),
            ("((b?, a) | a)", "a"),
        ],
    )
    def test_nondeterministic_models(self, model, offender):
        assert check_deterministic(parse_content_model(model)) == offender

    def test_special_kinds_trivially_deterministic(self):
        from repro.dtd.model import ContentModel, ModelKind

        assert check_deterministic(ContentModel(ModelKind.EMPTY)) is None
        assert check_deterministic(ContentModel(ModelKind.ANY)) is None
        assert check_deterministic(
            ContentModel(ModelKind.MIXED, mixed_names=("a", "b"))
        ) is None


class TestLintDtd:
    def test_clean_dtd(self):
        assert lint_dtd(parse_dtd(LAB_DTD_TEXT)) == []

    def test_nondeterministic_model_reported(self):
        problems = lint_dtd(
            parse_dtd("<!ELEMENT a (b?, b)><!ELEMENT b EMPTY>")
        )
        assert any("not deterministic" in p for p in problems)

    def test_undeclared_child_reported(self):
        problems = lint_dtd(parse_dtd("<!ELEMENT a (ghost?)>"))
        assert any("never declared" in p for p in problems)

    def test_multiple_id_attributes_reported(self):
        problems = lint_dtd(
            parse_dtd(
                "<!ELEMENT a EMPTY>"
                "<!ATTLIST a i1 ID #IMPLIED i2 ID #IMPLIED>"
            )
        )
        assert any("more than one ID" in p for p in problems)

    def test_mixed_content_children_checked(self):
        problems = lint_dtd(parse_dtd("<!ELEMENT a (#PCDATA | ghost)*>"))
        assert any("ghost" in p for p in problems)
