"""Tests for the DTD parser."""

import pytest

from repro.errors import DTDSyntaxError
from repro.dtd.model import (
    AttributeType,
    ChoiceParticle,
    DefaultKind,
    ModelKind,
    NameParticle,
    Occurrence,
    SequenceParticle,
)
from repro.dtd.parser import parse_content_model, parse_dtd


class TestElementDeclarations:
    def test_empty(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        assert dtd.element("a").content.kind is ModelKind.EMPTY

    def test_any(self):
        dtd = parse_dtd("<!ELEMENT a ANY>")
        assert dtd.element("a").content.kind is ModelKind.ANY

    def test_pcdata_only(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        model = dtd.element("a").content
        assert model.kind is ModelKind.MIXED
        assert model.mixed_names == ()

    def test_mixed_with_names(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA | b | c)*>")
        model = dtd.element("a").content
        assert model.kind is ModelKind.MIXED
        assert model.mixed_names == ("b", "c")

    def test_mixed_with_names_requires_star(self):
        with pytest.raises(DTDSyntaxError, match=r"\)\*"):
            parse_dtd("<!ELEMENT a (#PCDATA | b)>")

    def test_mixed_duplicate_name_rejected(self):
        with pytest.raises(DTDSyntaxError, match="duplicate"):
            parse_dtd("<!ELEMENT a (#PCDATA | b | b)*>")

    def test_sequence(self):
        dtd = parse_dtd("<!ELEMENT a (b, c, d)>")
        particle = dtd.element("a").content.particle
        assert isinstance(particle, SequenceParticle)
        assert [item.name for item in particle.items] == ["b", "c", "d"]

    def test_choice(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)>")
        particle = dtd.element("a").content.particle
        assert isinstance(particle, ChoiceParticle)

    def test_occurrence_indicators(self):
        dtd = parse_dtd("<!ELEMENT a (b?, c*, d+, e)>")
        items = dtd.element("a").content.particle.items
        assert [item.occurrence for item in items] == [
            Occurrence.OPTIONAL,
            Occurrence.ZERO_OR_MORE,
            Occurrence.ONE_OR_MORE,
            Occurrence.ONCE,
        ]

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT a (b, (c | d)*, e?)>")
        particle = dtd.element("a").content.particle
        inner = particle.items[1]
        assert isinstance(inner, ChoiceParticle)
        assert inner.occurrence is Occurrence.ZERO_OR_MORE

    def test_single_name_group_collapses(self):
        model = parse_content_model("(b)")
        assert isinstance(model.particle, NameParticle)

    def test_group_occurrence_preserved(self):
        model = parse_content_model("(b)+")
        assert isinstance(model.particle, SequenceParticle)
        assert model.particle.occurrence is Occurrence.ONE_OR_MORE

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDSyntaxError, match="cannot mix"):
            parse_dtd("<!ELEMENT a (b, c | d)>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDSyntaxError, match="duplicate declaration"):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>")


class TestAttlistDeclarations:
    def test_cdata_required(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a name CDATA #REQUIRED>"
        )
        attr = dtd.element("a").attributes["name"]
        assert attr.type is AttributeType.CDATA
        assert attr.default_kind is DefaultKind.REQUIRED
        assert attr.required

    def test_implied(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ATTLIST a x CDATA #IMPLIED>")
        assert not dtd.element("a").attributes["x"].required

    def test_fixed(self):
        dtd = parse_dtd('<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1.0">')
        attr = dtd.element("a").attributes["v"]
        assert attr.default_kind is DefaultKind.FIXED
        assert attr.default_value == "1.0"

    def test_plain_default(self):
        dtd = parse_dtd('<!ELEMENT a EMPTY><!ATTLIST a k CDATA "dflt">')
        attr = dtd.element("a").attributes["k"]
        assert attr.default_kind is DefaultKind.DEFAULT
        assert attr.default_value == "dflt"

    def test_enumeration(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a t (public|internal|private) #REQUIRED>"
        )
        attr = dtd.element("a").attributes["t"]
        assert attr.type is AttributeType.ENUMERATION
        assert attr.enumeration == ("public", "internal", "private")

    def test_enumeration_default_must_be_member(self):
        with pytest.raises(DTDSyntaxError, match="not among"):
            parse_dtd('<!ELEMENT a EMPTY><!ATTLIST a t (x|y) "z">')

    def test_id_idref_types(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY>"
            "<!ATTLIST a i ID #REQUIRED r IDREF #IMPLIED rs IDREFS #IMPLIED>"
        )
        attrs = dtd.element("a").attributes
        assert attrs["i"].type is AttributeType.ID
        assert attrs["r"].type is AttributeType.IDREF
        assert attrs["rs"].type is AttributeType.IDREFS

    def test_nmtoken_types(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a n NMTOKEN #IMPLIED ns NMTOKENS #IMPLIED>"
        )
        attrs = dtd.element("a").attributes
        assert attrs["n"].type is AttributeType.NMTOKEN
        assert attrs["ns"].type is AttributeType.NMTOKENS

    def test_notation_type(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a fmt NOTATION (gif|png) #IMPLIED>"
        )
        attr = dtd.element("a").attributes["fmt"]
        assert attr.type is AttributeType.NOTATION
        assert attr.enumeration == ("gif", "png")

    def test_attlist_before_element(self):
        dtd = parse_dtd("<!ATTLIST a x CDATA #IMPLIED><!ELEMENT a EMPTY>")
        assert dtd.element("a").content.kind is ModelKind.EMPTY
        assert "x" in dtd.element("a").attributes

    def test_first_attribute_declaration_binding(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY>"
            "<!ATTLIST a x CDATA #REQUIRED>"
            "<!ATTLIST a x CDATA #IMPLIED>"
        )
        assert dtd.element("a").attributes["x"].required

    def test_multiple_attributes_one_attlist(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY>"
            "<!ATTLIST a\n  x CDATA #REQUIRED\n  y (u|v) \"u\"\n  z ID #IMPLIED>"
        )
        assert list(dtd.element("a").attributes) == ["x", "y", "z"]


class TestEntities:
    def test_general_entity(self):
        dtd = parse_dtd('<!ENTITY who "world">')
        assert dtd.general_entities["who"] == "world"

    def test_char_refs_resolved_in_entity_value(self):
        dtd = parse_dtd('<!ENTITY amp2 "&#38;">')
        assert dtd.general_entities["amp2"] == "&"

    def test_parameter_entity_expansion(self):
        dtd = parse_dtd(
            '<!ENTITY % common "name CDATA #REQUIRED">'
            "<!ELEMENT a EMPTY><!ATTLIST a %common;>"
        )
        assert dtd.element("a").attributes["name"].required

    def test_parameter_entity_cycle_detected(self):
        with pytest.raises(DTDSyntaxError, match="expansion limit|cycle"):
            parse_dtd(
                '<!ENTITY % x "%y;"><!ENTITY % y "%x;"><!ELEMENT a (%x;)>'
            )

    def test_unknown_parameter_entity(self):
        with pytest.raises(DTDSyntaxError, match="unknown parameter entity"):
            parse_dtd("<!ELEMENT a (%nope;)>")

    def test_external_entity_recorded_empty(self):
        dtd = parse_dtd('<!ENTITY ext SYSTEM "http://x/chunk.xml">')
        assert dtd.general_entities["ext"] == ""

    def test_unparsed_entity_with_ndata(self):
        dtd = parse_dtd(
            '<!NOTATION gif SYSTEM "image/gif">'
            '<!ENTITY pic SYSTEM "p.gif" NDATA gif>'
        )
        assert "pic" in dtd.general_entities
        assert "gif" in dtd.notations

    def test_first_entity_declaration_binding(self):
        dtd = parse_dtd('<!ENTITY e "first"><!ENTITY e "second">')
        assert dtd.general_entities["e"] == "first"


class TestMisc:
    def test_comments_and_pis_skipped(self):
        dtd = parse_dtd(
            "<!-- a comment -->\n<?pi data?>\n<!ELEMENT a EMPTY>"
        )
        assert dtd.element("a") is not None

    def test_notation_declaration(self):
        dtd = parse_dtd('<!NOTATION tex PUBLIC "+//TeX//EN">')
        assert "tex" in dtd.notations

    def test_error_position_reported(self):
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd("<!ELEMENT a EMPTY>\n<!BOGUS>")
        assert excinfo.value.line == 2

    def test_uri_recorded(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>", uri="http://x/a.dtd")
        assert dtd.uri == "http://x/a.dtd"

    def test_root_candidates(self):
        dtd = parse_dtd(
            "<!ELEMENT root (mid+)><!ELEMENT mid (leaf)><!ELEMENT leaf EMPTY>"
        )
        assert dtd.root_candidates() == ["root"]

    def test_root_candidates_cyclic_fallback(self):
        dtd = parse_dtd("<!ELEMENT a (b?)><!ELEMENT b (a?)>")
        assert set(dtd.root_candidates()) == {"a", "b"}
