"""Tests for the DTD labeled-tree (Figure 1b) and DTD serialization."""

from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd, serialize_element_decl
from repro.dtd.tree import dtd_tree, render_tree
from repro.workloads.scenarios import LAB_DTD_TEXT


class TestDtdTree:
    def test_root_and_children(self):
        tree = dtd_tree(parse_dtd(LAB_DTD_TEXT))
        assert tree.name == "laboratory"
        assert tree.kind == "element"
        child_names = [child.name for child in tree.children]
        assert child_names[0] == "name"  # attribute first
        assert "project" in child_names

    def test_attribute_nodes_marked(self):
        tree = dtd_tree(parse_dtd(LAB_DTD_TEXT))
        name_node = tree.children[0]
        assert name_node.kind == "attribute"
        assert name_node.cardinality == ""  # required

    def test_implied_attribute_cardinality(self):
        tree = dtd_tree(parse_dtd(LAB_DTD_TEXT))
        project = next(c for c in tree.children if c.name == "project")
        paper = next(c for c in project.children if c.name == "paper")
        type_attr = next(c for c in paper.children if c.name == "type")
        assert type_attr.cardinality == "?"

    def test_cardinality_labels_on_arcs(self):
        tree = dtd_tree(parse_dtd(LAB_DTD_TEXT))
        project = next(c for c in tree.children if c.name == "project")
        assert project.cardinality == "+"
        cards = {c.name: c.cardinality for c in project.children}
        assert cards["manager"] == ""
        assert cards["paper"] == "*"
        assert cards["fund"] == "?"

    def test_counts_match_figure(self):
        tree = dtd_tree(parse_dtd(LAB_DTD_TEXT))
        assert tree.element_count() == 9   # laboratory..fund, title, authors
        assert tree.attribute_count() == 7

    def test_recursive_dtd_cut_off(self):
        tree = dtd_tree(parse_dtd("<!ELEMENT a (b?)><!ELEMENT b (a?)>"), root="a")
        b = tree.children[0]
        inner_a = b.children[0]
        assert inner_a.recursive
        assert inner_a.children == []

    def test_nested_group_cardinality_combination(self):
        tree = dtd_tree(parse_dtd("<!ELEMENT a ((b, c?)*, d+)><!ELEMENT b EMPTY>"
                                  "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"), root="a")
        cards = {c.name: c.cardinality for c in tree.children}
        assert cards["b"] == "*"
        assert cards["c"] == "*"   # '?' inside '*' is effectively '*'
        assert cards["d"] == "+"

    def test_mixed_content_children(self):
        tree = dtd_tree(parse_dtd("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>"),
                        root="a")
        assert tree.children[0].name == "b"
        assert tree.children[0].cardinality == "*"

    def test_render_tree_shapes(self):
        rendered = render_tree(dtd_tree(parse_dtd(LAB_DTD_TEXT)))
        assert "(laboratory)" in rendered            # circle = element
        assert "[name]" in rendered                  # square = attribute
        assert "+ (project)" in rendered             # labeled arc
        assert "* (paper)" in rendered


class TestDtdSerializer:
    def test_element_roundtrip(self):
        dtd = parse_dtd(LAB_DTD_TEXT)
        text = serialize_dtd(dtd)
        again = parse_dtd(text)
        assert set(again.elements) == set(dtd.elements)
        for name in dtd.elements:
            assert (
                again.element(name).content.unparse()
                == dtd.element(name).content.unparse()
            )

    def test_attributes_roundtrip(self):
        dtd = parse_dtd(LAB_DTD_TEXT)
        again = parse_dtd(serialize_dtd(dtd))
        for name, decl in dtd.elements.items():
            for attr_name, attr in decl.attributes.items():
                other = again.element(name).attributes[attr_name]
                assert other.type == attr.type
                assert other.default_kind == attr.default_kind
                assert other.default_value == attr.default_value
                assert other.enumeration == attr.enumeration

    def test_entities_roundtrip(self):
        dtd = parse_dtd('<!ENTITY who "a &#38; b">')
        again = parse_dtd(serialize_dtd(dtd))
        assert again.general_entities["who"] == "a & b"

    def test_single_declaration(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)*><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        text = serialize_element_decl(dtd.element("a"))
        assert text == "<!ELEMENT a (b | c)*>"

    def test_notation_serialized(self):
        dtd = parse_dtd('<!NOTATION gif SYSTEM "image/gif">')
        assert 'NOTATION gif SYSTEM "image/gif"' in serialize_dtd(dtd)
