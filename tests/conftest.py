"""Shared fixtures: the paper's running example and common documents."""

from __future__ import annotations

import pytest

from repro.obs.metrics import METRICS
from repro.testing.faults import FAULTS
from repro.workloads.scenarios import lab_scenario
from repro.xml.parser import parse_document


@pytest.fixture(autouse=True)
def _reset_faults():
    """Never let an armed fault-injection point leak across tests."""
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture(autouse=True)
def _reset_metrics():
    """The process-wide metrics registry starts empty for every test."""
    METRICS.reset()
    yield
    METRICS.reset()


@pytest.fixture
def lab():
    """The paper's complete running example (fresh per test)."""
    return lab_scenario()


@pytest.fixture
def simple_doc():
    """A small document exercising elements, attributes and text."""
    return parse_document(
        '<root a="1">'
        "<child><leaf>one</leaf></child>"
        '<child kind="x"><leaf>two</leaf><leaf>three</leaf></child>'
        "</root>"
    )
