"""The documentation cannot rot: links resolve, examples execute.

Thin pytest wrapper over ``tools/check_docs.py`` so the same checks
run in the suite, the CI docs job, and by hand.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


def test_relative_links_resolve():
    assert check_docs.check_links() == []


def test_observability_examples_execute():
    for doc in check_docs.EXECUTABLE_DOCS:
        assert check_docs.run_examples(doc) == []


def test_observability_has_examples():
    for doc in check_docs.EXECUTABLE_DOCS:
        assert len(check_docs.python_blocks(doc)) >= 3
