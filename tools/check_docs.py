#!/usr/bin/env python3
"""Keep the documentation honest.

Two checks over the markdown corpus (``docs/*.md``, ``README.md``,
``DESIGN.md``, ``EXPERIMENTS.md``):

1. **Link check** — every relative markdown link (``[text](target)``)
   must point at a file that exists (anchors and external URLs are
   skipped; anchors within existing files are not resolved).
2. **Example check** — every ``python`` code block in each document
   of ``EXECUTABLE_DOCS`` (docs/OBSERVABILITY.md, docs/VIEWS.md,
   docs/UPDATES.md) is executed, in order, in one shared per-document
   namespace, so the worked examples cannot rot. Blocks build on each
   other exactly as a reader following the document would.

Run:  PYTHONPATH=src python tools/check_docs.py
or:   PYTHONPATH=src python tools/check_docs.py --only docs/VIEWS.md
(``--only`` restricts both checks to one document — a fresh namespace,
so each executable document must stand on its own.)
Exit status is non-zero on any failure; ``tests/test_docs.py`` wraps
the same functions for the test suite and CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The documents whose links are checked.
DOC_FILES = sorted(
    [
        *(REPO / "docs").glob("*.md"),
        REPO / "README.md",
        REPO / "DESIGN.md",
        REPO / "EXPERIMENTS.md",
    ]
)

#: The documents whose ``python`` blocks are executed.
EXECUTABLE_DOCS = [
    REPO / "docs" / "OBSERVABILITY.md",
    REPO / "docs" / "UPDATES.md",
    REPO / "docs" / "VIEWS.md",
]

_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_relative_links(text: str):
    """Yield the relative-path link targets in a markdown document."""
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def check_links(doc_files=None) -> list[str]:
    """Return one message per broken relative link."""
    problems = []
    for doc in doc_files or DOC_FILES:
        base = doc.parent
        for target in iter_relative_links(doc.read_text()):
            if not (base / target).exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def python_blocks(doc: Path) -> list[str]:
    """The ``python`` fenced code blocks of *doc*, in document order."""
    return _FENCE.findall(doc.read_text())


def run_examples(doc: Path) -> list[str]:
    """Execute *doc*'s python blocks in one namespace; return failures."""
    blocks = python_blocks(doc)
    if not blocks:
        return [f"{doc.relative_to(REPO)}: no python examples found"]
    namespace: dict = {"__name__": f"doc_examples:{doc.name}"}
    problems = []
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{doc.name}[block {index}]", "exec"), namespace)
        except Exception as exc:  # report and stop: later blocks depend on this one
            problems.append(
                f"{doc.relative_to(REPO)}: example block {index} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            break
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    doc_files, executable = DOC_FILES, EXECUTABLE_DOCS
    if argv and argv[0] == "--only":
        if len(argv) != 2:
            print("usage: check_docs.py [--only <document.md>]")
            return 2
        only = (REPO / argv[1]).resolve()
        if not only.exists():
            print(f"FAIL no such document: {argv[1]}")
            return 1
        doc_files = [only]
        executable = [doc for doc in EXECUTABLE_DOCS if doc == only]
    problems = check_links(doc_files)
    for doc in executable:
        problems.extend(run_examples(doc))
    for problem in problems:
        print(f"FAIL {problem}")
    if not problems:
        link_count = sum(
            len(list(iter_relative_links(doc.read_text()))) for doc in doc_files
        )
        block_count = sum(len(python_blocks(doc)) for doc in executable)
        print(
            f"ok: {len(doc_files)} documents, {link_count} relative links, "
            f"{block_count} executed examples"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
