#!/usr/bin/env python3
"""Filter and aggregate durable audit logs (JSONL).

Reads the JSON-Lines files written by
``repro.server.audit_sink.JsonlAuditSink`` — rotated generations
included — and answers the operational questions an audit trail
exists for: who touched what, when, through which backend, with what
outcome.

The tool parses the raw JSON itself, so it works on any host that has
the log files, without the ``repro`` package installed.

Examples::

    # Everything the guest did to one document
    python tools/audit_query.py audit.jsonl --requester guest --uri notes.xml

    # Denials and errors in a time window
    python tools/audit_query.py audit.jsonl --outcome denied --outcome error \\
        --since 2026-08-01T00:00:00 --until 2026-08-02T00:00:00

    # Outcome histogram over the whole log (rotations included)
    python tools/audit_query.py audit.jsonl --aggregate outcome

    # Last 20 streaming-backend records, as JSON
    python tools/audit_query.py audit.jsonl --backend stream --tail 20 --json

    # Everything worker 2 served (pooled records carry worker/shard)
    python tools/audit_query.py audit.jsonl --worker 2
    python tools/audit_query.py audit.jsonl --shard 1 --aggregate outcome
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Iterator, Optional


def parse_when(text: str) -> float:
    """Accept an epoch-seconds number or an ISO-8601 timestamp (UTC)."""
    try:
        return float(text)
    except ValueError:
        pass
    for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%dT%H:%M", "%Y-%m-%d"):
        try:
            import calendar

            return calendar.timegm(time.strptime(text, fmt))
        except ValueError:
            continue
    raise SystemExit(f"error: cannot parse time {text!r} (epoch or ISO-8601)")


def iter_records(path: str, include_rotated: bool = True) -> Iterator[dict]:
    """Yield records oldest-first: rotated generations, then the live file."""
    candidates: list[str] = []
    if include_rotated:
        generations = []
        for name in glob.glob(glob.escape(path) + ".*"):
            suffix = name[len(path) + 1 :]
            if suffix.isdigit():
                generations.append((int(suffix), name))
        candidates.extend(name for _, name in sorted(generations, reverse=True))
    candidates.append(path)
    for name in candidates:
        try:
            handle = open(name, "r", encoding="utf-8")
        except OSError:
            continue
        with handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    print(
                        f"warning: {name}:{line_number}: unparseable line skipped",
                        file=sys.stderr,
                    )


def matches(record: dict, args: argparse.Namespace) -> bool:
    if args.requester and record.get("requester") not in args.requester:
        return False
    if args.uri and record.get("uri") not in args.uri:
        return False
    if args.outcome and record.get("outcome") not in args.outcome:
        return False
    if args.backend and record.get("backend", "dom") not in args.backend:
        return False
    if args.action and not any(
        str(record.get("action", "")).startswith(a) for a in args.action
    ):
        return False
    if args.worker and record.get("worker") not in args.worker:
        return False
    if args.shard and record.get("shard") not in args.shard:
        return False
    stamp = float(record.get("timestamp", 0.0))
    if args.since is not None and stamp < args.since:
        return False
    if args.until is not None and stamp > args.until:
        return False
    return True


def render(record: dict) -> str:
    stamp = time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.gmtime(float(record.get("timestamp", 0.0)))
    )
    detail = record.get("detail") or ""
    origin = ""
    if record.get("worker") is not None or record.get("shard") is not None:
        worker = record.get("worker")
        shard = record.get("shard")
        origin = (
            f" [worker={'-' if worker is None else worker}"
            f" shard={'-' if shard is None else shard}]"
        )
    return (
        f"{stamp} [{record.get('backend', 'dom')}] "
        f"{record.get('requester', '?')} {record.get('action', '?')} "
        f"{record.get('uri', '?')} -> {record.get('outcome', '?')} "
        f"({record.get('visible_nodes', 0)}/{record.get('total_nodes', 0)} nodes)"
        + origin
        + (f" -- {detail}" if detail else "")
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("log", help="the live JSONL audit log file")
    parser.add_argument(
        "--no-rotated",
        action="store_true",
        help="read only the live file, skip rotated generations",
    )
    parser.add_argument(
        "--requester", action="append", help="keep records by this requester"
    )
    parser.add_argument("--uri", action="append", help="keep records for this URI")
    parser.add_argument(
        "--outcome",
        action="append",
        help="keep this outcome (released/empty/denied/error/fallback)",
    )
    parser.add_argument(
        "--backend", action="append", help="keep this backend (dom/stream)"
    )
    parser.add_argument(
        "--action",
        action="append",
        help="keep actions with this prefix (read, explain, query, ...)",
    )
    parser.add_argument(
        "--worker", action="append", type=int, metavar="N",
        help="keep records written by pool worker N",
    )
    parser.add_argument(
        "--shard", action="append", type=int, metavar="N",
        help="keep records for documents of shard N",
    )
    parser.add_argument(
        "--since", type=parse_when, help="epoch seconds or ISO-8601 lower bound"
    )
    parser.add_argument(
        "--until", type=parse_when, help="epoch seconds or ISO-8601 upper bound"
    )
    parser.add_argument(
        "--tail", type=int, metavar="N", help="only the last N matching records"
    )
    parser.add_argument(
        "--aggregate",
        metavar="FIELD",
        help="histogram of FIELD (outcome, requester, uri, backend, action, "
        "worker, shard) over the matches instead of listing them",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.log) and not glob.glob(glob.escape(args.log) + ".*"):
        print(f"error: no such log: {args.log}", file=sys.stderr)
        return 1

    selected = [
        record
        for record in iter_records(args.log, include_rotated=not args.no_rotated)
        if matches(record, args)
    ]
    if args.tail is not None:
        selected = selected[-args.tail :]

    if args.aggregate:
        counts: dict[str, int] = {}
        for record in selected:
            key = str(record.get(args.aggregate, ""))
            counts[key] = counts.get(key, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if args.json:
            print(json.dumps({"field": args.aggregate, "counts": dict(ordered)}))
        else:
            for key, count in ordered:
                print(f"{count:8d}  {key}")
            print(f"{len(selected)} record(s)", file=sys.stderr)
        return 0

    if args.json:
        print(json.dumps(selected, indent=2))
    else:
        for record in selected:
            print(render(record))
        print(f"{len(selected)} record(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
