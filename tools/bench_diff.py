#!/usr/bin/env python3
"""Compare BENCH_*.json reports and flag metric regressions.

Every benchmark section of ``benchmarks/run_report.py`` writes one
``BENCH_PRn.json`` artifact. This tool diffs two (or more) of them —
a committed baseline against a fresh run in CI, or the whole PR
trajectory at once — walking every numeric leaf by its JSON path and
reporting per-metric deltas. Exits non-zero when any *regression*
exceeds the threshold, so it can gate a pipeline.

Whether a change is a regression depends on the metric's direction:

- **lower is better** for latencies and overheads — paths whose last
  key contains ``_ms``, ``_ns``, ``_seconds`` or ``overhead``;
- **higher is better** for rates and wins — ``speedup``,
  ``requests_per_s``, ``_per_s``, ``hit``, ``retention``;
- everything else is *informational*: reported, never gated
  (counts, sizes and config echoes drift legitimately).

Only paths present in **both** files are compared; added or removed
paths are listed but never gate (a new PR legitimately adds sections).
``--ignore PATTERN`` (repeatable, ``fnmatch`` globs over the dotted
path) demotes matching paths to informational — still reported, never
gated — for metrics known to be noise at CI sample sizes (e.g. the
sub-millisecond SLO-window percentiles of a ``--fast`` run).

Examples::

    # CI gate: fresh O3 output vs the committed baseline, 25% budget,
    # tiny-window SLO percentiles excluded from gating
    python tools/bench_diff.py BENCH_PR9.json /tmp/BENCH_PR9.json \\
        --threshold 25 --ignore 'slo.*'

    # The whole trajectory, informational
    python tools/bench_diff.py BENCH_PR2.json BENCH_PR6.json \\
        BENCH_PR9.json --all

The tool parses raw JSON and needs no ``repro`` install.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Iterator, Optional, Sequence

LOWER_BETTER = ("_ms", "_ns", "_seconds", "overhead")
HIGHER_BETTER = ("speedup", "requests_per_s", "_per_s", "hit", "retention")


def direction_of(path: str) -> Optional[str]:
    """'lower' | 'higher' | None (informational) for a metric path."""
    leaf = path.rsplit(".", 1)[-1].lower()
    for marker in LOWER_BETTER:
        if marker in leaf:
            return "lower"
    for marker in HIGHER_BETTER:
        if marker in leaf:
            return "higher"
    return None


def numeric_leaves(node, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf, depth-first.

    Booleans are excluded (``True`` is an ``int`` to Python but a gate
    flag to the reports); list elements are addressed by index.
    """
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield prefix, float(node)
        return
    if isinstance(node, dict):
        for key in sorted(node):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(node[key], child_prefix)
    elif isinstance(node, list):
        for index, child in enumerate(node):
            child_prefix = f"{prefix}[{index}]" if prefix else f"[{index}]"
            yield from numeric_leaves(child, child_prefix)


def diff_reports(
    old: dict, new: dict, threshold: float,
    ignore: Sequence[str] = (),
) -> tuple[list[dict], list[str], list[str]]:
    """Per-path deltas plus the added/removed path lists.

    Each delta row: ``{path, old, new, delta_pct, direction,
    regression}``. ``delta_pct`` is None when the old value is 0 (the
    ratio is undefined); such rows gate only if direction-bad and the
    new value is nonzero... which cannot be expressed as a percentage,
    so they are flagged with ``delta_pct=None, regression=True``.
    Paths matching any *ignore* glob are demoted to informational
    (``direction=None``): reported, never gated.
    """
    old_leaves = dict(numeric_leaves(old))
    new_leaves = dict(numeric_leaves(new))
    added = sorted(set(new_leaves) - set(old_leaves))
    removed = sorted(set(old_leaves) - set(new_leaves))
    rows: list[dict] = []
    for path in sorted(set(old_leaves) & set(new_leaves)):
        before, after = old_leaves[path], new_leaves[path]
        if any(fnmatch.fnmatch(path, pattern) for pattern in ignore):
            direction = None
        else:
            direction = direction_of(path)
        if before == 0:
            delta_pct = None
            worse = after > 0 if direction == "lower" else False
        else:
            delta_pct = (after - before) / abs(before) * 100
            if direction == "lower":
                worse = delta_pct > threshold
            elif direction == "higher":
                worse = delta_pct < -threshold
            else:
                worse = False
        rows.append(
            {
                "path": path,
                "old": before,
                "new": after,
                "delta_pct": delta_pct,
                "direction": direction,
                "regression": bool(worse and direction is not None),
            }
        )
    return rows, added, removed


def render_rows(rows: list[dict], show_all: bool) -> Iterator[str]:
    for row in rows:
        if not show_all and not row["regression"] and row["direction"] is None:
            continue
        if row["delta_pct"] is None:
            delta = "   n/a "
        else:
            delta = f"{row['delta_pct']:+7.1f}%"
        marker = " !! REGRESSION" if row["regression"] else ""
        direction = {"lower": "<", "higher": ">", None: "."}[row["direction"]]
        yield (
            f"{delta} {direction} {row['path']}: "
            f"{row['old']:g} -> {row['new']:g}{marker}"
        )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "reports", nargs="+",
        help="two or more BENCH_*.json files, oldest first; consecutive "
        "pairs are diffed",
    )
    parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression budget in percent (default 10); any directional "
        "metric moving the wrong way by more than this fails the run",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="GLOB",
        help="fnmatch glob over dotted paths; matches are reported but "
        "never gated (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="print every compared path, not just directional ones",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    args = parser.parse_args(argv)
    if len(args.reports) < 2:
        parser.error("need at least two reports to diff")

    loaded = []
    for path in args.reports:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded.append((path, json.load(handle)))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2

    failed = False
    output = []
    for (old_name, old), (new_name, new) in zip(loaded, loaded[1:]):
        rows, added, removed = diff_reports(
            old, new, args.threshold, ignore=args.ignore
        )
        regressions = [row for row in rows if row["regression"]]
        failed = failed or bool(regressions)
        if args.json:
            output.append(
                {
                    "old": old_name,
                    "new": new_name,
                    "threshold_pct": args.threshold,
                    "metrics": rows,
                    "added": added,
                    "removed": removed,
                    "regressions": len(regressions),
                }
            )
            continue
        print(f"== {old_name} -> {new_name} (threshold {args.threshold:g}%)")
        for line in render_rows(rows, args.all):
            print(f"  {line}")
        if added:
            print(f"  {len(added)} path(s) only in {new_name}")
        if removed:
            print(f"  {len(removed)} path(s) only in {old_name}")
        print(
            f"  {len(rows)} compared, {len(regressions)} regression(s)"
        )
    if args.json:
        print(json.dumps(output, indent=2))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
