#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces, in order:

1. Figure 1  — the laboratory DTD and its labeled tree;
2. Example 1 — the four access authorizations (also shown as XACL markup);
3. Example 2 / Figure 3 — the view of user Tom (member of Foreign,
   connected from infosys.bld1.it) on CSlab.xml, plus the views of two
   other requesters for contrast;
4. the loosened DTD shipped with the view (Section 6.2/7).

Run:  python examples/quickstart.py
"""

from repro import AccessRequest, Requester, SecureXMLServer, pretty
from repro.authz.xacl import serialize_xacl
from repro.dtd.loosen import loosen, validate_against_loosened
from repro.dtd.serializer import serialize_dtd
from repro.dtd.tree import dtd_tree, render_tree
from repro.workloads.scenarios import (
    LAB_DOCUMENT_URI,
    LAB_DTD_TEXT,
    LAB_DTD_URI,
    lab_authorizations,
    lab_document,
)
from repro.xml.parser import parse_document


def heading(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # ------------------------------------------------------------------
    heading("Figure 1(a): the laboratory DTD")
    print(LAB_DTD_TEXT)

    server = SecureXMLServer()
    server.publish_dtd(LAB_DTD_URI, LAB_DTD_TEXT)
    dtd = server.repository.dtd(LAB_DTD_URI)

    heading("Figure 1(b): its labeled tree — (element) circles, [attribute] squares")
    print(render_tree(dtd_tree(dtd)))

    # ------------------------------------------------------------------
    heading("Figure 3(a): the CSlab.xml instance")
    document = lab_document(dtd)
    print(pretty(document))
    server.publish_document(
        LAB_DOCUMENT_URI, document, dtd_uri=LAB_DTD_URI, validate_on_add=True
    )

    # ------------------------------------------------------------------
    heading("Example 1: the four authorizations (paper notation)")
    authorizations = lab_authorizations()
    for authorization in authorizations:
        print(" ", authorization.unparse())

    heading("... and as XACL security markup (Section 7)")
    print(serialize_xacl(authorizations, base="http://www.lab.com/"))
    server.attach_xacl(serialize_xacl(authorizations))

    # Users and groups of Example 2.
    server.add_group("Foreign")
    server.add_group("Admin")
    server.add_user("Tom", groups=["Foreign"])
    server.add_user("Alice", groups=["Admin"])
    server.add_user("Sam")

    # ------------------------------------------------------------------
    heading("Example 2 / Figure 3(b): Tom's view (Foreign, from infosys.bld1.it)")
    tom = Requester("Tom", "130.100.50.8", "infosys.bld1.it")
    response = server.serve(AccessRequest(tom, LAB_DOCUMENT_URI))
    print(pretty(parse_document(response.xml_text)))
    print(
        f"\n  [{response.visible_nodes}/{response.total_nodes} nodes released "
        f"in {response.elapsed_seconds * 1000:.2f} ms]"
    )

    heading("Contrast: Alice's view (Admin, from 130.89.56.8)")
    alice = Requester("Alice", "130.89.56.8", "rome.admin.lab.com")
    print(pretty(parse_document(server.serve(AccessRequest(alice, LAB_DOCUMENT_URI)).xml_text)))

    heading("Contrast: Sam's view (no groups, from tweety.lab.com)")
    sam = Requester("Sam", "150.100.30.8", "tweety.lab.com")
    print(pretty(parse_document(server.serve(AccessRequest(sam, LAB_DOCUMENT_URI)).xml_text)))

    # ------------------------------------------------------------------
    heading("Section 6.2: the loosened DTD shipped with every view")
    print(serialize_dtd(loosen(dtd)))
    view_doc = parse_document(response.xml_text)
    report = validate_against_loosened(view_doc, dtd)
    print(f"\n  Tom's view valid against the loosened DTD: {report.valid}")

    # ------------------------------------------------------------------
    heading("Why? — explaining decisions (repro.core.explain)")
    from repro.core.explain import explain

    stored = server.repository.document(LAB_DOCUMENT_URI)
    for target in (
        "/laboratory/project[1]/paper[1]",          # the private paper
        "/laboratory/project[1]/manager/flname",    # the manager's name
        "/laboratory/project[1]",                   # the bare-tag survivor
    ):
        print(
            explain(
                stored, target, tom, server.store,
                dtd_uri=LAB_DTD_URI,
            ).describe()
        )
        print()

    heading("Audit log")
    for record in server.audit:
        print(" ", record)


if __name__ == "__main__":
    main()
