#!/usr/bin/env python3
"""Hospital records: element-level access control on medical documents.

The scenario the paper's model is made for — one document, many
stakeholders with different entitlements:

- **Physicians** read full clinical content of their ward's records;
- **Nurses** read care plans and allergies but not psychiatric notes;
- **Billing** reads only administrative and insurance data;
- **Researchers** get a weak grant on anonymized fields which the
  hospital-wide schema policy (DTD-level denials) can override;
- the **patient portal** (location-restricted to the intranet is NOT
  required — patients connect from anywhere) lets the patient read
  their own record except staff-only annotations.

Demonstrates: nested groups, local vs recursive types, weak instance
grants overridden at the schema level, per-document conflict policies,
queries evaluated on views, and the loosened DTD.

Run:  python examples/hospital_records.py
"""

from repro import (
    AccessRequest,
    Authorization,
    QueryRequest,
    Requester,
    SecureXMLServer,
    pretty,
)
from repro.xml.parser import parse_document

BASE = "http://hospital.example/"
DTD_URI = BASE + "record.dtd"
RECORD_URI = BASE + "records/patient-117.xml"

RECORD_DTD = """\
<!ELEMENT record (admin, clinical, billing)>
<!ATTLIST record id ID #REQUIRED ward CDATA #REQUIRED>
<!ELEMENT admin (patient, insurance?)>
<!ELEMENT patient (name, dob)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT dob (#PCDATA)>
<!ELEMENT insurance (#PCDATA)>
<!ATTLIST insurance provider CDATA #REQUIRED>
<!ELEMENT clinical (allergies?, careplan?, note*)>
<!ELEMENT allergies (#PCDATA)>
<!ELEMENT careplan (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ATTLIST note kind (general|psychiatric|staff-only) #REQUIRED
               author CDATA #IMPLIED>
<!ELEMENT billing (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item amount CDATA #REQUIRED>
"""

RECORD_XML = """\
<record id="p117" ward="cardiology">
  <admin>
    <patient><name>Jane Roe</name><dob>1961-04-02</dob></patient>
    <insurance provider="ACME Health">policy 8812-42</insurance>
  </admin>
  <clinical>
    <allergies>penicillin</allergies>
    <careplan>beta blockers, follow-up in 6 weeks</careplan>
    <note kind="general" author="dr-who">stable, responding well</note>
    <note kind="psychiatric" author="dr-jung">anxiety episodes</note>
    <note kind="staff-only" author="dr-who">VIP patient, discretion</note>
  </clinical>
  <billing>
    <item amount="1200.00">angiography</item>
    <item amount="80.00">consultation</item>
  </billing>
</record>
"""


def build_server() -> SecureXMLServer:
    server = SecureXMLServer()

    # Staff directory: nested, non-disjoint groups (Section 3).
    server.add_group("Staff")
    server.add_group("Clinical", parents=["Staff"])
    server.add_group("Physicians", parents=["Clinical"])
    server.add_group("Nurses", parents=["Clinical"])
    server.add_group("Billing", parents=["Staff"])
    server.add_group("Researchers")
    server.add_user("drwho", groups=["Physicians"])
    server.add_user("nancy", groups=["Nurses"])
    server.add_user("bill", groups=["Billing"])
    server.add_user("rita", groups=["Researchers"])
    server.add_user("jroe")  # the patient

    server.publish_dtd(DTD_URI, RECORD_DTD)
    server.publish_document(
        RECORD_URI, RECORD_XML, dtd_uri=DTD_URI, validate_on_add=True
    )

    grants = [
        # Physicians: the whole clinical subtree, recursively.
        (("Physicians", "*", "*"), f"{RECORD_URI}://clinical", "+", "R"),
        # ...and the admin identity block, to know whom they treat.
        (("Physicians", "*", "*"), f"{RECORD_URI}://patient", "+", "R"),
        # Nurses: care plan and allergies only.
        (("Nurses", "*", "*"), f"{RECORD_URI}://allergies", "+", "R"),
        (("Nurses", "*", "*"), f"{RECORD_URI}://careplan", "+", "R"),
        (("Nurses", "*", "*"), f"{RECORD_URI}://patient/name", "+", "R"),
        # Billing: administrative + billing subtrees, but no clinical data.
        (("Billing", "*", "*"), f"{RECORD_URI}://admin", "+", "R"),
        (("Billing", "*", "*"), f"{RECORD_URI}://billing", "+", "R"),
        # Researchers: weak grant on clinical content — the hospital-wide
        # schema policy below can override it.
        (("Researchers", "*", "*"), f"{RECORD_URI}://clinical", "+", "RW"),
        # The patient: her whole record — granted *weakly*, so the
        # hospital-wide schema denials below still apply to her...
        (("jroe", "*", "*"), RECORD_URI, "+", "RW"),
        # ...except staff-only annotations (exception via denial).
        (("jroe", "*", "*"), f'{RECORD_URI}://note[./@kind="staff-only"]', "-", "R"),
        # Nobody outside Clinical sees psychiatric notes: schema-level
        # denial on every instance of the record DTD, overriding weak
        # grants (e.g. the researchers') but not strong clinical ones.
        (("Researchers", "*", "*"), f'{DTD_URI}://note[./@kind="psychiatric"]', "-", "R"),
        (("jroe", "*", "*"), f'{DTD_URI}://note[./@kind="psychiatric"]', "-", "R"),
    ]
    for subject, obj, sign, auth_type in grants:
        server.grant(Authorization.build(subject, obj, sign, auth_type))
    return server


def show(title: str, server: SecureXMLServer, requester: Requester) -> None:
    print()
    print("-" * 72)
    print(title)
    print("-" * 72)
    response = server.serve(AccessRequest(requester, RECORD_URI))
    if response.empty:
        print("  (empty view)")
    else:
        print(pretty(parse_document(response.xml_text)))
    print(f"  [{response.visible_nodes}/{response.total_nodes} nodes]")


def main() -> None:
    server = build_server()

    show("Physician (drwho): full clinical + identity", server,
         Requester("drwho", "10.1.0.5", "ward3.hospital.example"))
    show("Nurse (nancy): care plan + allergies + name", server,
         Requester("nancy", "10.1.0.9", "ward3.hospital.example"))
    show("Billing (bill): admin + billing, no clinical", server,
         Requester("bill", "10.2.0.2", "finance.hospital.example"))
    show("Researcher (rita): weak clinical grant minus schema denial", server,
         Requester("rita", "172.16.9.1", "lab.university.example"))
    show("The patient (jroe), from home: everything except staff-only "
         "and psychiatric notes", server,
         Requester("jroe", "93.41.22.7", "home.isp.example"))

    # Queries are answered on the requester's view, never the raw record.
    print()
    print("-" * 72)
    print("Query safety: nurse asks for all notes")
    print("-" * 72)
    nancy = Requester("nancy", "10.1.0.9", "ward3.hospital.example")
    response = server.query(QueryRequest(nancy, RECORD_URI, "//note"))
    print(f"  matches: {response.matches or '(none — notes are not granted to nurses)'}")

    response = server.query(
        QueryRequest(nancy, RECORD_URI, '//*[contains(., "anxiety")]')
    )
    print(f"  probing hidden content: {response.matches or '(nothing leaks)'}")

    print()
    print("Audit trail:")
    for record in server.audit.tail(8):
        print(" ", record)


if __name__ == "__main__":
    main()
