#!/usr/bin/env python3
"""Financial statement feeds: schema-level policies over many instances.

The paper's introduction motivates XML with OFX (Open Financial
Exchange). This example models a bank publishing one statement document
per account, all instances of a single statement DTD:

- **schema-level authorizations** on the DTD govern every statement at
  once (tellers see transactions but never credit scores; the fraud
  desk sees everything, but only from the secure subnet 10.9.9.*);
- **instance-level authorizations** layer per-account rules on top
  (each customer reads their own statement);
- statements are **generated from the DTD** (Section 2: instances of
  one schema that "widely differ in the number and structure of
  elements") and every view is checked against the loosened DTD;
- location patterns restrict where privileged roles may connect from.

Run:  python examples/financial_feeds.py
"""

from repro import (
    AccessRequest,
    Authorization,
    Requester,
    SecureXMLServer,
    pretty,
)
from repro.dtd.generator import InstanceGenerator
from repro.dtd.loosen import validate_against_loosened
from repro.dtd.parser import parse_dtd
from repro.xml.builder import E, new_document
from repro.xml.parser import parse_document

BASE = "http://bank.example/"
DTD_URI = BASE + "statement.dtd"

STATEMENT_DTD = """\
<!ELEMENT statement (holder, balance, transaction*, risk?)>
<!ATTLIST statement account ID #REQUIRED currency (EUR|USD) "EUR">
<!ELEMENT holder (#PCDATA)>
<!ELEMENT balance (#PCDATA)>
<!ELEMENT transaction (payee, amount)>
<!ATTLIST transaction kind (debit|credit) #REQUIRED
                      flagged (yes|no) "no">
<!ELEMENT payee (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT risk (score, notes?)>
<!ELEMENT score (#PCDATA)>
<!ELEMENT notes (#PCDATA)>
"""


def statement(account: str, holder: str, transactions, score: str):
    children = [
        E("holder", holder),
        E("balance", "1024.00"),
    ]
    for kind, payee, amount, flagged in transactions:
        children.append(
            E(
                "transaction",
                {"kind": kind, "flagged": flagged},
                E("payee", payee),
                E("amount", amount),
            )
        )
    children.append(E("risk", E("score", score), E("notes", "internal only")))
    root = E("statement", {"account": account}, *children)
    return new_document(
        root, uri=f"{BASE}statements/{account}.xml", system_id=DTD_URI
    )


def build_server() -> SecureXMLServer:
    server = SecureXMLServer()
    server.add_group("Tellers")
    server.add_group("FraudDesk")
    server.add_group("Customers")
    server.add_user("tina", groups=["Tellers"])
    server.add_user("frank", groups=["FraudDesk"])
    server.add_user("carol", groups=["Customers"])
    server.add_user("dave", groups=["Customers"])

    server.publish_dtd(DTD_URI, STATEMENT_DTD)

    documents = [
        statement(
            "acc-carol",
            "Carol C.",
            [
                ("debit", "Grocer", "42.10", "no"),
                ("credit", "Salary Inc", "2100.00", "no"),
                ("debit", "Casino Royale", "900.00", "yes"),
            ],
            "71",
        ),
        statement(
            "acc-dave",
            "Dave D.",
            [("debit", "Bookshop", "19.90", "no")],
            "12",
        ),
    ]
    for document in documents:
        server.publish_document(
            document.uri, document, dtd_uri=DTD_URI, validate_on_add=True
        )

    # -- schema-level policy: applies to every statement ------------------
    schema_grants = [
        # Tellers see statements recursively...
        (("Tellers", "*", "*.bank.example"), f"{DTD_URI}://statement", "+", "R"),
        # ...but the risk block is beyond everyone below the fraud desk.
        (("Tellers", "*", "*"), f"{DTD_URI}://risk", "-", "R"),
        # The fraud desk sees everything — only from the secure subnet.
        (("FraudDesk", "10.9.9.*", "*"), f"{DTD_URI}://statement", "+", "R"),
    ]
    for subject, obj, sign, auth_type in schema_grants:
        server.grant(Authorization.build(subject, obj, sign, auth_type))

    # -- instance-level policy: each customer reads their own statement,
    #    weakly, so schema rules (the risk denial) still dominate.
    for account, customer in (("acc-carol", "carol"), ("acc-dave", "dave")):
        uri = f"{BASE}statements/{account}.xml"
        server.grant(Authorization.build((customer, "*", "*"), uri, "+", "RW"))
        server.grant(
            Authorization.build(
                (customer, "*", "*"), f"{DTD_URI}://risk", "-", "R"
            )
        )
    return server


def show(server, title, requester, uri):
    print()
    print("-" * 72)
    print(title)
    print("-" * 72)
    response = server.serve(AccessRequest(requester, uri))
    if response.empty:
        print("  (empty view — nothing released)")
    else:
        print(pretty(parse_document(response.xml_text)))
    print(f"  [{response.visible_nodes}/{response.total_nodes} nodes]")
    return response


def main() -> None:
    server = build_server()
    carol_uri = f"{BASE}statements/acc-carol.xml"
    dave_uri = f"{BASE}statements/acc-dave.xml"

    show(server, "Teller tina (from a branch workstation): transactions, no risk",
         Requester("tina", "10.4.1.7", "teller3.branch.bank.example"), carol_uri)
    show(server, "Fraud desk frank, from the secure subnet: full statement",
         Requester("frank", "10.9.9.2", "fraud1.bank.example"), carol_uri)
    show(server, "Fraud desk frank, from home: schema grant does not apply",
         Requester("frank", "84.12.0.9", "home.isp.example"), carol_uri)
    show(server, "Customer carol: her own statement, minus the risk block",
         Requester("carol", "84.9.0.1", "laptop.isp.example"), carol_uri)
    show(server, "Customer carol requesting Dave's statement: nothing",
         Requester("carol", "84.9.0.1", "laptop.isp.example"), dave_uri)

    # Schema policies cover *future* documents automatically: generate a
    # brand-new statement from the DTD and serve it immediately.
    print()
    print("-" * 72)
    print("A freshly generated statement (instance of the same DTD)")
    print("-" * 72)
    dtd = server.repository.dtd(DTD_URI)
    generated = InstanceGenerator(dtd, seed=4, repeat_factor=2.0).document(
        uri=f"{BASE}statements/acc-generated.xml"
    )
    server.publish_document(generated.uri, generated, dtd_uri=DTD_URI)
    tina = Requester("tina", "10.4.1.7", "teller3.branch.bank.example")
    response = server.serve(AccessRequest(tina, generated.uri))
    print(pretty(parse_document(response.xml_text)))
    print(f"  [{response.visible_nodes}/{response.total_nodes} nodes; "
          "the schema-level risk denial applied with no new configuration]")

    view_doc = parse_document(response.xml_text)
    report = validate_against_loosened(view_doc, parse_dtd(STATEMENT_DTD))
    print(f"  view valid against loosened statement DTD: {report.valid}")

    assert "<risk>" not in response.xml_text
    assert "<score>" not in response.xml_text


if __name__ == "__main__":
    main()
