#!/usr/bin/env python3
"""Editorial workflow: writes, embargoes, credentials and rate limits.

Exercises the extensions built on top of the paper's core model (its
Section-8 future-work list):

- **write/update enforcement** — authors edit only their own articles,
  with the same 5-tuple machinery under ``action="write"``; invalid
  results are rolled back atomically;
- **time-based restrictions** — the public grant on an embargoed
  article only activates at the embargo timestamp;
- **credentials** — the wire desk's early access requires a
  ``press-pass`` credential established at authentication time;
- **history-based restrictions** — the preview endpoint allows three
  reads per requester per hour;
- **view cache** — anonymous readers share one cached view.

Run:  python examples/editorial_workflow.py
"""

import time

from repro import (
    AccessLimitExceeded,
    AccessRequest,
    Authorization,
    Requester,
    SecureXMLServer,
    UpdateDenied,
    pretty,
)
from repro.authz.restrictions import CredentialClause, HistoryLimit, ValidityWindow
from repro.errors import ValidationError
from repro.server.cache import ViewCache
from repro.server.service import PolicyConfig
from repro.server.updates import InsertChild, SetAttribute, SetText, UpdateRequest
from repro.xml.parser import parse_document

BASE = "http://news.example/"
DTD_URI = BASE + "article.dtd"
URI = BASE + "articles/2026-07-merger.xml"

ARTICLE_DTD = """\
<!ELEMENT article (headline, body, note*)>
<!ATTLIST article author CDATA #REQUIRED state (draft|approved) "draft">
<!ELEMENT headline (#PCDATA)>
<!ELEMENT body (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"""

ARTICLE = """\
<article author="ana" state="draft">
  <headline>Merger talks resume</headline>
  <body>Sources say the merger is back on the table.</body>
</article>
"""


def main() -> None:
    now = time.time()
    embargo_lifts = now + 3600  # one hour from now

    server = SecureXMLServer(view_cache=ViewCache())
    # Staff groups nest inside Public, so staff-specific grants are
    # *more specific subjects* than Public-wide denials and win.
    server.add_group("Authors", parents=["Public"])
    server.add_group("Editors", parents=["Public"])
    server.add_user("ana", groups=["Authors"])
    server.add_user("ed", groups=["Editors"])
    server.publish_dtd(DTD_URI, ARTICLE_DTD)
    server.publish_document(URI, ARTICLE, dtd_uri=DTD_URI, validate_on_add=True)

    # Read grants -----------------------------------------------------------
    # Staff read everything immediately.
    server.grant(Authorization.build(("Authors", "*", "*"), URI, "+", "R"))
    server.grant(Authorization.build(("Editors", "*", "*"), URI, "+", "R"))
    # The public reads the article only once the embargo lifts...
    server.grant(
        Authorization.build(
            ("Public", "*", "*"), URI, "+", "R",
            validity=ValidityWindow(not_before=embargo_lifts),
        )
    )
    # ...but never the internal notes — while staff, being *more
    # specific* subjects than Public, keep them.
    server.grant(
        Authorization.build(("Public", "*", "*"), f"{URI}://note", "-", "R")
    )
    for staff_group in ("Authors", "Editors"):
        server.grant(
            Authorization.build((staff_group, "*", "*"), f"{URI}://note", "+", "R")
        )
    # Credentialed wire services get early access.
    server.grant(
        Authorization.build(
            ("Public", "*", "*"), URI, "+", "R",
            credentials=(CredentialClause("press-pass", "present"),),
        )
    )

    # Write grants -----------------------------------------------------------
    # Ana writes her own article's content; editors flip the state.
    server.grant(
        Authorization.build(
            ("ana", "*", "*"), f"{URI}://article[@author='ana']", "+", "R",
            action="write",
        )
    )
    server.grant(
        Authorization.build(
            ("Editors", "*", "*"), f"{URI}://article", "+", "L", action="write"
        )
    )

    ana = Requester("ana", "10.3.0.4", "desk4.news.example")
    ed = Requester("ed", "10.3.0.9", "desk9.news.example")
    reader = Requester("anonymous", "85.4.2.1", "cafe.isp.example")
    wire = Requester("anonymous", "52.1.7.7", "feed.wire.example").with_credentials(
        **{"press-pass": "WP-4471"}
    )

    print("=" * 72)
    print("1. Before the embargo")
    print("=" * 72)
    print("anonymous reader:", "EMPTY"
          if server.serve(AccessRequest(reader, URI)).empty else "released")
    wire_view = server.serve(AccessRequest(wire, URI))
    print("credentialed wire desk: released",
          f"({wire_view.visible_nodes}/{wire_view.total_nodes} nodes)")

    print()
    print("=" * 72)
    print("2. Ana edits her article; tries to self-approve")
    print("=" * 72)
    server.update(
        UpdateRequest.of(
            ana,
            URI,
            SetText("//body", "The merger is confirmed, sources say."),
            InsertChild("//article", "<note>legal has signed off</note>"),
        )
    )
    print("ana's edit applied")
    try:
        # 'state' is the article element's attribute; ana's write grant is
        # recursive on her article, so this would succeed — but an invalid
        # enum value must roll back atomically.
        server.update(
            UpdateRequest.of(ana, URI, SetAttribute("//article", "state", "published"))
        )
    except ValidationError as exc:
        print(f"invalid state value rejected, document unchanged: {exc}")

    print()
    print("=" * 72)
    print("3. The editor approves")
    print("=" * 72)
    server.update(
        UpdateRequest.of(ed, URI, SetAttribute("//article", "state", "approved"))
    )
    print("state flipped to approved; editors cannot touch the body:")
    try:
        server.update(UpdateRequest.of(ed, URI, SetText("//body", "vandalized")))
    except UpdateDenied as exc:
        print(f"  denied as expected: {exc}")

    print()
    print("=" * 72)
    print("4. Staff view after the edits (notes visible to staff)")
    print("=" * 72)
    print(pretty(parse_document(server.serve(AccessRequest(ed, URI)).xml_text)))

    print()
    print("=" * 72)
    print("5. Rate limiting (history-based restriction)")
    print("=" * 72)
    server.set_policy(
        URI, PolicyConfig(history_limit=HistoryLimit(3, window_seconds=3600))
    )
    fresh_reader = Requester("anonymous", "203.0.113.9", "crawler.example")
    for attempt in range(1, 5):
        try:
            server.serve(AccessRequest(fresh_reader, URI))
            print(f"request {attempt}: served (empty view — embargo still on)")
        except AccessLimitExceeded as exc:
            print(f"request {attempt}: rate-limited -> {exc}")
    server.set_policy(URI, PolicyConfig())  # back to the default policy

    print()
    print("=" * 72)
    print("6. Cache statistics (wire desk hits its cached view)")
    print("=" * 72)
    for _ in range(3):
        server.serve(AccessRequest(wire, URI))
    cache = server.view_cache
    print(f"cache entries={len(cache)} hits={cache.hits} "
          f"misses={cache.misses} hit-rate={cache.hit_rate:.0%}")

    print()
    print("Audit tail:")
    for record in server.audit.tail(6):
        print(" ", record)


if __name__ == "__main__":
    main()
