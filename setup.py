"""Legacy setuptools shim.

The project is configured entirely through ``pyproject.toml``; this file
exists so fully offline environments (no wheel/build backend downloads)
can still do an editable install via ``python setup.py develop``.
"""

from setuptools import setup

setup()
