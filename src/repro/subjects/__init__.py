"""Authorization subjects: users/groups, location patterns, ASH.

Public surface::

    from repro.subjects import (
        Directory, SubjectSpec, Requester, SubjectHierarchy,
        IPPattern, SymbolicPattern,
    )
"""

from repro.subjects.canonical import EffectiveClass, effective_class
from repro.subjects.hierarchy import Requester, SubjectHierarchy, SubjectSpec
from repro.subjects.location import (
    ANY_IP,
    ANY_SYMBOLIC,
    IPPattern,
    SymbolicPattern,
)
from repro.subjects.markup import DIRECTORY_DTD, parse_directory, serialize_directory
from repro.subjects.users import ANONYMOUS_USER, PUBLIC_GROUP, Directory

__all__ = [
    "ANONYMOUS_USER",
    "ANY_IP",
    "ANY_SYMBOLIC",
    "DIRECTORY_DTD",
    "Directory",
    "EffectiveClass",
    "IPPattern",
    "PUBLIC_GROUP",
    "Requester",
    "SubjectHierarchy",
    "SubjectSpec",
    "SymbolicPattern",
    "effective_class",
    "parse_directory",
    "serialize_directory",
]
