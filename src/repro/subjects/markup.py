"""XML markup for the subject directory.

The paper's rationale — "exploiting XML's own capabilities, defining an
XML markup for a set of security elements" — extends naturally to the
user/group database. This module round-trips a :class:`Directory`
through a small markup (parsed, of course, with this library's own XML
parser)::

    <directory>
      <group name="Staff"/>
      <group name="Clinical" in="Staff"/>
      <user name="alice" in="Clinical"/>
      <user name="bob" in="Staff Clinical"/>
    </directory>

``in`` lists space-separated parent groups. Declarations may appear in
any order (groups are created before memberships are linked). The
built-in ``Public`` group and ``anonymous`` user are implicit and never
serialized.
"""

from __future__ import annotations

from repro.errors import XACLError
from repro.subjects.users import ANONYMOUS_USER, PUBLIC_GROUP, Directory
from repro.xml.builder import E, new_document
from repro.xml.nodes import Document
from repro.xml.parser import parse_document
from repro.xml.serializer import pretty

__all__ = ["DIRECTORY_DTD", "parse_directory", "serialize_directory"]

DIRECTORY_DTD = """\
<!ELEMENT directory (group | user)*>
<!ELEMENT group EMPTY>
<!ATTLIST group name CDATA #REQUIRED in CDATA #IMPLIED>
<!ELEMENT user EMPTY>
<!ATTLIST user name CDATA #REQUIRED in CDATA #IMPLIED>
"""


def parse_directory(
    source: str | Document, into: Directory | None = None
) -> Directory:
    """Parse directory markup, optionally extending an existing one."""
    document = parse_document(source) if isinstance(source, str) else source
    root = document.root
    if root is None or root.name != "directory":
        raise XACLError("directory markup must have a <directory> root element")
    directory = into if into is not None else Directory()

    entries: list[tuple[str, str, list[str]]] = []
    for child in root.child_elements():
        if child.name not in ("group", "user"):
            raise XACLError(f"unexpected element <{child.name}> inside <directory>")
        name = child.get_attribute("name")
        if not name:
            raise XACLError(f"<{child.name}> requires a name attribute")
        parents = (child.get_attribute("in") or "").split()
        entries.append((child.name, name, parents))

    # First pass: declare every subject (order-independence).
    for kind, name, _ in entries:
        if kind == "group":
            directory.add_group(name)
        else:
            directory.add_user(name)
    # Second pass: link memberships.
    for _, name, parents in entries:
        for parent in parents:
            directory.add_member(parent, name)
    return directory


def serialize_directory(directory: Directory, indent: bool = True) -> str:
    """Render *directory* as markup (implicit subjects omitted)."""
    root = E("directory")
    # Groups first so a future order-sensitive consumer still works.
    for group in sorted(directory.groups()):
        if group == PUBLIC_GROUP:
            continue
        parents = sorted(
            parent
            for parent in directory.expanded_groups(group)
            if parent != group
            and parent != PUBLIC_GROUP
            and group in directory.direct_members(parent)
        )
        attrs = {"name": group}
        if parents:
            attrs["in"] = " ".join(parents)
        root.append(E("group", attrs))
    for user in sorted(directory.users()):
        if user == ANONYMOUS_USER:
            continue
        parents = sorted(
            group
            for group in directory.groups()
            if group != PUBLIC_GROUP and user in directory.direct_members(group)
        )
        attrs = {"name": user}
        if parents:
            attrs["in"] = " ".join(parents)
        root.append(E("user", attrs))
    return pretty(new_document(root))
