"""Location patterns: IP and symbolic-name patterns with partial orders.

Paper, Section 3: "A location pattern is an expression identifying a set
of physical locations ... Patterns are specified by using the wild card
character * instead of a specific name or number (or sequence of them)."

The two syntactic rules stated there are enforced:

- multiple wildcards must be contiguous (``151.*.30.*`` is rejected);
- wildcards are right-most in IP patterns (specificity grows left to
  right) and left-most in symbolic patterns (specificity grows right to
  left). ``151.100.*`` is shorthand for ``151.100.*.*``.

The orders ``≤ip`` and ``≤sn`` compare component-wise, the wildcard
dominating everything (Definition in Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import PatternError

__all__ = ["IPPattern", "SymbolicPattern", "ANY_IP", "ANY_SYMBOLIC"]


def _is_ip_component(component: str) -> bool:
    if not component.isdigit():
        return False
    return 0 <= int(component) <= 255


def _is_symbolic_component(component: str) -> bool:
    if not component:
        return False
    return all(ch.isalnum() or ch in "-_" for ch in component)


@dataclass(frozen=True)
class IPPattern:
    """A numeric location pattern such as ``151.100.*.*``.

    Stored as exactly four components; the abbreviated form with fewer
    than four (``151.100.*``) is padded with wildcards on the right. A
    fully concrete pattern (no wildcard) denotes a single machine.
    """

    components: tuple[str, str, str, str]

    @classmethod
    def parse(cls, pattern: str) -> "IPPattern":
        return _parse_ip(pattern)

    @property
    def is_concrete(self) -> bool:
        return "*" not in self.components

    def matches(self, address: str) -> bool:
        """Whether concrete *address* falls under this pattern."""
        try:
            other = _parse_ip(address)
        except PatternError:
            return False
        if not other.is_concrete:
            raise PatternError(f"expected a concrete IP address, got {address!r}")
        return other.dominated_by(self)

    def dominated_by(self, other: "IPPattern") -> bool:
        """``self ≤ip other``: every component equal or ``*`` in other."""
        return all(
            theirs == "*" or ours == theirs
            for ours, theirs in zip(self.components, other.components)
        )

    def specificity(self) -> int:
        """Number of concrete components (4 = a single machine)."""
        return sum(1 for component in self.components if component != "*")

    def __str__(self) -> str:
        return ".".join(self.components)


@lru_cache(maxsize=4096)
def _parse_ip(pattern: str) -> IPPattern:
    if not pattern or not pattern.strip():
        raise PatternError("empty IP pattern")
    parts = pattern.strip().split(".")
    if len(parts) > 4:
        raise PatternError(f"IP pattern {pattern!r} has more than 4 components")
    # Pad short patterns with wildcards: '151.100.*' == '151.100.*.*'.
    if len(parts) < 4:
        if parts[-1] != "*":
            raise PatternError(
                f"short IP pattern {pattern!r} must end with a wildcard"
            )
        parts = parts + ["*"] * (4 - len(parts))
    seen_wildcard = False
    for part in parts:
        if part == "*":
            seen_wildcard = True
        else:
            if seen_wildcard:
                raise PatternError(
                    f"wildcards must be right-most in IP pattern {pattern!r}"
                )
            if not _is_ip_component(part):
                raise PatternError(
                    f"invalid component {part!r} in IP pattern {pattern!r}"
                )
    return IPPattern((parts[0], parts[1], parts[2], parts[3]))


@dataclass(frozen=True)
class SymbolicPattern:
    """A symbolic location pattern such as ``*.lab.com`` or ``*.it``.

    Components are stored in source order (``("*", "lab", "com")``);
    comparison proceeds right to left, mirroring DNS specificity. A
    pattern with no wildcard denotes a single host. The bare ``*``
    matches every host.
    """

    components: tuple[str, ...]

    @classmethod
    def parse(cls, pattern: str) -> "SymbolicPattern":
        return _parse_symbolic(pattern)

    @property
    def is_concrete(self) -> bool:
        return "*" not in self.components

    def matches(self, hostname: str) -> bool:
        try:
            other = _parse_symbolic(hostname)
        except PatternError:
            return False
        if not other.is_concrete:
            raise PatternError(f"expected a concrete hostname, got {hostname!r}")
        return other.dominated_by(self)

    def dominated_by(self, other: "SymbolicPattern") -> bool:
        """``self ≤sn other``: component-wise from the right.

        Wildcards in *other* are contiguous and left-most; each inner
        ``*`` stands for exactly one label, while the final (left-most)
        ``*`` absorbs one or more remaining labels — so ``*.it`` covers
        ``infosys.bld1.it`` (the paper's Example 2) but not ``it``
        itself. The bare ``*`` covers every host.
        """
        if other.components == ("*",):
            return True
        ours = list(self.components)
        theirs = list(other.components)
        while theirs:
            their_part = theirs.pop()
            if their_part == "*":
                if not theirs:
                    # Left-most wildcard: one or more labels remain.
                    return len(ours) >= 1
                # Inner wildcard of a contiguous block: exactly one label
                # (which may itself be a wildcard of ours).
                if not ours:
                    return False
                ours.pop()
                continue
            if not ours:
                return False
            if ours.pop() != their_part:
                return False
        return not ours

    def specificity(self) -> int:
        return sum(1 for component in self.components if component != "*")

    def __str__(self) -> str:
        return ".".join(self.components)


@lru_cache(maxsize=4096)
def _parse_symbolic(pattern: str) -> SymbolicPattern:
    if not pattern or not pattern.strip():
        raise PatternError("empty symbolic pattern")
    parts = tuple(pattern.strip().lower().split("."))
    seen_concrete = False
    for part in parts:
        if part == "*":
            if seen_concrete:
                raise PatternError(
                    f"wildcards must be left-most in symbolic pattern {pattern!r}"
                )
        else:
            seen_concrete = True
            if not _is_symbolic_component(part):
                raise PatternError(
                    f"invalid component {part!r} in symbolic pattern {pattern!r}"
                )
    return SymbolicPattern(parts)


#: The pattern matching every machine, numerically / symbolically.
ANY_IP = IPPattern(("*", "*", "*", "*"))
ANY_SYMBOLIC = SymbolicPattern(("*",))
