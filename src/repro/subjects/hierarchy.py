"""The authorization subject hierarchy ASH (paper, Definition 1).

AS = UG × IP × SN: a subject specification combines a user-or-group
identifier, an IP pattern and a symbolic-name pattern. The partial order
is component-wise:

    ⟨ug_i, ip_i, sn_i⟩ ≤ ⟨ug_j, ip_j, sn_j⟩  iff
        ug_i is a member of ug_j  ∧  ip_i ≤ip ip_j  ∧  sn_i ≤sn sn_j

Requesters — always a concrete (user, IP address, hostname) triple — are
the minimal elements of ASH; authorizations may reference any element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SubjectError
from repro.subjects.location import IPPattern, SymbolicPattern
from repro.subjects.users import ANONYMOUS_USER, Directory

__all__ = ["SubjectSpec", "Requester", "SubjectHierarchy"]


@dataclass(frozen=True)
class SubjectSpec:
    """An element of AS: whom an authorization applies to.

    Built with :meth:`parse` from the paper's triple notation::

        SubjectSpec.parse("Foreign", "*", "*")
        SubjectSpec.parse("Sam", "*", "*.lab.com")
        SubjectSpec.parse("Public", "150.100.30.8", "*")
    """

    user_group: str
    ip: IPPattern
    symbolic: SymbolicPattern

    @classmethod
    def parse(
        cls,
        user_group: str,
        ip: str = "*",
        symbolic: str = "*",
    ) -> "SubjectSpec":
        if not user_group or not user_group.strip():
            raise SubjectError("subject must name a user or group")
        return cls(
            user_group.strip(),
            IPPattern.parse(ip),
            SymbolicPattern.parse(symbolic),
        )

    def unparse(self) -> str:
        return f"<{self.user_group},{self.ip},{self.symbolic}>"

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class Requester:
    """A concrete access requester: minimal element of ASH.

    ``user`` defaults to the anonymous identity; ``ip`` and
    ``hostname`` are the machine the connection originates from.
    ``credentials`` are attribute/value pairs established by the
    authentication layer (e.g. ``role=physician``), consumed by
    credential-restricted authorizations
    (:mod:`repro.authz.restrictions`).
    """

    user: str = ANONYMOUS_USER
    ip: str = "0.0.0.0"
    hostname: str = "localhost"
    credentials: tuple[tuple[str, str], ...] = ()

    def as_spec(self) -> SubjectSpec:
        return SubjectSpec.parse(self.user, self.ip, self.hostname)

    @property
    def credential_map(self) -> dict[str, str]:
        return dict(self.credentials)

    def with_credentials(self, **attributes: str) -> "Requester":
        """A copy of this requester carrying extra credentials."""
        merged = dict(self.credentials)
        merged.update({key: str(value) for key, value in attributes.items()})
        return Requester(
            self.user, self.ip, self.hostname, tuple(sorted(merged.items()))
        )

    def __str__(self) -> str:
        return f"{self.user}@{self.hostname}({self.ip})"


class SubjectHierarchy:
    """ASH: the partial order over subject specifications.

    Wraps a :class:`Directory` (for the UG component) and the pattern
    orders (for the location components).
    """

    def __init__(self, directory: Optional[Directory] = None) -> None:
        self.directory = directory if directory is not None else Directory()

    # -- the partial order -------------------------------------------------

    def dominates(self, lower: SubjectSpec, upper: SubjectSpec) -> bool:
        """``lower ≤ upper`` in ASH."""
        return (
            self.directory.is_member(lower.user_group, upper.user_group)
            and lower.ip.dominated_by(upper.ip)
            and lower.symbolic.dominated_by(upper.symbolic)
        )

    def strictly_dominates(self, lower: SubjectSpec, upper: SubjectSpec) -> bool:
        """``lower < upper``: dominated and not equal.

        This is the "more specific subject" relation used to discard
        overridden authorizations in ``initial_label`` (see DESIGN.md
        decision 3 on strictness).
        """
        if lower == upper:
            return False
        return self.dominates(lower, upper)

    def comparable(self, a: SubjectSpec, b: SubjectSpec) -> bool:
        return self.dominates(a, b) or self.dominates(b, a)

    # -- requester applicability ----------------------------------------------

    def applies_to(self, spec: SubjectSpec, requester: Requester) -> bool:
        """Whether an authorization for *spec* applies to *requester*.

        This is ``requester ≤ spec``: the user is (in) the user/group
        and the machine matches both location patterns. Unknown users
        are treated as not matching anything but the anonymous identity
        and ``Public``.
        """
        user = requester.user
        if self.directory.exists(user):
            if not self.directory.is_member(user, spec.user_group):
                return False
        else:
            # Unknown identity: only subject specs for that literal
            # identifier or for Public apply.
            if spec.user_group not in (user, "Public"):
                return False
        if not spec.ip.matches(requester.ip):
            return False
        if not spec.symbolic.matches(requester.hostname):
            return False
        return True

    def most_specific(self, specs: list[SubjectSpec]) -> list[SubjectSpec]:
        """The minimal (most specific) elements among *specs*."""
        return [
            spec
            for spec in specs
            if not any(
                other is not spec and self.strictly_dominates(other, spec)
                for other in specs
            )
        ]
