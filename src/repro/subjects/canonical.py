"""Subject canonicalization: effective-permission equivalence classes.

Two requesters are *equivalent* with respect to an authorization
universe when every subject specification in it applies to both or to
neither — equivalent requesters receive identical labels, identical
views and identical query answers. :func:`effective_class` maps a
:class:`~repro.subjects.hierarchy.Requester` to a frozen
:class:`EffectiveClass` key capturing exactly the inputs
:meth:`~repro.subjects.hierarchy.SubjectHierarchy.applies_to` and
:meth:`~repro.authz.authorization.Authorization.credentials_satisfied`
read, **intersected with the universe actually referenced by the
store's authorizations**:

- ``subjects`` — the requester's reflexive-transitive group closure,
  restricted to user/group identifiers some authorization names;
- ``locations`` — which of the referenced IP / symbolic-name patterns
  match the requester's machine (namespaced ``ip:`` / ``sn:`` so the
  two pattern spaces cannot alias);
- ``credentials`` — which referenced credential clauses the
  requester's presented credentials satisfy.

**Soundness** (why equal keys never over-share): an authorization's
applicability verdict for a requester is a function of (a) whether its
``ug`` is in the requester's closure — determined by ``subjects``
because the ``ug`` is in the intersected universe, (b) whether its
location patterns match — determined by ``locations``, and (c) which
credential clauses are satisfied — determined by ``credentials``.
Equal class ⇒ identical verdict for *every* authorization in the
store ⇒ identical views. The converse does not hold: two requesters
with the same permissions can land in different classes (the key may
over-split, e.g. unknown users with different login names), which
costs sharing but never correctness.

Unknown users (not in the directory) need no special flag:
``applies_to`` matches them against exactly ``{user, Public}``, which
is the closure :func:`effective_class` uses for them, so the same
reasoning applies.

Validity windows are deliberately **not** part of the class — they
depend on request *time*, not on the requester. Consumers caching by
class must fold a per-request validity marker into their cache key
(see :meth:`repro.authz.store.AuthorizationStore.validity_marker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.subjects.users import PUBLIC_GROUP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.authz.restrictions import CredentialClause
    from repro.subjects.hierarchy import Requester, SubjectHierarchy
    from repro.subjects.location import IPPattern, SymbolicPattern

__all__ = ["EffectiveClass", "effective_class"]


@dataclass(frozen=True)
class EffectiveClass:
    """Canonical, hashable key of one effective-permission class.

    Frozen so it can key caches (views, oracles, single-flight groups);
    requesters with equal keys provably hold identical authorization
    sets against the universe the key was computed from.
    """

    subjects: frozenset[str]
    locations: frozenset[str]
    credentials: frozenset[tuple[str, str, str]]

    def describe(self) -> str:
        """A stable human-readable rendering (diagnostics, audit)."""
        return (
            f"subjects={sorted(self.subjects)} "
            f"locations={sorted(self.locations)} "
            f"credentials={sorted(self.credentials)}"
        )


def effective_class(
    requester: "Requester",
    hierarchy: "SubjectHierarchy",
    user_groups: Iterable[str] = (),
    ip_patterns: Iterable["IPPattern"] = (),
    symbolic_patterns: Iterable["SymbolicPattern"] = (),
    credential_clauses: Iterable["CredentialClause"] = (),
) -> EffectiveClass:
    """Canonicalize *requester* against an authorization universe.

    The universe iterables are the distinct ``ug`` identifiers, location
    patterns and credential clauses referenced by the authorization
    store (see ``AuthorizationStore.subject_universe``). Anything a
    requester is or has *outside* that universe cannot influence any
    applicability verdict and is excluded, which is what lets distinct
    requesters collapse into one class.
    """
    directory = hierarchy.directory
    user = requester.user
    if directory.exists(user):
        closure = directory.expanded_groups(user)
    else:
        # applies_to() matches unknown identities against their literal
        # name and Public only; use that as the closure.
        closure = frozenset((user, PUBLIC_GROUP))
    subjects = closure.intersection(user_groups)

    locations = set()
    for pattern in ip_patterns:
        if pattern.matches(requester.ip):
            locations.add(f"ip:{pattern}")
    for pattern in symbolic_patterns:
        if pattern.matches(requester.hostname):
            locations.add(f"sn:{pattern}")

    presented = requester.credential_map
    satisfied = frozenset(
        (clause.key, clause.op, clause.value)
        for clause in credential_clauses
        if clause.satisfied(presented)
    )
    return EffectiveClass(
        subjects=subjects,
        locations=frozenset(locations),
        credentials=satisfied,
    )
