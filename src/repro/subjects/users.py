"""Users and groups: the server-side directory.

Paper, Section 3: "A group is a set of users defined at the server.
Groups do not need to be disjoint and can be nested." The
:class:`Directory` therefore stores a DAG of group memberships (users
and groups may belong to several groups; cycles are rejected) and
answers the reflexive-transitive membership queries the ASH partial
order needs.

Conventional identifiers:

- ``Public`` — the implicit group every user (including the anonymous
  user) belongs to; created automatically.
- ``anonymous`` — the identity of unauthenticated requesters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import SubjectError

__all__ = ["Directory", "PUBLIC_GROUP", "ANONYMOUS_USER"]

PUBLIC_GROUP = "Public"
ANONYMOUS_USER = "anonymous"


@dataclass
class _Entry:
    name: str
    is_group: bool
    parents: set[str] = field(default_factory=set)   # groups this belongs to
    members: set[str] = field(default_factory=set)   # direct members (groups only)


class Directory:
    """The user/group database of one server.

    All queries are by identifier string; :meth:`expanded_groups`
    memoizes the reflexive-transitive closure and is invalidated on any
    mutation.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self._closure_cache: dict[str, frozenset[str]] = {}
        self._version = 0
        self.add_group(PUBLIC_GROUP)
        self.add_user(ANONYMOUS_USER)

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (cache guard).

        Group membership feeds requester canonicalization
        (:func:`repro.subjects.canonical.effective_class`); consumers
        memoizing per-requester classes key them on this counter so a
        directory change invalidates them, exactly like
        :attr:`repro.authz.store.AuthorizationStore.version` guards
        cached views.
        """
        return self._version

    def add_user(self, name: str, groups: tuple[str, ...] | list[str] = ()) -> str:
        """Register user *name*, optionally inside *groups*.

        Every user is implicitly a member of ``Public``.
        """
        self._add_entry(name, is_group=False)
        self.add_member(PUBLIC_GROUP, name)
        for group in groups:
            self.add_member(group, name)
        return name

    def add_group(self, name: str, parents: tuple[str, ...] | list[str] = ()) -> str:
        """Register group *name*, optionally nested inside *parents*."""
        self._add_entry(name, is_group=True)
        for parent in parents:
            self.add_member(parent, name)
        return name

    def _add_entry(self, name: str, is_group: bool) -> None:
        if not name or not name.strip():
            raise SubjectError("empty subject identifier")
        existing = self._entries.get(name)
        if existing is not None:
            if existing.is_group != is_group:
                kind = "group" if existing.is_group else "user"
                raise SubjectError(f"{name!r} already exists as a {kind}")
            return
        self._entries[name] = _Entry(name, is_group)
        self._closure_cache.clear()
        self._version += 1

    def add_member(self, group: str, member: str) -> None:
        """Make *member* (a user or a group) a direct member of *group*."""
        group_entry = self._entries.get(group)
        if group_entry is None or not group_entry.is_group:
            raise SubjectError(f"unknown group {group!r}")
        member_entry = self._entries.get(member)
        if member_entry is None:
            raise SubjectError(f"unknown subject {member!r}")
        if member == group:
            raise SubjectError(f"group {group!r} cannot contain itself")
        if member_entry.is_group and self._would_cycle(group, member):
            raise SubjectError(
                f"membership of {member!r} in {group!r} would create a cycle"
            )
        group_entry.members.add(member)
        member_entry.parents.add(group)
        self._closure_cache.clear()
        self._version += 1

    def _would_cycle(self, group: str, member: str) -> bool:
        # A cycle appears iff group is (transitively) a member of member.
        return member in self._ancestors_of(group)

    # -- queries ------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._entries

    def is_group(self, name: str) -> bool:
        entry = self._entries.get(name)
        return entry is not None and entry.is_group

    def is_user(self, name: str) -> bool:
        entry = self._entries.get(name)
        return entry is not None and not entry.is_group

    def users(self) -> Iterator[str]:
        for entry in self._entries.values():
            if not entry.is_group:
                yield entry.name

    def groups(self) -> Iterator[str]:
        for entry in self._entries.values():
            if entry.is_group:
                yield entry.name

    def direct_members(self, group: str) -> frozenset[str]:
        entry = self._entries.get(group)
        if entry is None or not entry.is_group:
            raise SubjectError(f"unknown group {group!r}")
        return frozenset(entry.members)

    def expanded_groups(self, name: str) -> frozenset[str]:
        """The reflexive-transitive group closure of *name*.

        For a user: the user itself plus every group it (transitively)
        belongs to. For a group: the group plus its ancestors. This is
        exactly the set of ``ug`` identifiers whose authorizations apply
        to *name*.
        """
        cached = self._closure_cache.get(name)
        if cached is not None:
            return cached
        if name not in self._entries:
            raise SubjectError(f"unknown subject {name!r}")
        closure = frozenset(self._ancestors_of(name) | {name})
        self._closure_cache[name] = closure
        return closure

    def _ancestors_of(self, name: str) -> set[str]:
        result: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            entry = self._entries.get(current)
            if entry is None:
                continue
            for parent in entry.parents:
                if parent not in result:
                    result.add(parent)
                    frontier.append(parent)
        return result

    def is_member(self, subject: str, group: str, strict: bool = False) -> bool:
        """Reflexive-transitive membership test (``ug_i member of ug_j``).

        With ``strict=True`` the reflexive case is excluded.
        """
        if subject == group:
            return not strict
        if subject not in self._entries:
            return False
        return group in self.expanded_groups(subject)

    def members_recursive(self, group: str) -> frozenset[str]:
        """Every user transitively inside *group*."""
        entry = self._entries.get(group)
        if entry is None or not entry.is_group:
            raise SubjectError(f"unknown group {group!r}")
        users: set[str] = set()
        frontier = [group]
        visited: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            current_entry = self._entries[current]
            for member in current_entry.members:
                member_entry = self._entries[member]
                if member_entry.is_group:
                    frontier.append(member)
                else:
                    users.add(member)
        return frozenset(users)

    def ensure_user(self, name: Optional[str]) -> str:
        """Normalize an authenticated identity: ``None`` -> anonymous."""
        if name is None:
            return ANONYMOUS_USER
        if not self.is_user(name):
            raise SubjectError(f"unknown user {name!r}")
        return name
