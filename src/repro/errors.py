"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems narrow it further:
parsing problems (XML, DTD, XPath) derive from :class:`ParseError` and
carry a source position; semantic problems (validation, authorization
specification, policy configuration) have their own branches.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParseError(ReproError):
    """A syntactic error found while parsing some textual input.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based source position where the problem was detected. ``0``
        means the position is unknown (e.g. end of input of an empty
        string).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLSyntaxError(ParseError):
    """The input is not a well-formed XML document."""


class DTDSyntaxError(ParseError):
    """The input is not a syntactically correct DTD."""


class XPathSyntaxError(ParseError):
    """The input is not a valid path expression."""


class XPathEvaluationError(ReproError):
    """A path expression failed at evaluation time (e.g. type error)."""


class ValidationError(ReproError):
    """A well-formed document does not conform to its DTD.

    The full list of violations is available as :attr:`violations`; the
    exception message shows the first few.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        shown = "; ".join(self.violations[:3])
        extra = len(self.violations) - 3
        if extra > 0:
            shown += f"; ... and {extra} more"
        super().__init__(f"document is not valid: {shown}")


class SubjectError(ReproError):
    """An invalid subject specification (bad pattern, unknown user...)."""


class PatternError(SubjectError):
    """A malformed IP or symbolic-name location pattern."""


class AuthorizationError(ReproError):
    """An invalid access authorization specification."""


class XACLError(ParseError):
    """An XACL document does not follow the expected security markup."""


class RepositoryError(ReproError):
    """A server repository problem (unknown URI, duplicate binding...)."""


class PolicyError(ReproError):
    """An invalid access-control policy configuration."""
