"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems narrow it further:
parsing problems (XML, DTD, XPath) derive from :class:`ParseError` and
carry a source position; semantic problems (validation, authorization
specification, policy configuration) have their own branches.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParseError(ReproError):
    """A syntactic error found while parsing some textual input.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based source position where the problem was detected. ``0``
        means the position is unknown (e.g. end of input of an empty
        string).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLSyntaxError(ParseError):
    """The input is not a well-formed XML document."""


class DTDSyntaxError(ParseError):
    """The input is not a syntactically correct DTD."""


class XPathSyntaxError(ParseError):
    """The input is not a valid path expression."""


class XPathEvaluationError(ReproError):
    """A path expression failed at evaluation time (e.g. type error)."""


class RewriteUnsupported(ReproError):
    """A query falls outside the rewritable XPath subset.

    Raised by :mod:`repro.rewrite` when a request query cannot be
    compiled into a guarded query over the source document (variable
    references, view-sensitive functions like ``id()`` / ``lang()``,
    unknown functions). The server treats this as a routing decision,
    not a failure: the request transparently falls back to the
    materialized-view pipeline (see docs/VIEWS.md).

    Attributes
    ----------
    reason:
        Machine-readable cause (e.g. ``"variable-reference"``,
        ``"function:lang"``), used as the ``reason`` label on the
        ``rewrite_fallback_total`` counter.
    """

    def __init__(self, message: str, reason: str = "unsupported"):
        self.reason = reason
        super().__init__(message)


class ValidationError(ReproError):
    """A well-formed document does not conform to its DTD.

    The full list of violations is available as :attr:`violations`; the
    exception message shows the first few.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        shown = "; ".join(self.violations[:3])
        extra = len(self.violations) - 3
        if extra > 0:
            shown += f"; ... and {extra} more"
        super().__init__(f"document is not valid: {shown}")


class SubjectError(ReproError):
    """An invalid subject specification (bad pattern, unknown user...)."""


class PatternError(SubjectError):
    """A malformed IP or symbolic-name location pattern."""


class AuthorizationError(ReproError):
    """An invalid access authorization specification."""


class XACLError(ParseError):
    """An XACL document does not follow the expected security markup."""


class RepositoryError(ReproError):
    """A server repository problem (unknown URI, duplicate binding...)."""


class PolicyError(ReproError):
    """An invalid access-control policy configuration."""


class ResourceError(ReproError):
    """A resource guard tripped: the request asked for more work than the
    configured :class:`~repro.limits.ResourceLimits` allow.

    Guard trips are *refusals*, not malfunctions — they are the intended
    behaviour when facing hostile or runaway inputs (entity bombs,
    pathological nesting, unbounded queries, requests past their
    deadline). Catch :class:`ResourceError` to handle both branches.
    """


class LimitExceeded(ResourceError):
    """A quantitative resource limit was exceeded.

    Attributes
    ----------
    limit:
        Machine-readable name of the tripped limit (e.g.
        ``"max_tree_depth"``), matching the field name on
        :class:`~repro.limits.ResourceLimits`.
    value:
        The observed quantity at the moment of the trip (best effort).
    maximum:
        The configured cap.
    """

    def __init__(
        self,
        message: str,
        limit: str = "",
        value: int | float | None = None,
        maximum: int | float | None = None,
    ):
        self.limit = limit
        self.value = value
        self.maximum = maximum
        super().__init__(message)


class DeadlineExceeded(ResourceError):
    """The request ran past its wall-clock deadline.

    Attributes
    ----------
    elapsed, budget:
        Seconds spent and seconds allowed, when known.
    """

    def __init__(
        self,
        message: str,
        elapsed: float | None = None,
        budget: float | None = None,
    ):
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(message)


class PoolError(ReproError):
    """A multi-process serving-pool problem (see ``repro.server.pool``).

    Pool errors are *infrastructure* outcomes, not policy decisions:
    they say the pool could not get the request to a healthy worker (or
    could not get the answer back), never anything about what the
    requester is entitled to see. All of them pickle cleanly, because
    they may be minted on either side of the IPC boundary.
    """


class WorkerLost(PoolError):
    """The worker holding this request died (crash, kill, OOM, IPC
    corruption) before a response came back.

    The request has **exactly one** outcome — this error — even though
    the worker may or may not have executed it before dying; callers
    that retry must tolerate at-most-once side effects (reads are safe).

    Attributes
    ----------
    worker, shard:
        The worker index and document shard the request was routed to,
        when known.
    reason:
        Machine-readable cause: ``"crashed"``, ``"hung"``,
        ``"heartbeat-timeout"``, ``"ipc-corrupt"``, ...
    """

    def __init__(
        self,
        message: str,
        worker: int | None = None,
        shard: int | None = None,
        reason: str = "",
    ):
        self.worker = worker
        self.shard = shard
        self.reason = reason
        super().__init__(message)


class PoolSaturated(PoolError):
    """The target worker's bounded queue is full: the request was shed
    at admission (load-shedding backpressure), not queued.

    Attributes
    ----------
    worker:
        The worker whose queue was full.
    depth:
        The configured queue depth that was exhausted.
    """

    def __init__(self, message: str, worker: int | None = None, depth: int | None = None):
        self.worker = worker
        self.depth = depth
        super().__init__(message)


class PoolUnhealthy(PoolError):
    """The shard's circuit breaker is open and no in-process fallback is
    configured: the request fails fast instead of queueing behind a
    worker that keeps dying.

    Attributes
    ----------
    shard:
        The unhealthy document shard.
    """

    def __init__(self, message: str, shard: int | None = None):
        self.shard = shard
        super().__init__(message)


class XMLLimitExceeded(XMLSyntaxError, LimitExceeded):
    """An XML parsing guard tripped (entity bomb, depth, size...).

    Doubles as an :class:`XMLSyntaxError` so existing parse-error
    handling keeps working, while ``except LimitExceeded`` sees the
    typed guard trip.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        limit: str = "",
        value: int | float | None = None,
        maximum: int | float | None = None,
    ):
        XMLSyntaxError.__init__(self, message, line, column)
        # After the call: ParseError's cooperative super().__init__ runs
        # LimitExceeded.__init__ (next in the MRO) with defaults, so the
        # metadata must be assigned last.
        self.limit = limit
        self.value = value
        self.maximum = maximum


class DTDLimitExceeded(DTDSyntaxError, LimitExceeded):
    """A DTD parsing guard tripped (parameter-entity expansion, size)."""

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        limit: str = "",
        value: int | float | None = None,
        maximum: int | float | None = None,
    ):
        DTDSyntaxError.__init__(self, message, line, column)
        # Assigned last: see XMLLimitExceeded.
        self.limit = limit
        self.value = value
        self.maximum = maximum


class XPathLimitExceeded(XPathEvaluationError, LimitExceeded):
    """An XPath evaluation exhausted its step budget."""

    def __init__(
        self,
        message: str,
        limit: str = "max_xpath_steps",
        value: int | float | None = None,
        maximum: int | float | None = None,
    ):
        XPathEvaluationError.__init__(self, message)
        # Assigned last: see XMLLimitExceeded.
        self.limit = limit
        self.value = value
        self.maximum = maximum
