"""Resource limits and deadlines for the request pipeline.

The paper's security processor sits server-side in front of untrusted
requesters (Section 7), so every stage of the pipeline — parsing,
labeling, pruning, query evaluation — must do *bounded* work per
request. This module defines the two guard primitives threaded through
the stack:

- :class:`ResourceLimits`: a bundle of quantitative caps (input size,
  tree depth, node count, entity expansion, XPath steps) plus an
  optional per-request wall-clock budget. Stages receiving a limits
  object enforce the caps they understand and raise
  :class:`~repro.errors.LimitExceeded` subtypes when tripped.
- :class:`Deadline`: a monotonic-clock wall-time guard. One deadline is
  created per request and shared by every stage, so the budget covers
  the whole pipeline, not each stage separately. Long loops call
  :meth:`Deadline.check` periodically and get a typed
  :class:`~repro.errors.DeadlineExceeded` instead of running forever.

Both are cheap when disabled: a ``None`` limits object (the library
default for direct parser/evaluator use) adds a single attribute test
per guarded loop, and an unbounded deadline's ``check`` is a no-op.
The server facade defaults to :data:`DEFAULT_LIMITS`.

Guard trips are counted (``guard_trips_total{kind=...}`` on the
server's metrics registry) and surfaced as structured failures at the
facade; see docs/ROBUSTNESS.md for the full guard catalogue and
docs/OBSERVABILITY.md for the metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import DeadlineExceeded

__all__ = ["Deadline", "ResourceLimits", "DEFAULT_LIMITS", "UNLIMITED"]


class Deadline:
    """A wall-clock budget anchored to the monotonic clock.

    ``Deadline.after(seconds)`` starts the budget now;
    ``Deadline.after(None)`` (or :data:`Deadline.UNBOUNDED`) never
    expires and checks for free. Deadlines are compared against
    ``time.monotonic()`` so system clock adjustments cannot extend or
    shorten a request's budget.
    """

    __slots__ = ("_expires_at", "_started", "budget")

    def __init__(self, budget: Optional[float]) -> None:
        self.budget = budget
        self._started = time.monotonic()
        self._expires_at = None if budget is None else self._started + budget

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline *seconds* from now (``None`` = unbounded)."""
        return cls(seconds)

    @property
    def unbounded(self) -> bool:
        return self._expires_at is None

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` when unbounded; never negative)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self, what: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        if self._expires_at is None:
            return
        now = time.monotonic()
        if now >= self._expires_at:
            elapsed = now - self._started
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget:.3f}s deadline "
                f"(elapsed {elapsed:.3f}s)",
                elapsed=elapsed,
                budget=self.budget,
            )

    def __reduce__(self):
        """Pickle as *remaining-time transfer*.

        A deadline is anchored to this process's monotonic clock, which
        has no meaning in another process. Shipping one across an IPC
        boundary therefore transfers the *remaining* budget: unpickling
        re-arms a fresh deadline with however much time was left at
        pickling time, so the receiving worker enforces the same
        wall-clock cutoff (minus transport latency) instead of a
        nonsense timestamp. An already-expired deadline transfers as a
        zero-budget one that trips on the first ``check``.
        """
        return (Deadline, (self.remaining(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "<Deadline unbounded>"
        return f"<Deadline budget={self.budget}s remaining={self.remaining():.3f}s>"


#: A shared never-expiring deadline for call sites that want to pass
#: "no deadline" without allocating.
Deadline.UNBOUNDED = Deadline(None)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ResourceLimits:
    """Per-request caps on pipeline resource use.

    Every field accepts ``None`` to disable that single cap. The
    defaults are sized for the server facade: generous enough for any
    legitimate document in the test corpus and benchmarks, small enough
    that hostile constructions (entity bombs, nesting attacks,
    pathological queries) trip a guard in milliseconds instead of
    exhausting the process.

    Fields
    ------
    max_input_bytes:
        Upper bound on the character length of a document (or DTD)
        handed to a parser.
    max_tree_depth:
        Maximum element nesting depth the XML parser will build.
    max_node_count:
        Maximum number of nodes (elements + text runs) one parse may
        create.
    max_entity_expansion_chars:
        Total characters one reference-resolution pass may produce —
        the billion-laughs defense.
    max_entity_expansion_depth:
        Maximum nesting of general-entity expansions (cycle defense).
    max_entity_expansions:
        Maximum number of parameter-entity expansions in one DTD parse.
    max_xpath_steps:
        Budget of evaluation steps (context-node visits, candidate
        nodes, predicate evaluations) for one XPath evaluation.
    deadline_seconds:
        Wall-clock budget for one whole request; enforced via a shared
        :class:`Deadline` checked periodically by every stage.
    max_stream_buffer_bytes:
        Upper bound on characters the streaming pipeline may hold
        back at once (the reader's carry-over buffer plus the
        labeler's pending-subtree buffer). This is the streaming
        engine's memory guard — it replaces ``max_node_count``, which
        only caps *materialized* trees.
    """

    max_input_bytes: Optional[int] = 50_000_000
    max_tree_depth: Optional[int] = 10_000
    max_node_count: Optional[int] = 5_000_000
    max_entity_expansion_chars: Optional[int] = 10_000_000
    max_entity_expansion_depth: Optional[int] = 64
    max_entity_expansions: Optional[int] = 10_000
    max_xpath_steps: Optional[int] = 10_000_000
    deadline_seconds: Optional[float] = None
    max_stream_buffer_bytes: Optional[int] = 4_000_000

    def deadline(self) -> Deadline:
        """Arm a fresh :class:`Deadline` for one request."""
        if self.deadline_seconds is None:
            return Deadline.UNBOUNDED  # type: ignore[attr-defined]
        return Deadline.after(self.deadline_seconds)

    def with_deadline(self, seconds: Optional[float]) -> "ResourceLimits":
        """A copy with a different wall-clock budget."""
        return replace(self, deadline_seconds=seconds)

    def for_transfer(self, deadline: Optional[Deadline] = None) -> "ResourceLimits":
        """A copy suitable for crossing a process (IPC) boundary.

        *deadline* is the request's already-armed :class:`Deadline` in
        the sending process; the copy's ``deadline_seconds`` becomes its
        *remaining* budget (``None`` when unbounded), so the receiving
        worker re-arms a deadline covering only the time actually left.
        A request that expires while queued in the parent ships a
        zero-budget deadline and fails fast on the worker's first
        check. With no *deadline*, ``deadline_seconds`` transfers
        unchanged (fresh budget on the far side).
        """
        if deadline is None or deadline.unbounded:
            return self
        return replace(self, deadline_seconds=deadline.remaining())

    @classmethod
    def unlimited(cls) -> "ResourceLimits":
        """Every cap disabled (the behaviour of passing no limits)."""
        return cls(
            max_input_bytes=None,
            max_tree_depth=None,
            max_node_count=None,
            max_entity_expansion_chars=None,
            max_entity_expansion_depth=None,
            max_entity_expansions=None,
            max_xpath_steps=None,
            deadline_seconds=None,
            max_stream_buffer_bytes=None,
        )


#: The server facade's defaults.
DEFAULT_LIMITS = ResourceLimits()

#: Every guard disabled; useful for trusted administrative workloads.
UNLIMITED = ResourceLimits.unlimited()
