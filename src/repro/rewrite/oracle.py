"""Lazy view-visibility oracle for virtual views.

A materialized view answers "is node *n* visible?" by labeling and
pruning the whole tree. The oracle answers the same question — with the
same labels, computed by the same :class:`~repro.core.labeling.TreeLabeler`
propagation code — but lazily: a node's label is derived on first use
from its ancestor chain and memoized, so a selective query touches only
the labels along its matched paths.

View-existence semantics mirror :func:`repro.core.prune.build_view`
exactly:

- an **element** exists iff it *survives*: its final sign is permitted,
  or it keeps a visible attribute, or some descendant element does
  (structural survivors keep bare tags);
- an **attribute** exists iff its own label is permitted (which implies
  the owning element survives);
- **text / comment / PI** nodes exist iff their parent element's final
  sign is permitted (a bare-tag survivor shows no content); nodes
  hanging directly off the Document (prolog comments/PIs) never appear
  in a view;
- the **document** is non-empty iff the root element survives.

``survives`` uses the equivalent formulation "∃ a descendant-or-self
element that is *directly visible* (permitted final sign or a permitted
attribute)", memoizing negative subtrees so repeated probes amortize to
one scan per subtree.
"""

from __future__ import annotations

from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import TreeLabeler
from repro.core.labels import Label
from repro.core.prune import build_view
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xml.serializer import serialize
from repro.xpath.compile import RelativeMode

__all__ = ["VisibilityOracle"]


class _LazyLabels:
    """A dict-like labels mapping backed by the oracle's lazy labeler.

    :func:`~repro.core.prune.build_view` only reads labels through
    ``.get(node)``; routing that through :meth:`TreeLabeler.label_lazily`
    lets the *unmodified* pruning code serialize virtual matches — the
    byte-identity guarantee comes from running the same construction.
    """

    __slots__ = ("_labeler", "_labels")

    def __init__(self, labeler: TreeLabeler, labels: dict[Node, Label]) -> None:
        self._labeler = labeler
        self._labels = labels

    def get(self, node: Node, default=None) -> Optional[Label]:
        return self._labeler.label_lazily(node, self._labels)


class VisibilityOracle:
    """View membership / string-values for one (document, auths, policy).

    Binding the authorization paths happens once, at construction
    (under the usual ``label.bind`` span); everything after is lazy and
    memoized, so an oracle is cheap to keep around and share between
    requests of one effective-permission class (the store and document
    versions it was built against are the sharer's staleness guard).

    Thread-safety: all memo writes are idempotent dict inserts of
    deterministic values; concurrent readers may duplicate a little
    work but never see a wrong answer.
    """

    #: Elements scanned between two deadline checks in a survives() scan.
    _DEADLINE_STRIDE = 2048

    def __init__(
        self,
        document: Document,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        open_policy: bool = False,
        relative_mode: RelativeMode = "descendant",
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.document = document
        self.open_policy = open_policy
        self._labeler = TreeLabeler(
            document,
            instance_auths,
            schema_auths,
            hierarchy,
            policy=policy,
            relative_mode=relative_mode,
            limits=limits,
            deadline=deadline,
        )
        # Binding evaluates every authorization path once — the only
        # eager work. The construction deadline applies here; later
        # requests sharing the oracle pass their own deadline per call.
        self._labeler.bind()
        self._labels: dict[Node, Label] = {}
        self._survives: dict[Element, bool] = {}
        # Compiled stream patterns for incremental refresh after an
        # update; built on first use. False = proven unsupported.
        self._patterns = None
        self._id_attrs: Optional[dict[str, tuple[str, ...]]] = None

    # -- labels ------------------------------------------------------------

    def label(self, node: Node) -> Label:
        """The node's label, computed lazily (identical to a full run)."""
        return self._labeler.label_lazily(node, self._labels)

    def permitted(self, node: Node) -> bool:
        """Whether the node's final sign permits it (policy-aware)."""
        return self.label(node).permitted_under(self.open_policy)

    # -- view existence ----------------------------------------------------

    def exists(self, node: Node, deadline: Optional[Deadline] = None) -> bool:
        """Whether *node* appears in the requester's materialized view."""
        if isinstance(node, Element):
            return self.survives(node, deadline)
        if isinstance(node, Attribute):
            return self.permitted(node)
        if isinstance(node, (Text, Comment, ProcessingInstruction)):
            parent = node.parent
            # Prolog/epilog nodes (parent is the Document) are never
            # part of a view; build_view copies only the root element.
            if not isinstance(parent, Element):
                return False
            return self.permitted(parent)
        if isinstance(node, Document):
            return self.has_visible_root()
        return False

    def survives(
        self, element: Element, deadline: Optional[Deadline] = None
    ) -> bool:
        """Whether *element* is kept by pruning (possibly as a bare tag).

        An element survives iff some descendant-or-self element is
        directly visible. Subtrees proven invisible are memoized as
        ``False``, so repeated probes across one query amortize.
        """
        memo = self._survives
        known = memo.get(element)
        if known is not None:
            return known
        stack: list[Element] = [element]
        dead: list[Element] = []
        scanned = 0
        while stack:
            node = stack.pop()
            known = memo.get(node)
            if known is True:
                memo[element] = True
                return True
            if known is False:
                continue  # proven-dead subtree: nothing visible below
            if self._directly_visible(node):
                memo[node] = True
                memo[element] = True
                return True
            dead.append(node)
            for child in node.children:
                if isinstance(child, Element):
                    stack.append(child)
            scanned += 1
            if deadline is not None and scanned % self._DEADLINE_STRIDE == 0:
                deadline.check("virtual-view visibility scan")
        # No directly-visible element anywhere below: every scanned
        # element (element included) is invisible.
        for node in dead:
            memo[node] = False
        return False

    def _directly_visible(self, element: Element) -> bool:
        if self.permitted(element):
            return True
        return any(
            self.permitted(attribute)
            for attribute in element.attributes.values()
        )

    def has_visible_root(self) -> bool:
        """Whether the view is non-empty (the root element survives)."""
        root = self.document.root
        return root is not None and self.survives(root)

    # -- virtual string-values ---------------------------------------------

    def string_value(self, node: Node) -> str:
        """The node's string-value *as seen in the view*.

        For elements: the concatenation of descendant text whose parent
        element is permitted — exactly the text the pruned copy keeps.
        Other node kinds keep their source string-value (they only
        exist in the view whole).
        """
        if isinstance(node, Attribute):
            return node.value
        if isinstance(node, (Text, Comment, ProcessingInstruction)):
            return node.data
        if isinstance(node, Document):
            root = node.root
            if root is None or not self.survives(root):
                return ""
            return self.string_value(root)
        if not isinstance(node, Element):
            return ""
        parts: list[str] = []
        # Preorder with reversed pushes keeps document order; text is
        # pushed as plain strings so subtree text interleaves correctly.
        stack: list = [(node, self.permitted(node))]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                parts.append(item)
                continue
            element, permitted = item
            for child in reversed(element.children):
                if isinstance(child, Text):
                    if permitted:
                        stack.append(child.data)
                elif isinstance(child, Element):
                    stack.append((child, self.permitted(child)))
        return "".join(parts)

    # -- match serialization -----------------------------------------------

    def serialize_match(self, node: Node) -> str:
        """Serialize one matched source node as its view counterpart.

        Element matches are serialized by feeding the *original*
        pruning construction (:func:`~repro.core.prune.build_view`'s
        element builder) a lazy labels mapping — the output is the
        byte-identical subtree a materialized view would contain,
        because it is produced by the same code over the same labels.
        A Document match yields the whole view. Leaf nodes serialize
        directly (the view's copies carry the same data).
        """
        if isinstance(node, Document):
            view = build_view(
                node, self.lazy_labels(), self.open_policy, loosen_dtd=True
            )
            return serialize(view)
        if isinstance(node, Element):
            from repro.core.prune import _build_element

            copy = _build_element(node, self.lazy_labels(), self.open_policy)
            if copy is None:  # matched nodes always exist; defensive
                return ""
            return serialize(copy)
        return serialize(node)

    def lazy_labels(self) -> _LazyLabels:
        """A labels mapping (``.get``) computing labels on demand."""
        return _LazyLabels(self._labeler, self._labels)

    # -- view-level ID lookup ------------------------------------------------

    def id_attribute_names(self, element_name: str) -> tuple[str, ...]:
        """The ID-typed attribute names for *element_name*.

        With a DTD, attributes *declared* of type ID are authoritative
        (per element type); without one, the attribute named ``id`` is
        the conventional fallback — both exactly as the materialized
        evaluator's ``id()`` resolves them.
        """
        if self._id_attrs is None:
            id_attrs: dict[str, tuple[str, ...]] = {}
            dtd = self.document.dtd
            if dtd is not None:
                from repro.dtd.model import AttributeType

                for decl in dtd.elements.values():
                    names = tuple(
                        attr.name
                        for attr in decl.attributes.values()
                        if attr.type is AttributeType.ID
                    )
                    if names:
                        id_attrs[decl.name] = names
            self._id_attrs = id_attrs
        if self.document.dtd is not None:
            return self._id_attrs.get(element_name, ())
        return ("id",)

    def visible_ids(self, element: Element) -> list[str]:
        """The element's ID attribute values *as seen in the view* —
        an ID hidden by the policy must not make its element findable
        through ``id()``."""
        values: list[str] = []
        for name in self.id_attribute_names(element.name):
            attribute = element.attribute_node(name)
            if attribute is not None and self.permitted(attribute):
                values.append(attribute.value)
        return values

    # -- incremental refresh after an update ---------------------------------

    def refreshed_for_update(self, document, node_map, deltas):
        """A twin of this oracle on the post-update tree, plus whether
        the edit affected this class's view.

        *document* is the committed clone, *node_map* the old→new map
        from :func:`repro.update.relabel.clone_with_map`, *deltas* the
        applied :class:`~repro.update.relabel.EditDelta` sequence.

        Returns ``None`` when the policy cannot be rebound
        incrementally (the caller should rebuild from scratch), else
        ``(refreshed_oracle, affected)``. This oracle is **not
        mutated** beyond read-only memo probes — in-flight queries over
        the pre-update tree keep their consistent state; the refreshed
        twin carries every memo over by O(memo) key remapping, with the
        edited subtrees (and each anchor's ancestor survival chain)
        purged and rebound.

        ``affected`` is ``True`` when any edited region was visible
        before (``old_nodes`` against the pre-update tree) or is
        visible after (``dirty`` against the refreshed twin).
        ``False`` is a proof that the served view bytes are unchanged:
        the pruned copy is a pure function of the visible node set;
        the removed-or-replaced old content and the new content are
        both invisible to this class, and every node outside the
        edited regions keeps its label (top-down propagation) and its
        structural survival (no visible node appeared or disappeared
        below any ancestor).
        """
        import copy as _copy

        from repro.update.relabel import compile_auth_patterns, rebind_subtree
        from repro.xml.traversal import preorder

        if self._patterns is None:
            compiled = compile_auth_patterns(self._labeler)
            self._patterns = compiled if compiled is not None else False
        if self._patterns is False:
            return None

        # Phase 1 — before-visibility, against the current (old) tree:
        # old_nodes are the pre-update counterparts of every edited or
        # removed region; element survival subsumes attribute and text
        # visibility (a visible attribute or text makes its element
        # directly visible).
        affected = False
        for delta in deltas:
            for old_root in delta.old_nodes:
                if isinstance(old_root, Element) and self.survives(old_root):
                    affected = True
                    break
            if affected:
                break

        # Phase 2 — the refreshed twin: remap every memo onto the new
        # tree, then purge what the edit may have changed (labels and
        # bins inside dirty regions, survival along each anchor's
        # ancestor chain, everything under detached subtrees).
        # TreeLabeler.rebase installs a fresh bins dict and
        # rebind_subtree pops a node's mapping before re-binning, so
        # the twin never writes through to this oracle's state.
        clone = _copy.copy(self)
        clone._labeler = _copy.copy(self._labeler)
        clone._labeler.rebase(document, node_map)
        clone.document = document
        clone._labels = {
            node_map[node]: label
            for node, label in self._labels.items()
            if node in node_map
        }
        clone._survives = {
            node_map[node]: flag
            for node, flag in self._survives.items()
            if node in node_map
        }
        clone._id_attrs = None
        for delta in deltas:
            for removed in delta.removed:
                for node in preorder(removed):
                    clone._labels.pop(node, None)
                    if isinstance(node, Element):
                        clone._survives.pop(node, None)
            if delta.dirty is not None:
                rebind_subtree(clone._labeler, clone._patterns, delta.dirty)
                for node in preorder(delta.dirty):
                    clone._labels.pop(node, None)
                    if isinstance(node, Element):
                        clone._survives.pop(node, None)
            ancestor = delta.anchor
            while isinstance(ancestor, Element):
                clone._survives.pop(ancestor, None)
                ancestor = ancestor.parent

        # Phase 3 — after-visibility, against the refreshed twin.
        if not affected:
            for delta in deltas:
                if isinstance(delta.dirty, Element) and clone.survives(
                    delta.dirty
                ):
                    affected = True
                    break
        return clone, affected
