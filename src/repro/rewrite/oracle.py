"""Lazy view-visibility oracle for virtual views.

A materialized view answers "is node *n* visible?" by labeling and
pruning the whole tree. The oracle answers the same question — with the
same labels, computed by the same :class:`~repro.core.labeling.TreeLabeler`
propagation code — but lazily: a node's label is derived on first use
from its ancestor chain and memoized, so a selective query touches only
the labels along its matched paths.

View-existence semantics mirror :func:`repro.core.prune.build_view`
exactly:

- an **element** exists iff it *survives*: its final sign is permitted,
  or it keeps a visible attribute, or some descendant element does
  (structural survivors keep bare tags);
- an **attribute** exists iff its own label is permitted (which implies
  the owning element survives);
- **text / comment / PI** nodes exist iff their parent element's final
  sign is permitted (a bare-tag survivor shows no content); nodes
  hanging directly off the Document (prolog comments/PIs) never appear
  in a view;
- the **document** is non-empty iff the root element survives.

``survives`` uses the equivalent formulation "∃ a descendant-or-self
element that is *directly visible* (permitted final sign or a permitted
attribute)", memoizing negative subtrees so repeated probes amortize to
one scan per subtree.
"""

from __future__ import annotations

from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import TreeLabeler
from repro.core.labels import Label
from repro.core.prune import build_view
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xml.serializer import serialize
from repro.xpath.compile import RelativeMode

__all__ = ["VisibilityOracle"]


class _LazyLabels:
    """A dict-like labels mapping backed by the oracle's lazy labeler.

    :func:`~repro.core.prune.build_view` only reads labels through
    ``.get(node)``; routing that through :meth:`TreeLabeler.label_lazily`
    lets the *unmodified* pruning code serialize virtual matches — the
    byte-identity guarantee comes from running the same construction.
    """

    __slots__ = ("_labeler", "_labels")

    def __init__(self, labeler: TreeLabeler, labels: dict[Node, Label]) -> None:
        self._labeler = labeler
        self._labels = labels

    def get(self, node: Node, default=None) -> Optional[Label]:
        return self._labeler.label_lazily(node, self._labels)


class VisibilityOracle:
    """View membership / string-values for one (document, auths, policy).

    Binding the authorization paths happens once, at construction
    (under the usual ``label.bind`` span); everything after is lazy and
    memoized, so an oracle is cheap to keep around and share between
    requests of one effective-permission class (the store and document
    versions it was built against are the sharer's staleness guard).

    Thread-safety: all memo writes are idempotent dict inserts of
    deterministic values; concurrent readers may duplicate a little
    work but never see a wrong answer.
    """

    #: Elements scanned between two deadline checks in a survives() scan.
    _DEADLINE_STRIDE = 2048

    def __init__(
        self,
        document: Document,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        open_policy: bool = False,
        relative_mode: RelativeMode = "descendant",
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.document = document
        self.open_policy = open_policy
        self._labeler = TreeLabeler(
            document,
            instance_auths,
            schema_auths,
            hierarchy,
            policy=policy,
            relative_mode=relative_mode,
            limits=limits,
            deadline=deadline,
        )
        # Binding evaluates every authorization path once — the only
        # eager work. The construction deadline applies here; later
        # requests sharing the oracle pass their own deadline per call.
        self._labeler.bind()
        self._labels: dict[Node, Label] = {}
        self._survives: dict[Element, bool] = {}

    # -- labels ------------------------------------------------------------

    def label(self, node: Node) -> Label:
        """The node's label, computed lazily (identical to a full run)."""
        return self._labeler.label_lazily(node, self._labels)

    def permitted(self, node: Node) -> bool:
        """Whether the node's final sign permits it (policy-aware)."""
        return self.label(node).permitted_under(self.open_policy)

    # -- view existence ----------------------------------------------------

    def exists(self, node: Node, deadline: Optional[Deadline] = None) -> bool:
        """Whether *node* appears in the requester's materialized view."""
        if isinstance(node, Element):
            return self.survives(node, deadline)
        if isinstance(node, Attribute):
            return self.permitted(node)
        if isinstance(node, (Text, Comment, ProcessingInstruction)):
            parent = node.parent
            # Prolog/epilog nodes (parent is the Document) are never
            # part of a view; build_view copies only the root element.
            if not isinstance(parent, Element):
                return False
            return self.permitted(parent)
        if isinstance(node, Document):
            return self.has_visible_root()
        return False

    def survives(
        self, element: Element, deadline: Optional[Deadline] = None
    ) -> bool:
        """Whether *element* is kept by pruning (possibly as a bare tag).

        An element survives iff some descendant-or-self element is
        directly visible. Subtrees proven invisible are memoized as
        ``False``, so repeated probes across one query amortize.
        """
        memo = self._survives
        known = memo.get(element)
        if known is not None:
            return known
        stack: list[Element] = [element]
        dead: list[Element] = []
        scanned = 0
        while stack:
            node = stack.pop()
            known = memo.get(node)
            if known is True:
                memo[element] = True
                return True
            if known is False:
                continue  # proven-dead subtree: nothing visible below
            if self._directly_visible(node):
                memo[node] = True
                memo[element] = True
                return True
            dead.append(node)
            for child in node.children:
                if isinstance(child, Element):
                    stack.append(child)
            scanned += 1
            if deadline is not None and scanned % self._DEADLINE_STRIDE == 0:
                deadline.check("virtual-view visibility scan")
        # No directly-visible element anywhere below: every scanned
        # element (element included) is invisible.
        for node in dead:
            memo[node] = False
        return False

    def _directly_visible(self, element: Element) -> bool:
        if self.permitted(element):
            return True
        return any(
            self.permitted(attribute)
            for attribute in element.attributes.values()
        )

    def has_visible_root(self) -> bool:
        """Whether the view is non-empty (the root element survives)."""
        root = self.document.root
        return root is not None and self.survives(root)

    # -- virtual string-values ---------------------------------------------

    def string_value(self, node: Node) -> str:
        """The node's string-value *as seen in the view*.

        For elements: the concatenation of descendant text whose parent
        element is permitted — exactly the text the pruned copy keeps.
        Other node kinds keep their source string-value (they only
        exist in the view whole).
        """
        if isinstance(node, Attribute):
            return node.value
        if isinstance(node, (Text, Comment, ProcessingInstruction)):
            return node.data
        if isinstance(node, Document):
            root = node.root
            if root is None or not self.survives(root):
                return ""
            return self.string_value(root)
        if not isinstance(node, Element):
            return ""
        parts: list[str] = []
        # Preorder with reversed pushes keeps document order; text is
        # pushed as plain strings so subtree text interleaves correctly.
        stack: list = [(node, self.permitted(node))]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                parts.append(item)
                continue
            element, permitted = item
            for child in reversed(element.children):
                if isinstance(child, Text):
                    if permitted:
                        stack.append(child.data)
                elif isinstance(child, Element):
                    stack.append((child, self.permitted(child)))
        return "".join(parts)

    # -- match serialization -----------------------------------------------

    def serialize_match(self, node: Node) -> str:
        """Serialize one matched source node as its view counterpart.

        Element matches are serialized by feeding the *original*
        pruning construction (:func:`~repro.core.prune.build_view`'s
        element builder) a lazy labels mapping — the output is the
        byte-identical subtree a materialized view would contain,
        because it is produced by the same code over the same labels.
        A Document match yields the whole view. Leaf nodes serialize
        directly (the view's copies carry the same data).
        """
        if isinstance(node, Document):
            view = build_view(
                node, self.lazy_labels(), self.open_policy, loosen_dtd=True
            )
            return serialize(view)
        if isinstance(node, Element):
            from repro.core.prune import _build_element

            copy = _build_element(node, self.lazy_labels(), self.open_policy)
            if copy is None:  # matched nodes always exist; defensive
                return ""
            return serialize(copy)
        return serialize(node)

    def lazy_labels(self) -> _LazyLabels:
        """A labels mapping (``.get``) computing labels on demand."""
        return _LazyLabels(self._labeler, self._labels)
