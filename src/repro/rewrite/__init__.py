"""Virtual views: query rewriting over a lazy visibility oracle.

Answering a query against a requester's view normally means building
the view (label + prune + serialize) first. This package answers the
same query *without materializing*: :func:`compile_rewrite` turns the
request query into a guarded query over the source document, and a
:class:`VisibilityOracle` — sharing the labeling code with the
materialized pipeline — decides per node whether it belongs to the
requester's view. Answers are byte-identical to the materialized path;
queries outside the rewritable subset raise
:class:`~repro.errors.RewriteUnsupported` and callers fall back.

See docs/VIEWS.md for the pipeline comparison, the rewriting algorithm
and the supported XPath subset.
"""

from repro.errors import RewriteUnsupported
from repro.rewrite.engine import (
    GUARD_FUNCTION,
    RewrittenQuery,
    compile_rewrite,
    registry_for,
)
from repro.rewrite.oracle import VisibilityOracle

__all__ = [
    "GUARD_FUNCTION",
    "RewriteUnsupported",
    "RewrittenQuery",
    "VisibilityOracle",
    "compile_rewrite",
    "registry_for",
]
