"""Query rewriting: answer queries over a *virtual* view.

Instead of materializing the requester's view (label every node, prune,
serialize) and evaluating the query against it, the request query is
compiled into a **guarded query** over the source document:

- every location step gets a synthetic first predicate
  ``__view-exists()`` that asks the
  :class:`~repro.rewrite.oracle.VisibilityOracle` whether the candidate
  node appears in the view — inserted *before* the user's predicates,
  so positional predicates count view nodes, exactly as they would on
  the materialized tree;
- comparisons and string/number conversions whose operands are
  node-sets are rewritten to ``__view-cmp`` / ``__view-str`` /
  ``__view-num`` / ``__view-sum`` extension functions that use the
  oracle's *virtual string-values* (hidden text never leaks into a
  comparison);
- context-sensitive zero-argument forms (``string()``, ``number()``,
  ``string-length()``, ``normalize-space()``) are rewritten to their
  explicit-argument forms over ``__view-str(.)``.

The guarded query is evaluated by the standard evaluator with a child
function registry, so step budgets, deadlines and tracing all apply
unchanged. ``id()`` is rewritten to ``__view-id``, which resolves
tokens through virtual string-values and matches only ID attributes
visible in the view (the oracle threads the DTD's ID map). Queries
outside the rewritable subset — variable references, the
view-sensitive function ``lang()`` (it reads in-scope ``xml:lang``
attributes a view may hide in ways guards cannot express), or
unknown functions — raise :class:`~repro.errors.RewriteUnsupported`;
the server then falls back to the materialized pipeline transparently
(docs/VIEWS.md documents the subset and the fallback rules).

The guarded AST depends only on the query text, never on the requester
or policy, so compilation is memoized process-wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.errors import RewriteUnsupported, XPathEvaluationError
from repro.limits import Deadline
from repro.rewrite.oracle import VisibilityOracle
from repro.xml.nodes import Document, Node
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Number,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.evaluator import evaluate_parsed
from repro.xpath.functions import DEFAULT_REGISTRY, FunctionRegistry
from repro.xpath.parser import parse_xpath
from repro.xpath.values import compare, to_number, to_string

__all__ = [
    "GUARD_FUNCTION",
    "RewrittenQuery",
    "compile_rewrite",
    "registry_for",
]

#: The guard predicate inserted into every location step.
GUARD_FUNCTION = "__view-exists"
_CMP = "__view-cmp"
_STR = "__view-str"
_NUM = "__view-num"
_SUM = "__view-sum"
_ID = "__view-id"

#: Expression kinds that can statically yield a node-set. Conversions of
#: these operands must go through the oracle's virtual string-values;
#: all other kinds evaluate to scalars and convert identically on
#: source and view.
_NODE_SET_KINDS = (LocationPath, UnionExpr, PathExpr, FilterExpr)

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")

#: Functions that cannot be guarded: they read parts of the document
#: (in-scope ``xml:lang`` attributes) that a view may hide even on
#: nodes that survive pruning. ``id()`` used to live here; it is now
#: rewritten to ``__view-id`` over the oracle's visible ID map.
_VIEW_SENSITIVE = frozenset(("lang",))

#: The rewritable core library: name -> (per-argument conversions,
#: context-sensitive-when-argless). Conversions: ``"str"``/``"num"``
#: arguments are converted through the node's string-value (wrap
#: node-set operands), ``"raw"`` arguments pass through guarded. A
#: variadic function repeats its last conversion.
_FUNCTIONS: dict[str, tuple[tuple[str, ...], bool]] = {
    "last": ((), False),
    "position": ((), False),
    "count": (("raw",), False),
    "name": (("raw",), False),
    "local-name": (("raw",), False),
    "string": (("str",), True),
    "concat": (("str",), False),
    "starts-with": (("str", "str"), False),
    "contains": (("str", "str"), False),
    "substring-before": (("str", "str"), False),
    "substring-after": (("str", "str"), False),
    "substring": (("str", "num", "num"), False),
    "string-length": (("str",), True),
    "normalize-space": (("str",), True),
    "translate": (("str", "str", "str"), False),
    "boolean": (("raw",), False),
    "not": (("raw",), False),
    "true": ((), False),
    "false": ((), False),
    "number": (("num",), True),
    "sum": (("raw",), False),
    "id": (("raw",), False),
    "floor": (("num",), False),
    "ceiling": (("num",), False),
    "round": (("num",), False),
}


def registry_for(
    oracle: VisibilityOracle, deadline: Optional[Deadline] = None
) -> FunctionRegistry:
    """A per-evaluation registry binding the guard functions to *oracle*.

    Built per query evaluation (a handful of dict inserts) so a shared
    oracle can serve concurrent requests, each under its own deadline.
    """
    registry = DEFAULT_REGISTRY.child()

    def guard(context, args):
        return oracle.exists(context.node, deadline)

    def view_cmp(context, args):
        op, left, right = args
        return compare(op, left, right, string_value_of=oracle.string_value)

    def view_str(context, args):
        value = args[0]
        if isinstance(value, list):
            return oracle.string_value(value[0]) if value else ""
        return to_string(value)

    def view_num(context, args):
        value = args[0]
        if isinstance(value, list):
            return (
                to_number(oracle.string_value(value[0]))
                if value
                else float("nan")
            )
        return to_number(value)

    def view_sum(context, args):
        nodes = args[0]
        if not isinstance(nodes, list):
            raise XPathEvaluationError("sum() requires a node-set argument")
        return float(sum(to_number(oracle.string_value(node)) for node in nodes))

    def view_id(context, args):
        # Mirrors the materialized evaluator's id() over the view:
        # tokens come from *virtual* string-values (the argument is
        # already guarded, so only view nodes contribute), the lookup
        # consults the DTD's ID map, and only ID attributes visible in
        # the view can make their element findable. A visible ID
        # attribute implies the element survives pruning, so no extra
        # existence check is needed.
        from repro.xml.traversal import iter_elements

        value = args[0]
        if isinstance(value, list):
            tokens: set[str] = set()
            for node in value:
                tokens.update(oracle.string_value(node).split())
        else:
            tokens = set(to_string(value).split())
        if not tokens:
            return []
        return [
            element
            for element in iter_elements(oracle.document)
            if any(
                identifier in tokens
                for identifier in oracle.visible_ids(element)
            )
        ]

    registry.register(GUARD_FUNCTION, guard, 0, 0)
    registry.register(_CMP, view_cmp, 3, 3)
    registry.register(_STR, view_str, 1, 1)
    registry.register(_NUM, view_num, 1, 1)
    registry.register(_SUM, view_sum, 1, 1)
    registry.register(_ID, view_id, 1, 1)
    return registry


class _Rewriter:
    """Build the guarded twin of a parsed query (input AST untouched)."""

    def top(self, expr: Expr) -> Expr:
        return self._expr(expr)

    # -- dispatch ----------------------------------------------------------

    def _expr(self, expr: Expr) -> Expr:
        if isinstance(expr, LocationPath):
            return LocationPath(
                [self._step(step) for step in expr.steps], expr.absolute
            )
        if isinstance(expr, UnionExpr):
            return UnionExpr([self._expr(part) for part in expr.parts])
        if isinstance(expr, BinaryExpr):
            return self._binary(expr)
        if isinstance(expr, UnaryMinus):
            return UnaryMinus(self._converted(expr.operand, "num"))
        if isinstance(expr, FunctionCall):
            return self._function(expr)
        if isinstance(expr, (Literal, Number)):
            return expr
        if isinstance(expr, FilterExpr):
            return FilterExpr(
                self._expr(expr.primary),
                [self._expr(predicate) for predicate in expr.predicates],
            )
        if isinstance(expr, PathExpr):
            rewritten_filter = self._expr(expr.filter)
            assert isinstance(rewritten_filter, FilterExpr)
            return PathExpr(
                rewritten_filter,
                LocationPath(
                    [self._step(step) for step in expr.tail.steps],
                    expr.tail.absolute,
                ),
            )
        if isinstance(expr, VariableRef):
            raise RewriteUnsupported(
                f"variable ${expr.name} cannot be rewritten "
                "(variable bindings are evaluation-time state)",
                reason="variable-reference",
            )
        raise RewriteUnsupported(  # pragma: no cover - exhaustive above
            f"cannot rewrite {type(expr).__name__}",
            reason=type(expr).__name__,
        )

    def _step(self, step: Step) -> Step:
        # Guard first, user predicates after: positions then count
        # view-existing nodes, matching materialized-view semantics.
        guard = FunctionCall(GUARD_FUNCTION, [])
        return Step(
            step.axis,
            step.test,
            [guard, *(self._expr(p) for p in step.predicates)],
        )

    def _binary(self, expr: BinaryExpr) -> Expr:
        if expr.op in ("and", "or"):
            # Node-set operands reduce to guarded existence — correct.
            return BinaryExpr(
                expr.op, self._expr(expr.left), self._expr(expr.right)
            )
        if expr.op in _COMPARISONS:
            if isinstance(expr.left, _NODE_SET_KINDS) or isinstance(
                expr.right, _NODE_SET_KINDS
            ):
                return FunctionCall(
                    _CMP,
                    [
                        Literal(expr.op),
                        self._expr(expr.left),
                        self._expr(expr.right),
                    ],
                )
            return BinaryExpr(
                expr.op, self._expr(expr.left), self._expr(expr.right)
            )
        # Arithmetic: operands are converted through to_number, which
        # reads string-values of node-sets — route those through the
        # oracle.
        return BinaryExpr(
            expr.op,
            self._converted(expr.left, "num"),
            self._converted(expr.right, "num"),
        )

    def _converted(self, operand: Expr, conversion: str) -> Expr:
        rewritten = self._expr(operand)
        if conversion in ("str", "num") and isinstance(
            operand, _NODE_SET_KINDS
        ):
            wrapper = _STR if conversion == "str" else _NUM
            return FunctionCall(wrapper, [rewritten])
        return rewritten

    def _function(self, call: FunctionCall) -> Expr:
        name = call.name
        if name in _VIEW_SENSITIVE:
            raise RewriteUnsupported(
                f"{name}() reads document parts a view may hide; "
                "answered via materialization instead",
                reason=f"function:{name}",
            )
        spec = _FUNCTIONS.get(name)
        if spec is None:
            raise RewriteUnsupported(
                f"function {name}() is outside the rewritable subset",
                reason=f"function:{name}",
            )
        conversions, context_sensitive = spec
        if not call.args and context_sensitive:
            # string()/number()/string-length()/normalize-space() read
            # the context node's string-value: substitute the virtual
            # one explicitly.
            dot = LocationPath(
                [Step(Axis.SELF, NodeTest(NodeTestKind.NODE), [])]
            )
            args: list[Expr] = [FunctionCall(_STR, [dot])]
        else:
            args = [
                self._converted(
                    arg,
                    conversions[min(index, len(conversions) - 1)]
                    if conversions
                    else "raw",
                )
                for index, arg in enumerate(call.args)
            ]
        if name == "sum":
            return FunctionCall(_SUM, args)
        if name == "id":
            return FunctionCall(_ID, args)
        return FunctionCall(name, args)


@dataclass
class RewrittenQuery:
    """One compiled guarded query (immutable once built; shareable)."""

    source: str
    guarded: Expr

    def unparse(self) -> str:
        """The guarded query in XPath syntax (for explain/debugging)."""
        return self.guarded.unparse()

    def select(
        self,
        document: Document,
        oracle: VisibilityOracle,
        max_steps: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> list[Node]:
        """Evaluate over the *source* document; only view nodes match."""
        registry = registry_for(oracle, deadline)
        value = evaluate_parsed(
            self.guarded,
            document,
            registry,
            max_steps=max_steps,
            deadline=deadline,
        )
        if not isinstance(value, list):
            raise XPathEvaluationError(
                "expression does not produce a node-set "
                f"(got {type(value).__name__})"
            )
        return value


@lru_cache(maxsize=2048)
def compile_rewrite(source: str) -> RewrittenQuery:
    """Compile *source* into a guarded query (memoized process-wide).

    Raises :class:`~repro.errors.XPathSyntaxError` on bad syntax (as
    the materialized path would) and
    :class:`~repro.errors.RewriteUnsupported` outside the rewritable
    subset. Exceptions are never cached.
    """
    parsed = parse_xpath(source)
    return RewrittenQuery(source, _Rewriter().top(parsed))
