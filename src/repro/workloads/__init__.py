"""Workloads: the paper's running example plus synthetic generators.

Public surface::

    from repro.workloads import (
        lab_scenario, LabScenario,
        synthetic_document, synthetic_authorizations, build_workload,
    )
"""

from repro.workloads.auction import (
    AUCTION_DTD_TEXT,
    AUCTION_DTD_URI,
    AUCTION_SITE_URI,
    AuctionScenario,
    auction_document,
    auction_scenario,
)
from repro.workloads.generator import (
    SyntheticWorkload,
    build_workload,
    deep_document,
    populate_directory,
    requester_pool,
    synthetic_authorizations,
    synthetic_document,
    wide_document,
)
from repro.workloads.traffic import TrafficSpec, request_stream
from repro.workloads.scenarios import (
    LAB_BASE_URI,
    LAB_DOCUMENT_URI,
    LAB_DTD_TEXT,
    LAB_DTD_URI,
    LabScenario,
    lab_authorizations,
    lab_directory,
    lab_document,
    lab_dtd,
    lab_scenario,
)

__all__ = [
    "AUCTION_DTD_TEXT",
    "AUCTION_DTD_URI",
    "AUCTION_SITE_URI",
    "AuctionScenario",
    "auction_document",
    "auction_scenario",
    "LAB_BASE_URI",
    "LAB_DOCUMENT_URI",
    "LAB_DTD_TEXT",
    "LAB_DTD_URI",
    "LabScenario",
    "SyntheticWorkload",
    "TrafficSpec",
    "build_workload",
    "deep_document",
    "lab_authorizations",
    "lab_directory",
    "lab_document",
    "lab_dtd",
    "lab_scenario",
    "populate_directory",
    "request_stream",
    "requester_pool",
    "synthetic_authorizations",
    "synthetic_document",
    "wide_document",
]
