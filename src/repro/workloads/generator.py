"""Synthetic workload generation for benchmarks and stress tests.

Three kinds of generators:

- **documents** — trees with controlled node count, depth and fan-out
  (:func:`synthetic_document`, :func:`deep_document`,
  :func:`wide_document`), plus DTD-driven generation re-exported from
  :mod:`repro.dtd.generator`;
- **authorizations** — random but *well-formed* authorization sets over
  a document's actual structure (:func:`synthetic_authorizations`),
  with adjustable shares of denials, weak and schema-level tuples;
- **subjects** — user/group populations with nested groups
  (:func:`populate_directory`) and requester pools.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.authz.store import AuthorizationStore
from repro.subjects.hierarchy import Requester, SubjectSpec
from repro.subjects.users import Directory
from repro.xml.builder import new_document
from repro.xml.nodes import Document, Element, Text

__all__ = [
    "synthetic_document",
    "deep_document",
    "wide_document",
    "synthetic_authorizations",
    "populate_directory",
    "requester_pool",
    "SyntheticWorkload",
    "build_workload",
]

_SECTION_NAMES = ("section", "record", "item", "entry", "block")
_FIELD_NAMES = ("title", "body", "note", "value", "info")
_ATTR_NAMES = ("id", "kind", "level", "owner")
_KINDS = ("public", "internal", "private", "restricted")


def synthetic_document(
    nodes: int,
    fanout: int = 4,
    seed: int = 0,
    uri: str = "http://bench.example/doc.xml",
) -> Document:
    """A document with approximately *nodes* nodes (elements +
    attributes + text), breadth-first with the given *fanout*.

    Element names cycle through a small vocabulary and every element
    carries a ``kind`` attribute drawn from public/internal/private/
    restricted — the hooks the synthetic authorizations condition on.
    """
    rng = random.Random(seed)
    root = Element("archive")
    root.set_attribute("kind", "public")
    document = new_document(root, uri=uri)
    count = 3  # root + attribute + implicit doc accounting headroom
    frontier: list[Element] = [root]
    serial = 0
    while count < nodes and frontier:
        parent = frontier.pop(0)
        for _ in range(fanout):
            if count >= nodes:
                break
            serial += 1
            name = _SECTION_NAMES[serial % len(_SECTION_NAMES)]
            child = Element(name)
            child.set_attribute("id", f"n{serial}")
            child.set_attribute("kind", rng.choice(_KINDS))
            field = Element(_FIELD_NAMES[serial % len(_FIELD_NAMES)])
            field.append(Text(f"content {serial}"))
            child.append(field)
            parent.append(child)
            frontier.append(child)
            # element + 2 attributes + field element + text
            count += 5
    return document


def deep_document(
    depth: int, uri: str = "http://bench.example/deep.xml"
) -> Document:
    """A chain of *depth* nested elements (propagation-depth stress)."""
    root = Element("level")
    root.set_attribute("n", "0")
    current = root
    for index in range(1, depth):
        child = Element("level")
        child.set_attribute("n", str(index))
        current.append(child)
        current = child
    current.append(Text("leaf"))
    return new_document(root, uri=uri)


def wide_document(
    width: int, uri: str = "http://bench.example/wide.xml"
) -> Document:
    """One root with *width* leaf children (fan-out stress)."""
    root = Element("list")
    for index in range(width):
        item = Element("item")
        item.set_attribute("n", str(index))
        item.append(Text(f"item {index}"))
        root.append(item)
    return new_document(root, uri=uri)


def synthetic_authorizations(
    document: Document,
    count: int,
    seed: int = 0,
    denial_share: float = 0.3,
    weak_share: float = 0.2,
    recursive_share: float = 0.7,
    subjects: Optional[list[SubjectSpec]] = None,
    dtd_uri: Optional[str] = None,
    schema_share: float = 0.0,
) -> tuple[list[Authorization], list[Authorization]]:
    """Generate *count* authorizations targeting *document*'s structure.

    Returns ``(instance_auths, schema_auths)``; the schema list is
    non-empty only when *dtd_uri* and *schema_share* are given. Path
    expressions are built from the element names and ``kind`` attribute
    values actually present, so most authorizations select real nodes.
    """
    rng = random.Random(seed)
    uri = document.uri or "http://bench.example/doc.xml"
    if subjects is None:
        subjects = [SubjectSpec.parse("Public", "*", "*")]
    names = sorted({el.name for el in _elements(document)})
    instance: list[Authorization] = []
    schema: list[Authorization] = []
    for _ in range(count):
        name = rng.choice(names)
        shape = rng.random()
        if shape < 0.4:
            path = f"//{name}"
        elif shape < 0.7:
            kind = rng.choice(_KINDS)
            path = f'//{name}[./@kind="{kind}"]'
        elif shape < 0.85:
            path = f"//{name}/@{rng.choice(_ATTR_NAMES)}"
        else:
            other = rng.choice(names)
            path = f"//{name}//{other}"
        sign = Sign.MINUS if rng.random() < denial_share else Sign.PLUS
        weak = rng.random() < weak_share
        recursive = rng.random() < recursive_share
        if weak:
            auth_type = AuthType.RECURSIVE_WEAK if recursive else AuthType.LOCAL_WEAK
        else:
            auth_type = AuthType.RECURSIVE if recursive else AuthType.LOCAL
        subject = rng.choice(subjects)
        is_schema = dtd_uri is not None and rng.random() < schema_share
        target_uri = dtd_uri if is_schema else uri
        authorization = Authorization(
            subject, AuthObject(target_uri, path), "read", sign, auth_type
        )
        (schema if is_schema else instance).append(authorization)
    return instance, schema


def _elements(document: Document):
    from repro.xml.traversal import iter_elements

    root = document.root
    if root is None:
        return []
    return iter_elements(root)


def populate_directory(
    directory: Directory,
    users: int = 20,
    groups: int = 6,
    nesting: int = 2,
    seed: int = 0,
) -> tuple[list[str], list[str]]:
    """Fill *directory* with a seeded population of users and groups.

    Groups form ``nesting`` chained layers (``g0 ⊇ g1 ⊇ ...``) plus
    free-standing groups; each user joins one to three groups.
    """
    rng = random.Random(seed)
    group_names = [f"group{index}" for index in range(groups)]
    for index, name in enumerate(group_names):
        parents: list[str] = []
        if index and index <= nesting:
            parents = [group_names[index - 1]]
        directory.add_group(name, parents)
    user_names = [f"user{index}" for index in range(users)]
    for name in user_names:
        memberships = rng.sample(group_names, k=min(len(group_names), rng.randint(1, 3)))
        directory.add_user(name, memberships)
    return user_names, group_names


def requester_pool(
    user_names: list[str], seed: int = 0, count: Optional[int] = None
) -> list[Requester]:
    """Concrete requesters (user, IP, hostname) over *user_names*."""
    rng = random.Random(seed)
    domains = ("lab.com", "bld1.it", "example.org", "mil")
    pool: list[Requester] = []
    for index, name in enumerate(user_names[: count or len(user_names)]):
        ip = f"150.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"
        host = f"host{index}.{rng.choice(domains)}"
        pool.append(Requester(name, ip, host))
    return pool


@dataclass
class SyntheticWorkload:
    """A ready-to-run benchmark workload."""

    document: Document
    instance_auths: list[Authorization]
    schema_auths: list[Authorization]
    store: AuthorizationStore
    requesters: list[Requester]


def build_workload(
    nodes: int = 2000,
    auth_count: int = 32,
    seed: int = 0,
    users: int = 10,
    schema_share: float = 0.25,
    dtd_uri: str = "http://bench.example/doc.dtd",
) -> SyntheticWorkload:
    """Document + authorizations + directory + requesters, in one call."""
    document = synthetic_document(nodes, seed=seed)
    store = AuthorizationStore()
    user_names, group_names = populate_directory(
        store.hierarchy.directory, users=users, seed=seed
    )
    subject_pool = [SubjectSpec.parse("Public", "*", "*")]
    subject_pool += [SubjectSpec.parse(group, "*", "*") for group in group_names]
    subject_pool += [
        SubjectSpec.parse(user, "*", "*") for user in user_names[: max(2, users // 3)]
    ]
    instance, schema = synthetic_authorizations(
        document,
        auth_count,
        seed=seed,
        subjects=subject_pool,
        dtd_uri=dtd_uri,
        schema_share=schema_share,
    )
    store.add_all(instance)
    store.add_all(schema)
    requesters = requester_pool(user_names, seed=seed)
    return SyntheticWorkload(document, instance, schema, store, requesters)
