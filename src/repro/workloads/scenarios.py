"""The paper's running example, built programmatically.

Reconstruction of Figure 1 (the laboratory DTD), Figure 3(a) (the
CSlab.xml instance) and Example 1 (the four authorizations). The
original figures are images in the available scan; this reconstruction
uses exactly the element/attribute names and conditions appearing in the
paper's text (see DESIGN.md decision 11):

- path expressions: ``/laboratory/project``, ``/laboratory//flname``,
  ``fund/ancestor::project``;
- conditions: ``paper[./@category="private"]``,
  ``paper[./@category="public"]``, ``paper[./@type="internal"]``,
  ``project[./@type="internal"]``, ``project[./@type="public"]``,
  ``project[./@name="Access Models"]``;
- Example 2's requester: Tom, member of group Foreign, connected from
  ``infosys.bld1.it`` (the scan prints the IP as 130.100.50.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.authz.authorization import Authorization
from repro.authz.store import AuthorizationStore
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.xml.builder import E, new_document
from repro.xml.nodes import Document

__all__ = [
    "LAB_BASE_URI",
    "LAB_DOCUMENT_URI",
    "LAB_DTD_TEXT",
    "LAB_DTD_URI",
    "LabScenario",
    "lab_authorizations",
    "lab_directory",
    "lab_document",
    "lab_dtd",
    "lab_scenario",
]

LAB_BASE_URI = "http://www.lab.com/"
LAB_DTD_URI = LAB_BASE_URI + "laboratory.xml"
LAB_DOCUMENT_URI = LAB_BASE_URI + "CSlab.xml"

#: Figure 1(a): the DTD for XML documents describing laboratory projects.
LAB_DTD_TEXT = """\
<!ELEMENT laboratory (project+)>
<!ATTLIST laboratory name CDATA #REQUIRED>
<!ELEMENT project (manager, paper*, fund?)>
<!ATTLIST project name CDATA #REQUIRED
                  type (public|internal) #REQUIRED>
<!ELEMENT manager (flname, email?)>
<!ELEMENT flname (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT paper (title, authors?)>
<!ATTLIST paper category (public|private|internal) #REQUIRED
                type CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authors (#PCDATA)>
<!ELEMENT fund (#PCDATA)>
<!ATTLIST fund amount CDATA #IMPLIED
               sponsor CDATA #IMPLIED>
"""


@dataclass
class LabScenario:
    """Everything of the running example, wired together."""

    dtd: DTD
    document: Document
    store: AuthorizationStore
    authorizations: list[Authorization] = field(default_factory=list)
    tom: Requester = field(
        default_factory=lambda: Requester("Tom", "130.100.50.8", "infosys.bld1.it")
    )
    alice: Requester = field(
        default_factory=lambda: Requester("Alice", "130.89.56.8", "rome.admin.lab.com")
    )
    sam: Requester = field(
        default_factory=lambda: Requester("Sam", "150.100.30.8", "tweety.lab.com")
    )

    @property
    def hierarchy(self) -> SubjectHierarchy:
        return self.store.hierarchy


def lab_dtd() -> DTD:
    """Parse Figure 1(a)'s DTD, published at :data:`LAB_DTD_URI`."""
    return parse_dtd(LAB_DTD_TEXT, uri=LAB_DTD_URI)


def lab_document(dtd: DTD | None = None) -> Document:
    """Figure 3(a): the CSlab.xml instance.

    Two projects: the public "Access Models" project (with one private,
    one public and one internal paper, and a fund) and the internal
    "Secure Kernel" project (with one private paper).
    """
    root = E(
        "laboratory",
        {"name": "CSlab"},
        E(
            "project",
            {"name": "Access Models", "type": "public"},
            E("manager", E("flname", "Bob White"), E("email", "bob@lab.com")),
            E(
                "paper",
                {"category": "private"},
                E("title", "Security Internals"),
                E("authors", "B. White, C. Green"),
            ),
            E(
                "paper",
                {"category": "public", "type": "conference"},
                E("title", "An Access Control Model for XML"),
                E("authors", "B. White"),
            ),
            E(
                "paper",
                {"category": "internal", "type": "internal"},
                E("title", "Implementation Notes"),
            ),
            E("fund", {"amount": "100000", "sponsor": "EC"}, "FASTER project"),
        ),
        E(
            "project",
            {"name": "Secure Kernel", "type": "internal"},
            E("manager", E("flname", "Carol Green")),
            E(
                "paper",
                {"category": "private"},
                E("title", "Kernel Hardening"),
            ),
        ),
    )
    document = new_document(
        root,
        uri=LAB_DOCUMENT_URI,
        doctype_name="laboratory",
        system_id=LAB_DTD_URI,
        dtd=dtd if dtd is not None else lab_dtd(),
    )
    return document


def lab_authorizations() -> list[Authorization]:
    """Example 1's four authorizations, verbatim.

    1. Foreign members are explicitly denied private papers —
       schema-level (the object URI is the DTD's), Recursive.
    2. Public papers of CSlab are publicly accessible unless otherwise
       specified at the DTD level — instance-level, Recursive Weak.
    3. Admin members connected from 130.89.56.8 can access internal
       projects — instance-level, Recursive.
    4. Users connected from the ``it`` domain can access information
       about managers of public projects — instance-level, weak (the
       scan prints the type as ``W``; encoded Recursive-Weak so manager
       content is readable — DESIGN.md decision 10).
    """
    return [
        Authorization.build(
            ("Foreign", "*", "*"),
            LAB_DTD_URI + ':/laboratory//paper[./@category="private"]',
            "-",
            "R",
        ),
        Authorization.build(
            ("Public", "*", "*"),
            LAB_DOCUMENT_URI + ':/laboratory//paper[./@category="public"]',
            "+",
            "RW",
        ),
        Authorization.build(
            ("Admin", "130.89.56.8", "*"),
            LAB_DOCUMENT_URI + ':project[./@type="internal"]',
            "+",
            "R",
        ),
        Authorization.build(
            ("Public", "*", "*.it"),
            LAB_DOCUMENT_URI + ':project[./@type="public"]/manager',
            "+",
            "RW",
        ),
    ]


def lab_directory(hierarchy: SubjectHierarchy) -> None:
    """Example 2's users and groups."""
    directory = hierarchy.directory
    directory.add_group("Foreign")
    directory.add_group("Admin")
    directory.add_user("Tom", groups=["Foreign"])
    directory.add_user("Alice", groups=["Admin"])
    directory.add_user("Sam")


def lab_scenario() -> LabScenario:
    """Build the complete running example: DTD, document, store, users."""
    dtd = lab_dtd()
    document = lab_document(dtd)
    store = AuthorizationStore()
    lab_directory(store.hierarchy)
    authorizations = lab_authorizations()
    store.add_all(authorizations)
    return LabScenario(
        dtd=dtd,
        document=document,
        store=store,
        authorizations=authorizations,
    )
