"""An XMark-inspired auction-site workload.

The XML benchmarking literature standardized on auction-site documents
(XMark); this module provides a compatible-in-spirit scenario for
macro-benchmarks and realistic integration tests: one large document
with people (including private profile data), open and closed auctions,
bids, and seller-only reserve prices — plus a realistic policy:

- everyone browses items and *open* auction states;
- a bidder sees their own bids and profile;
- sellers see the reserve prices of their own auctions;
- the fraud team (group) sees everything, including closed auctions;
- profile income data is denied site-wide at the schema level and only
  the fraud team's strong grant overrides it.

Everything is seeded/deterministic. :func:`auction_scenario` wires a
ready :class:`~repro.server.service.SecureXMLServer`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.authz.authorization import Authorization
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.xml.builder import E, new_document
from repro.xml.nodes import Document

__all__ = [
    "AUCTION_DTD_TEXT",
    "AUCTION_DTD_URI",
    "AUCTION_SITE_URI",
    "AuctionScenario",
    "auction_document",
    "auction_scenario",
]

AUCTION_BASE = "http://auctions.example/"
AUCTION_DTD_URI = AUCTION_BASE + "site.dtd"
AUCTION_SITE_URI = AUCTION_BASE + "site.xml"

AUCTION_DTD_TEXT = """\
<!ELEMENT site (people, items, auctions)>
<!ELEMENT people (person*)>
<!ELEMENT person (name, email, profile?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT profile (income?, interests?)>
<!ELEMENT income (#PCDATA)>
<!ELEMENT interests (#PCDATA)>
<!ELEMENT items (item*)>
<!ELEMENT item (title, description?)>
<!ATTLIST item id ID #REQUIRED category CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT auctions (auction*)>
<!ELEMENT auction (itemref, reserve?, bid*)>
<!ATTLIST auction id ID #REQUIRED
                  seller IDREF #REQUIRED
                  status (open|closed) #REQUIRED>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref ref IDREF #REQUIRED>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bid (amount)>
<!ATTLIST bid bidder IDREF #REQUIRED>
<!ELEMENT amount (#PCDATA)>
"""

_FIRST = ("ada", "bob", "cleo", "dan", "eva", "fritz", "gina", "hugo")
_CATEGORIES = ("books", "audio", "tools", "art")
_INTERESTS = ("xml", "security", "databases", "hiking", "chess")


def auction_document(
    people: int = 8,
    items: int = 12,
    auctions: int = 10,
    seed: int = 0,
    uri: str = AUCTION_SITE_URI,
) -> Document:
    """Build one deterministic auction-site document."""
    rng = random.Random(seed)
    person_ids = [f"p{index}" for index in range(people)]
    item_ids = [f"i{index}" for index in range(items)]

    people_el = E("people")
    for index, person_id in enumerate(person_ids):
        name = _FIRST[index % len(_FIRST)] + str(index)
        children = [E("name", name), E("email", f"{name}@mail.example")]
        if rng.random() < 0.8:
            profile_children = []
            if rng.random() < 0.7:
                profile_children.append(E("income", str(rng.randint(20, 200) * 1000)))
            profile_children.append(
                E("interests", " ".join(rng.sample(_INTERESTS, k=2)))
            )
            children.append(E("profile", *profile_children))
        people_el.append(E("person", {"id": person_id}, *children))

    items_el = E("items")
    for item_id in item_ids:
        children = [E("title", f"lot {item_id}")]
        if rng.random() < 0.6:
            children.append(E("description", f"description of {item_id}"))
        items_el.append(
            E("item", {"id": item_id, "category": rng.choice(_CATEGORIES)}, *children)
        )

    auctions_el = E("auctions")
    for index in range(auctions):
        seller = rng.choice(person_ids)
        status = "open" if rng.random() < 0.7 else "closed"
        children = [E("itemref", {"ref": rng.choice(item_ids)})]
        if rng.random() < 0.8:
            children.append(E("reserve", str(rng.randint(10, 500))))
        for _ in range(rng.randint(0, 4)):
            children.append(
                E(
                    "bid",
                    {"bidder": rng.choice(person_ids)},
                    E("amount", str(rng.randint(5, 600))),
                )
            )
        auctions_el.append(
            E(
                "auction",
                {"id": f"a{index}", "seller": seller, "status": status},
                *children,
            )
        )

    root = E("site", people_el, items_el, auctions_el)
    return new_document(root, uri=uri, system_id=AUCTION_DTD_URI)


@dataclass
class AuctionScenario:
    """A populated server plus convenient requesters."""

    server: SecureXMLServer
    document: Document
    person_ids: list[str] = field(default_factory=list)

    def requester_for(self, person_id: str) -> Requester:
        return Requester(person_id, "10.0.0.5", "web.auctions.example")

    @property
    def fraud_officer(self) -> Requester:
        return Requester("fraud-officer", "10.9.9.1", "ops.auctions.example")

    @property
    def visitor(self) -> Requester:
        return Requester("anonymous", "93.1.1.1", "somewhere.example")


def auction_scenario(seed: int = 0, people: int = 8) -> AuctionScenario:
    """Build the complete scenario: document, users, policy."""
    server = SecureXMLServer()
    document = auction_document(people=people, seed=seed)
    server.publish_dtd(AUCTION_DTD_URI, AUCTION_DTD_TEXT)
    server.publish_document(
        AUCTION_SITE_URI, document, dtd_uri=AUCTION_DTD_URI, validate_on_add=True
    )

    person_ids = [f"p{index}" for index in range(people)]
    server.add_group("FraudTeam")
    server.add_user("fraud-officer", groups=["FraudTeam"])
    for person_id in person_ids:
        server.add_user(person_id)

    uri, dtd = AUCTION_SITE_URI, AUCTION_DTD_URI
    grants: list[Authorization] = [
        # Everyone browses the catalogue and open auctions (weakly:
        # schema-level restrictions below stay authoritative).
        Authorization.build("Public", f"{uri}://items", "+", "RW"),
        Authorization.build("Public", f'{uri}://auction[@status="open"]', "+", "RW"),
        Authorization.build("Public", f"{uri}://person/name", "+", "RW"),
        # Reserve prices are seller-only: site-wide schema denial...
        Authorization.build("Public", f"{dtd}://reserve", "-", "R"),
        # Income is private: site-wide schema denial.
        Authorization.build("Public", f"{dtd}://income", "-", "R"),
        # The fraud team sees the whole site, strongly (overrides the
        # schema denials), including closed auctions.
        Authorization.build(("FraudTeam", "*", "*"), uri, "+", "R"),
        # ...including reserves and incomes. The explicit node-level
        # grants are needed because the Public weak grant on open
        # auctions *blocks* the root R+ from propagating past the
        # auction element (paired R/RW blocking, Section 6.1), after
        # which the schema denials would win. A policy-authoring pitfall
        # worth modeling — `repro.core.explain` diagnoses it directly.
        Authorization.build(("FraudTeam", "*", "*"), f"{uri}://reserve", "+", "R"),
        Authorization.build(("FraudTeam", "*", "*"), f"{uri}://income", "+", "R"),
    ]
    for person_id in person_ids:
        grants.extend(
            [
                # Own profile, weakly (income still hidden by schema).
                Authorization.build(
                    (person_id, "*", "*"),
                    f'{uri}://person[@id="{person_id}"]',
                    "+",
                    "RW",
                ),
                # Own income: a strong grant on one's own data overrides
                # the site-wide schema denial.
                Authorization.build(
                    (person_id, "*", "*"),
                    f'{uri}://person[@id="{person_id}"]/profile/income',
                    "+",
                    "R",
                ),
                # Own bids, anywhere.
                Authorization.build(
                    (person_id, "*", "*"),
                    f'{uri}://bid[@bidder="{person_id}"]',
                    "+",
                    "R",
                ),
                # Reserve prices of auctions one sells.
                Authorization.build(
                    (person_id, "*", "*"),
                    f'{uri}://auction[@seller="{person_id}"]/reserve',
                    "+",
                    "R",
                ),
            ]
        )
    for grant in grants:
        server.grant(grant)
    return AuctionScenario(server=server, document=document, person_ids=person_ids)
