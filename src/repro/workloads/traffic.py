"""Heavy mixed traffic for the multi-process pool benchmark (C2).

The pool's workers are *separate processes*, so the corpus cannot be
handed to them as objects: each worker must rebuild its own shard from
a description that crosses the IPC boundary. :class:`TrafficSpec` is
that description — a frozen, picklable dataclass whose bound
:meth:`TrafficSpec.build_server` method is exactly the ``setup``
callable :class:`~repro.server.pool.ShardedServerPool` wants (bound
methods of picklable instances pickle, so the same spec works under
``fork`` and ``spawn``):

    spec = TrafficSpec(documents=16, nodes_per_document=600)
    pool = ShardedServerPool(spec.build_server, workers=4)

Everything is seeded and deterministic: two processes building the same
spec produce byte-identical documents, directories and authorization
stores, which is what lets the chaos suite compare pool responses
against a sequential in-process replay byte for byte. The CPU cost per
request is dominated by labeling/pruning (no view cache by default), so
this is the workload on which process count should actually scale —
the point BENCH_PR5 proved threads cannot make.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.server.cache import ViewCache
from repro.server.repository import ShardRouter
from repro.server.request import AccessRequest, QueryRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.workloads.generator import (
    populate_directory,
    requester_pool,
    synthetic_authorizations,
    synthetic_document,
)

__all__ = ["TrafficSpec", "request_stream"]

#: Element names synthetic_document actually emits — query traffic
#: selects on these so matches are non-trivial.
_QUERY_PATHS = (
    "//*[@kind = 'public']",
    "//*[@id]",
    "/archive/*",
)


@dataclass(frozen=True)
class TrafficSpec:
    """A deterministic, picklable description of a serving corpus.

    ``build_server(shard_ids, num_shards)`` constructs a complete
    :class:`SecureXMLServer` holding the documents whose
    consistent-hash shard (under ``ShardRouter(num_shards)``) is in
    *shard_ids* — or the full corpus when *shard_ids* is None, which
    is how the pool builds its degraded-mode fallback server. Per-
    document seeds derive from ``seed`` and the document index, never
    from which shard asked, so every process that builds document *i*
    builds the same bytes.
    """

    documents: int = 8
    nodes_per_document: int = 400
    auths_per_document: int = 24
    users: int = 12
    seed: int = 0
    view_cache: bool = False
    uri_template: str = "http://bench.example/pool/doc{index}.xml"

    def uris(self) -> list[str]:
        return [
            self.uri_template.format(index=index)
            for index in range(self.documents)
        ]

    def requesters(self) -> list[Requester]:
        names = [f"user{index}" for index in range(self.users)]
        return requester_pool(names, seed=self.seed)

    def build_server(
        self,
        shard_ids: Optional[tuple[int, ...]] = None,
        num_shards: int = 1,
    ) -> SecureXMLServer:
        """The pool ``setup`` callable (see the module docstring)."""
        router = ShardRouter(num_shards)
        server = SecureXMLServer(
            view_cache=ViewCache() if self.view_cache else None
        )
        populate_directory(server.directory, users=self.users, seed=self.seed)
        for index, uri in enumerate(self.uris()):
            if shard_ids is not None and router.shard_of(uri) not in shard_ids:
                continue
            document = synthetic_document(
                self.nodes_per_document, seed=self.seed + index, uri=uri
            )
            instance_auths, _ = synthetic_authorizations(
                document, self.auths_per_document, seed=self.seed + index
            )
            server.publish_document(uri, document)
            for auth in instance_auths:
                server.grant(auth)
        return server


def request_stream(
    spec: TrafficSpec,
    count: int,
    seed: int = 0,
    query_share: float = 0.25,
) -> Iterator[AccessRequest | QueryRequest]:
    """*count* seeded requests over *spec*'s corpus, mixed serve/query.

    Deterministic for a given ``(spec, count, seed, query_share)``:
    the chaos tests replay the same stream sequentially against an
    in-process server and demand byte-identical responses.
    """
    rng = random.Random(seed)
    uris = spec.uris()
    requesters = spec.requesters()
    for _ in range(count):
        requester = rng.choice(requesters)
        uri = rng.choice(uris)
        if rng.random() < query_share:
            yield QueryRequest(requester, uri, rng.choice(_QUERY_PATHS))
        else:
            yield AccessRequest(requester, uri)
