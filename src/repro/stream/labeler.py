"""Single-pass label propagation and pruning over the event stream.

:class:`StreamLabeler` reproduces the DOM pipeline's compute-view —
initial_label per node, top-down propagation, postorder pruning with
structural survivors — in one forward pass. It can, because the
paper's semantics has exactly one forward dependency:

- An element's **label** depends only on the root-to-node path (the
  compiled pattern states) and on the node's own name and attributes —
  all known at its :class:`~repro.stream.events.StartElement`.
- **Attribute** visibility depends on the attribute's and its element's
  labels — known at the same moment.
- **Text/comment/PI** visibility equals the parent element's permission
  — known before the content arrives.
- Only **survival** of a non-permitted element looks forward ("keeps
  its tags if some descendant is visible"). Such an element needs no
  content buffered, though: its text is dropped either way and its
  attributes were already decided. The labeler holds back just the
  element's *name* — a pending tag chain — and flushes the chain as
  bare start tags the moment any descendant proves visible, exactly
  the bare-tag survivors the DOM pruner produces.

Memory is therefore O(depth + patterns), not O(document); the pending
chain is charged against ``ResourceLimits.max_stream_buffer_bytes``.

Sign resolution is shared with the DOM labeler
(:func:`repro.core.labeling.resolve_slot_sign`,
:func:`~repro.core.labeling.propagate_element_label`,
:func:`~repro.core.labeling.propagate_attribute_label`), and
authorizations are binned in the same order (instance list first, then
schema list), so both backends agree sign-for-sign — the differential
suite under ``tests/stream/`` checks byte equality of the serialized
views.

The labeler mirrors the server's DOM parse settings (comments kept,
ignorable whitespace kept); visible/total node counts match
``count_nodes`` over the original and view trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy, DenialsTakePrecedence
from repro.core.labeling import (
    ATTRIBUTE_SLOT_DEGRADE,
    INSTANCE_SLOT,
    SCHEMA_SLOT,
    propagate_attribute_label,
    propagate_element_label,
    resolve_slot_sign,
)
from repro.core.labels import Label
from repro.dtd.model import DTD
from repro.errors import XMLLimitExceeded
from repro.limits import Deadline, ResourceLimits
from repro.stream.events import (
    Characters,
    CommentEvent,
    DoctypeDecl,
    EndDocument,
    EndElement,
    PIEvent,
    StartDocument,
    StartElement,
    StreamEvent,
)
from repro.stream.paths import (
    DispatchNode,
    PatternDispatch,
    StreamPattern,
    compile_stream_pattern,
)
from repro.stream.writer import StreamWriter
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xpath.compile import RelativeMode

__all__ = ["StreamLabeler", "StreamStats"]

#: Events between two deadline checks.
_DEADLINE_STRIDE = 256


@dataclass
class StreamStats:
    """Counters of one streaming run (mirrors ``stream.*`` metrics)."""

    events: int = 0
    total_nodes: int = 0
    visible_nodes: int = 0
    emitted_elements: int = 0
    buffered_elements: int = 0
    peak_pending_depth: int = 0
    peak_pending_bytes: int = 0


class _CompiledAuth:
    """One authorization with its label slot and compiled pattern."""

    __slots__ = ("auth", "slot", "pattern")

    def __init__(self, auth: Authorization, slot: str, pattern: StreamPattern):
        self.auth = auth
        self.slot = slot
        self.pattern = pattern


class _Frame:
    """One open element."""

    __slots__ = ("name", "label", "permitted", "emitted", "node", "in_text_run")

    def __init__(self, name, label, permitted, node):
        self.name = name
        self.label = label
        self.permitted = permitted
        self.emitted = False
        self.node = node
        self.in_text_run = False


class StreamLabeler:
    """Drive one streamed view: events in, view text out via *writer*.

    Raises :class:`~repro.stream.paths.StreamPathUnsupported` from the
    constructor when an authorization's path is outside the streamable
    subset (the server falls back to the DOM pipeline on that).

    Parameters mirror :func:`repro.core.view.compute_view_from_auths`;
    *instance_auths*/*schema_auths* must already be filtered for the
    requester.
    """

    def __init__(
        self,
        writer: StreamWriter,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        hierarchy: Optional[SubjectHierarchy] = None,
        policy: Optional[ConflictPolicy] = None,
        open_policy: bool = False,
        relative_mode: RelativeMode = "descendant",
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self._writer = writer
        self._hierarchy = hierarchy if hierarchy is not None else SubjectHierarchy()
        self._policy = policy if policy is not None else DenialsTakePrecedence()
        self._open_policy = open_policy
        self._limits = limits
        self._deadline = (
            deadline if deadline is not None and not deadline.unbounded else None
        )
        # Compile in DOM binning order: the instance list, then the
        # schema list — per-slot authorization lists build up in the
        # same order as TreeLabeler._bin_authorizations, so conflict
        # resolution sees identical inputs.
        self._compiled: list[_CompiledAuth] = []
        for auth in instance_auths:
            self._compiled.append(
                _CompiledAuth(
                    auth,
                    INSTANCE_SLOT[auth.type],
                    compile_stream_pattern(auth.object.path, relative_mode),
                )
            )
        for auth in schema_auths:
            self._compiled.append(
                _CompiledAuth(
                    auth,
                    SCHEMA_SLOT[auth.type],
                    compile_stream_pattern(auth.object.path, relative_mode),
                )
            )
        # One DFA over the joint state of every pattern: per element,
        # advancing *all* authorizations is one dict lookup once warm,
        # and each distinct joint state resolves its slot signs once.
        self._dispatch = PatternDispatch(
            [entry.pattern for entry in self._compiled]
        )
        self._doc_label = Label()
        # node -> resolved ((slot, sign), ...) for its accepting auths.
        self._sign_cache: dict[DispatchNode, tuple] = {}
        # (node, parent R/RW/RD) -> interned (Label, permitted). Labels
        # handed out from here are shared and must never be mutated.
        self._label_cache: dict[tuple, tuple[Label, bool]] = {}
        # id(element label) -> whether unauthorized attributes survive.
        self._inherit_cache: dict[int, bool] = {}
        # (node, attr name, id(element label)) -> keep?
        self._attr_cache: dict[tuple, bool] = {}
        self._handlers = {
            Characters: self._on_text,
            StartElement: self._on_start,
            EndElement: self._on_end,
            CommentEvent: self._on_comment,
            PIEvent: self._on_pi,
            StartDocument: self._on_start_document,
            DoctypeDecl: self._on_doctype,
            EndDocument: self._on_end_document,
        }
        self._frames: list[_Frame] = []
        self._emitted_depth = 0  # emitted frames form a stack prefix
        self._pending_bytes = 0
        self._root_emitted = False
        self._finished = False
        self.stats = StreamStats()
        # Doctype info for the loosened-DTD step of the facade.
        self.doctype_name: Optional[str] = None
        self.system_id: Optional[str] = None
        self.dtd: Optional[DTD] = None

    # -- public --------------------------------------------------------------

    @property
    def pending_bytes(self) -> int:
        """Characters currently held in the pending tag chain."""
        return self._pending_bytes

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def empty(self) -> bool:
        """Whether the view came out empty (root never emitted)."""
        return not self._root_emitted

    def feed(self, events: Iterable[StreamEvent]) -> None:
        """Consume the next batch of events."""
        stats = self.stats
        deadline = self._deadline
        handlers = self._handlers
        for event in events:
            handler = handlers.get(type(event))
            if handler is not None:
                handler(event)
            stats.events += 1
            if deadline is not None and stats.events % _DEADLINE_STRIDE == 0:
                deadline.check("stream labeling")

    # -- dispatch ------------------------------------------------------------

    def _handle(self, event: StreamEvent) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    def _on_comment(self, event: CommentEvent) -> None:
        self._on_misc_value(event.data, None)

    def _on_pi(self, event: PIEvent) -> None:
        self._on_misc_value(event.data, event.target)

    def _on_start_document(self, event: StartDocument) -> None:
        self._writer.start_document(
            event.xml_version, event.encoding, event.standalone
        )

    def _on_doctype(self, event: DoctypeDecl) -> None:
        self.doctype_name = event.name
        self.system_id = event.system_id
        self.dtd = event.dtd

    def _on_end_document(self, event: EndDocument) -> None:
        self._finished = True

    # -- elements ------------------------------------------------------------

    def _on_start(self, event: StartElement) -> None:
        name = event.name
        attributes = event.attributes
        frames = self._frames
        if frames:
            parent = frames[-1]
            parent.in_text_run = False
            parent_node = parent.node
            parent_label = parent.label
        else:
            parent_node = self._dispatch.initial
            parent_label = self._doc_label

        # One DFA step advances every pattern at once (the paper's
        # initial_label, step 1a); the node's slot signs and propagated
        # label are resolved once per distinct (state, parent-label)
        # pair and shared thereafter.
        node = self._dispatch.advance(parent_node, name, attributes)
        key = (node, parent_label.R, parent_label.RW, parent_label.RD)
        cached = self._label_cache.get(key)
        if cached is None:
            label = Label()
            for slot, sign in self._node_signs(node):
                setattr(label, slot, sign)
            propagate_element_label(label, parent_label)
            cached = (label, label.permitted_under(self._open_policy))
            self._label_cache[key] = cached
        label, permitted = cached

        kept_attrs = self._decide_attributes(attributes, node, label)

        self.stats.total_nodes += 1 + len(attributes)
        frame = _Frame(name, label, permitted, node)
        frames.append(frame)

        if permitted or kept_attrs:
            self._emit_chain()
            self._writer.start_element(
                name, [(key, attributes[key]) for key in kept_attrs]
            )
            frame.emitted = True
            self._emitted_depth = len(frames)
            self._root_emitted = True
            self.stats.visible_nodes += 1 + len(kept_attrs)
            self.stats.emitted_elements += 1
        else:
            self._pending_bytes += len(name)
            self.stats.buffered_elements += 1
            pending_depth = len(frames) - self._emitted_depth
            if pending_depth > self.stats.peak_pending_depth:
                self.stats.peak_pending_depth = pending_depth
            if self._pending_bytes > self.stats.peak_pending_bytes:
                self.stats.peak_pending_bytes = self._pending_bytes
            self._check_pending_budget()

    def _node_signs(self, node: DispatchNode) -> tuple:
        """Resolved ``(slot, sign)`` pairs for the authorizations whose
        element part accepts at *node* — fixed per node, cached."""
        signs = self._sign_cache.get(node)
        if signs is None:
            slot_auths: dict[str, list[Authorization]] = {}
            compiled = self._compiled
            for index in node.accepts:
                entry = compiled[index]
                slot_auths.setdefault(entry.slot, []).append(entry.auth)
            signs = tuple(
                (slot, resolve_slot_sign(auths, self._hierarchy, self._policy))
                for slot, auths in slot_auths.items()
            )
            self._sign_cache[node] = signs
        return signs

    def _decide_attributes(
        self, attributes: dict[str, str], node: DispatchNode, element_label: Label
    ) -> list[str]:
        if not attributes:
            return []
        open_policy = self._open_policy
        if not node.attr_entries:
            # No pattern can select these attributes: they all share the
            # label an unauthorized attribute inherits from the element.
            # Element labels are interned, so the verdict caches by id.
            keep_all = self._inherit_cache.get(id(element_label))
            if keep_all is None:
                inherited = Label()
                propagate_attribute_label(inherited, element_label)
                keep_all = inherited.permitted_under(open_policy)
                self._inherit_cache[id(element_label)] = keep_all
            return list(attributes) if keep_all else []
        kept: list[str] = []
        label_id = id(element_label)
        cache = self._attr_cache
        compiled = self._compiled
        for attr_name in attributes:
            key = (node, attr_name, label_id)
            keep = cache.get(key)
            if keep is None:
                slot_auths: dict[str, list[Authorization]] = {}
                for index, tails in node.attr_entries:
                    for tail in tails:
                        if tail is None or tail == attr_name:
                            entry = compiled[index]
                            # Recursive slots degrade on attributes
                            # (terminal nodes), as in TreeLabeler._bin_one.
                            slot = ATTRIBUTE_SLOT_DEGRADE.get(
                                entry.slot, entry.slot
                            )
                            slot_auths.setdefault(slot, []).append(entry.auth)
                            break
                attr_label = Label()
                for slot, auths in slot_auths.items():
                    setattr(
                        attr_label,
                        slot,
                        resolve_slot_sign(auths, self._hierarchy, self._policy),
                    )
                propagate_attribute_label(attr_label, element_label)
                keep = attr_label.permitted_under(open_policy)
                if len(cache) < 65536:  # hostile vocabularies stay bounded
                    cache[key] = keep
            if keep:
                kept.append(attr_name)
        return kept

    def _emit_chain(self) -> None:
        """Flush pending ancestors as bare tags (structural survivors)."""
        frames = self._frames
        for index in range(self._emitted_depth, len(frames) - 1):
            frame = frames[index]
            self._writer.start_element(frame.name)
            frame.emitted = True
            self._pending_bytes -= len(frame.name)
            self.stats.visible_nodes += 1
            self.stats.emitted_elements += 1
        # (the new top frame is emitted by the caller, with attributes)

    def _on_end(self, event: EndElement) -> None:
        frame = self._frames.pop()
        if frame.emitted:
            self._writer.end_element()
            self._emitted_depth = len(self._frames)
        else:
            self._pending_bytes -= len(frame.name)

    # -- values --------------------------------------------------------------

    def _on_text(self, event: Characters) -> None:
        frame = self._frames[-1]
        if not frame.in_text_run:
            # One maximal run of character data = one Text node of the
            # DOM tree (the parser merges adjacent runs and CDATA).
            frame.in_text_run = True
            self.stats.total_nodes += 1
            if frame.permitted:
                self.stats.visible_nodes += 1
        if frame.permitted:
            self._writer.text(event.data)

    def _on_misc_value(self, data: str, target: Optional[str]) -> None:
        if not self._frames:
            # Prolog/epilog comments and PIs never reach the view: the
            # DOM build_view starts from an empty child list and only
            # ever appends the root element.
            return
        frame = self._frames[-1]
        frame.in_text_run = False
        self.stats.total_nodes += 1
        if frame.permitted:
            self.stats.visible_nodes += 1
            if target is None:
                self._writer.comment(data)
            else:
                self._writer.processing_instruction(target, data)

    # -- guards --------------------------------------------------------------

    def _check_pending_budget(self) -> None:
        limits = self._limits
        if (
            limits is not None
            and limits.max_stream_buffer_bytes is not None
            and self._pending_bytes > limits.max_stream_buffer_bytes
        ):
            raise XMLLimitExceeded(
                "streaming pending-subtree buffer exceeds the "
                f"{limits.max_stream_buffer_bytes}-character budget",
                limit="max_stream_buffer_bytes",
                value=self._pending_bytes,
                maximum=limits.max_stream_buffer_bytes,
            )
