"""The event vocabulary of the streaming pipeline.

:class:`~repro.stream.reader.StreamReader` turns XML text into a flat
sequence of these events; :class:`~repro.stream.labeler.StreamLabeler`
consumes them. The vocabulary mirrors what the DOM parser materializes,
so a tree rebuilt from the events (``document_from_events``) is
node-for-node identical to :func:`repro.xml.parser.parse_document` of
the same text.

Character data needs two flags beyond the raw string:

``cdata``
    The data came from a ``<![CDATA[...]]>`` section. The DOM parser
    skips well-formedness checks inside CDATA and does not charge the
    resulting text node against ``max_node_count``; consumers that
    rebuild trees must mirror both.
``new_segment``
    True on the first event of a markup-delimited text run. Long runs
    may be emitted in several :class:`Characters` events (bounded
    memory); the flag lets tree builders reassemble the exact segments
    the DOM parser saw, which matters for the per-segment
    ignorable-whitespace drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dtd.model import DTD

__all__ = [
    "StreamEvent",
    "StartDocument",
    "DoctypeDecl",
    "StartElement",
    "EndElement",
    "Characters",
    "CommentEvent",
    "PIEvent",
    "EndDocument",
]


class StreamEvent:
    """Base class; exists so consumers can type-dispatch."""

    __slots__ = ()


@dataclass(slots=True)
class StartDocument(StreamEvent):
    """Document start; carries the XML declaration (or its defaults)."""

    xml_version: str = "1.0"
    encoding: Optional[str] = None
    standalone: Optional[bool] = None


@dataclass(slots=True)
class DoctypeDecl(StreamEvent):
    """A ``<!DOCTYPE ...>`` declaration.

    *dtd* is the parsed internal subset (``None`` when the declaration
    has none); its general entities were already applied to subsequent
    reference resolution by the reader.
    """

    name: str
    system_id: Optional[str] = None
    dtd: Optional[DTD] = None


@dataclass(slots=True)
class StartElement(StreamEvent):
    """``<name attrs...>`` — attribute values are normalized and
    reference-resolved, in source order."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class EndElement(StreamEvent):
    name: str


@dataclass(slots=True)
class Characters(StreamEvent):
    """Character data, reference-resolved and EOL-normalized."""

    data: str
    cdata: bool = False
    new_segment: bool = True


@dataclass(slots=True)
class CommentEvent(StreamEvent):
    data: str


@dataclass(slots=True)
class PIEvent(StreamEvent):
    target: str
    data: str = ""


@dataclass(slots=True)
class EndDocument(StreamEvent):
    pass
