"""Compile authorization path expressions into streaming matchers.

The DOM pipeline evaluates each authorization's XPath against the
materialized tree. Here the same expressions compile into NFA-style
position automata evaluated per :class:`StartElement` event — the same
set-of-states technique as the Glushkov automata in
:mod:`repro.dtd.content_model`, applied to location paths (cf. Mahfoud
& Imine's rewriting approach to securely querying XML views).

A compiled :class:`PathProgram` is a sequence of steps of two kinds:

- an *element step* (``child::name`` / ``child::*``, with optional
  attribute predicates), which consumes one tree level;
- a *descendant glue* step (``descendant-or-self::node()``, written
  ``//``), which may consume any number of levels, including zero.

A state is a set of step positions; entering an element advances the
parent's set, ε-closing through glue steps — so ``/a//@id`` correctly
selects ``a``'s own attributes (the "self" case of ``//``) as well as
every descendant's. Matching one element costs O(states), independent
of document size.

Only the subset actually used by authorization objects is streamable:
child/descendant name tests, attribute tails, and attribute-comparison
predicates. Anything else (ancestor axes, positional predicates,
functions...) raises :class:`StreamPathUnsupported`; the server facade
falls back to the DOM pipeline, so unsupported policies stay *correct*,
just not streamed.

Node tests that can only select text or comment nodes compile to a
null program on purpose: authorizations binned on such nodes have no
effect in the DOM pipeline either (value visibility always follows the
parent element's final sign), so dropping them preserves equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Union

from repro.errors import ReproError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    Literal,
    LocationPath,
    NodeTestKind,
    Step,
    UnionExpr,
)
from repro.xpath.compile import RelativeMode, compile_xpath

__all__ = [
    "StreamPathUnsupported",
    "AttrPredicate",
    "ElementStep",
    "DESCENDANT_GLUE",
    "PathProgram",
    "StreamPattern",
    "compile_stream_pattern",
]


class StreamPathUnsupported(ReproError):
    """The expression falls outside the streamable XPath subset."""


@dataclass(frozen=True)
class AttrPredicate:
    """``[@name]``, ``[./@name = "v"]`` or ``[@name != "v"]``.

    *name* ``None`` means ``@*``. *op* ``None`` is a bare existence
    test. Comparison semantics follow the evaluator's node-set rules:
    ``=`` holds iff a matching attribute exists with that exact value,
    ``!=`` iff one exists with a different value.
    """

    name: Optional[str]
    op: Optional[str] = None
    value: Optional[str] = None

    def matches(self, attributes: dict[str, str]) -> bool:
        if self.name is not None:
            if self.name not in attributes:
                return False
            candidates = (attributes[self.name],)
        else:
            if not attributes:
                return False
            candidates = tuple(attributes.values())
        if self.op is None:
            return True
        if self.op == "=":
            return any(value == self.value for value in candidates)
        return any(value != self.value for value in candidates)


@dataclass(frozen=True)
class ElementStep:
    """One ``child::`` step: name test (``None`` = wildcard) plus
    attribute predicates (all must hold)."""

    name: Optional[str]
    predicates: tuple[AttrPredicate, ...] = ()

    def matches(self, name: str, attributes: dict[str, str]) -> bool:
        if self.name is not None and self.name != name:
            return False
        return all(p.matches(attributes) for p in self.predicates)


class _Glue:
    """Sentinel for a ``descendant-or-self::node()`` step."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "//"


DESCENDANT_GLUE = _Glue()

_StepT = Union[ElementStep, _Glue]


@dataclass(frozen=True)
class _AttrTail:
    """A trailing ``@name`` / ``@*`` step selecting attributes."""

    name: Optional[str]

    def matches(self, attr_name: str) -> bool:
        return self.name is None or self.name == attr_name


@dataclass
class PathProgram:
    """One compiled location path.

    A state is a frozenset of positions into *steps*; position
    ``len(steps)`` is the accepting position. A null program (a path
    that can never select an element or attribute) has ``null`` set and
    empty machinery.
    """

    steps: tuple[_StepT, ...] = ()
    attr: Optional[_AttrTail] = None
    null: bool = False

    _EMPTY: frozenset = frozenset()

    def initial(self) -> frozenset:
        """The document node's state, before any element."""
        if self.null:
            return self._EMPTY
        return self._closure({0})

    def advance(
        self, states: frozenset, name: str, attributes: dict[str, str]
    ) -> frozenset:
        """The state of a child element reached from *states*."""
        if not states:
            return self._EMPTY
        out: set[int] = set()
        steps = self.steps
        for position in states:
            if position >= len(steps):
                continue
            step = steps[position]
            if step is DESCENDANT_GLUE:
                out.add(position)  # stay inside the glue...
                # (...position+1 was already added by the ε-closure)
            elif step.matches(name, attributes):
                out.add(position + 1)
        return self._closure(out)

    def accepts_element(self, states: frozenset) -> bool:
        """Whether the element owning *states* is selected."""
        return self.attr is None and len(self.steps) in states

    def attr_active(self, states: frozenset) -> bool:
        """Whether this element's attributes are candidates."""
        return self.attr is not None and len(self.steps) in states

    def matches_attribute(self, states: frozenset, attr_name: str) -> bool:
        return self.attr_active(states) and self.attr.matches(attr_name)

    def _closure(self, positions: set) -> frozenset:
        """ε-closure: glue steps also match the empty descent."""
        pending = list(positions)
        out = set(positions)
        steps = self.steps
        while pending:
            position = pending.pop()
            if position < len(steps) and steps[position] is DESCENDANT_GLUE:
                nxt = position + 1
                if nxt not in out:
                    out.add(nxt)
                    pending.append(nxt)
        return frozenset(out)


#: ``/*`` — what a bare-URI authorization object denotes (the document's
#: root element; DESIGN.md decision 4).
ROOT_PROGRAM = PathProgram(steps=(ElementStep(None),))

_NULL = PathProgram(null=True)


@dataclass
class StreamPattern:
    """The compiled form of one authorization object's path."""

    source: Optional[str]
    programs: list[PathProgram] = field(default_factory=list)

    def initial(self) -> list[frozenset]:
        return [program.initial() for program in self.programs]

    def advance(
        self, states: list[frozenset], name: str, attributes: dict[str, str]
    ) -> list[frozenset]:
        return [
            program.advance(state, name, attributes)
            for program, state in zip(self.programs, states)
        ]

    def accepts_element(self, states: list[frozenset]) -> bool:
        return any(
            program.accepts_element(state)
            for program, state in zip(self.programs, states)
        )

    def any_attr_active(self, states: list[frozenset]) -> bool:
        return any(
            program.attr_active(state)
            for program, state in zip(self.programs, states)
        )

    def matches_attribute(self, states: list[frozenset], attr_name: str) -> bool:
        return any(
            program.matches_attribute(state, attr_name)
            for program, state in zip(self.programs, states)
        )

    def alive(self, states: list[frozenset]) -> bool:
        """Whether any program can still match somewhere below."""
        return any(state for state in states)


def compile_stream_pattern(
    path: Optional[str], relative_mode: RelativeMode = "descendant"
) -> StreamPattern:
    """Compile an authorization path for streaming evaluation.

    ``None`` (a bare-URI object) denotes the document's root element.
    Raises :class:`StreamPathUnsupported` for expressions outside the
    streamable subset.
    """
    if path is None:
        return StreamPattern(source=None, programs=[ROOT_PROGRAM])
    return _compile_cached(path, relative_mode)


@lru_cache(maxsize=1024)
def _compile_cached(path: str, relative_mode: RelativeMode) -> StreamPattern:
    # compile_xpath parses (with its own memoization) and applies the
    # same relative-path anchoring as the DOM pipeline, so both backends
    # see the identical AST.
    ast = compile_xpath(path, relative_mode).ast
    programs = [_compile_path(part, path) for part in _union_parts(ast, path)]
    return StreamPattern(source=path, programs=programs)


def _union_parts(ast: Expr, source: str) -> list[Expr]:
    if isinstance(ast, UnionExpr):
        return list(ast.parts)
    return [ast]


def _compile_path(ast: Expr, source: str) -> PathProgram:
    if not isinstance(ast, LocationPath):
        raise StreamPathUnsupported(
            f"cannot stream {type(ast).__name__} expression {source!r}"
        )
    steps: list[_StepT] = []
    attr: Optional[_AttrTail] = None
    for index, step in enumerate(ast.steps):
        last = index == len(ast.steps) - 1
        if attr is not None:
            # Attributes are terminal; nothing may follow.
            raise StreamPathUnsupported(
                f"step after attribute step in {source!r}"
            )
        if step.axis is Axis.DESCENDANT_OR_SELF:
            if step.test.kind is not NodeTestKind.NODE or step.predicates:
                raise StreamPathUnsupported(
                    f"cannot stream predicated descendant-or-self in {source!r}"
                )
            steps.append(DESCENDANT_GLUE)
            continue
        if step.axis is Axis.DESCENDANT:
            steps.append(DESCENDANT_GLUE)
            element = _element_step(step, source)
            if element is None:  # text()/comment(): nothing selectable
                return _NULL
            steps.append(element)
            continue
        if step.axis is Axis.CHILD:
            element = _element_step(step, source)
            if element is None:
                return _NULL
            steps.append(element)
            continue
        if step.axis is Axis.SELF:
            # self::node() consumes nothing — an ε-step ('.' in a path).
            if step.test.kind is NodeTestKind.NODE and not step.predicates:
                continue
            raise StreamPathUnsupported(
                f"cannot stream self step with a test in {source!r}"
            )
        if step.axis is Axis.ATTRIBUTE:
            if step.predicates:
                raise StreamPathUnsupported(
                    f"cannot stream predicated attribute step in {source!r}"
                )
            if not last:
                raise StreamPathUnsupported(
                    f"step after attribute step in {source!r}"
                )
            if step.test.kind is NodeTestKind.NAME:
                attr = _AttrTail(step.test.name)
            elif step.test.kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
                attr = _AttrTail(None)
            else:  # text()/comment() on the attribute axis: empty set
                return _NULL
            continue
        raise StreamPathUnsupported(
            f"cannot stream axis {step.axis.value!r} in {source!r}"
        )
    return PathProgram(steps=tuple(steps), attr=attr)


def _element_step(step: Step, source: str) -> Optional[ElementStep]:
    """An :class:`ElementStep` for a child/descendant step, or ``None``
    when the node test can only select text/comment nodes (whose labels
    never affect the view)."""
    kind = step.test.kind
    if kind in (NodeTestKind.TEXT, NodeTestKind.COMMENT):
        return None
    if kind is NodeTestKind.NAME:
        name = step.test.name
    elif kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
        name = None
    else:  # pragma: no cover - exhaustive over NodeTestKind
        raise StreamPathUnsupported(f"cannot stream node test in {source!r}")
    predicates = tuple(
        _attr_predicate(predicate, source) for predicate in step.predicates
    )
    return ElementStep(name=name, predicates=predicates)


def _attr_predicate(predicate: Expr, source: str) -> AttrPredicate:
    if isinstance(predicate, LocationPath):
        name = _attr_path_name(predicate)
        if name is not _UNSUPPORTED:
            return AttrPredicate(name=name)
    if isinstance(predicate, BinaryExpr) and predicate.op in ("=", "!="):
        left, right = predicate.left, predicate.right
        if isinstance(right, Literal) and isinstance(left, LocationPath):
            path, literal = left, right
        elif isinstance(left, Literal) and isinstance(right, LocationPath):
            path, literal = right, left
        else:
            raise StreamPathUnsupported(
                f"cannot stream predicate in {source!r}"
            )
        name = _attr_path_name(path)
        if name is not _UNSUPPORTED:
            return AttrPredicate(name=name, op=predicate.op, value=literal.value)
    raise StreamPathUnsupported(f"cannot stream predicate in {source!r}")


_UNSUPPORTED = object()


def _attr_path_name(path: LocationPath):
    """The attribute name of an ``@k`` / ``./@k`` predicate path.

    Returns ``None`` for ``@*``, or :data:`_UNSUPPORTED` when the path
    is not a pure own-attribute reference.
    """
    if path.absolute:
        return _UNSUPPORTED
    steps = path.steps
    if len(steps) == 2:
        first = steps[0]
        if not (
            first.axis is Axis.SELF
            and first.test.kind is NodeTestKind.NODE
            and not first.predicates
        ):
            return _UNSUPPORTED
        steps = steps[1:]
    if len(steps) != 1:
        return _UNSUPPORTED
    step = steps[0]
    if step.axis is not Axis.ATTRIBUTE or step.predicates:
        return _UNSUPPORTED
    if step.test.kind is NodeTestKind.NAME:
        return step.test.name
    if step.test.kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
        return None
    return _UNSUPPORTED
