"""Compile authorization path expressions into streaming matchers.

The DOM pipeline evaluates each authorization's XPath against the
materialized tree. Here the same expressions compile into NFA-style
position automata evaluated per :class:`StartElement` event — the same
set-of-states technique as the Glushkov automata in
:mod:`repro.dtd.content_model`, applied to location paths (cf. Mahfoud
& Imine's rewriting approach to securely querying XML views).

A compiled :class:`PathProgram` is a sequence of steps of two kinds:

- an *element step* (``child::name`` / ``child::*``, with optional
  attribute predicates), which consumes one tree level;
- a *descendant glue* step (``descendant-or-self::node()``, written
  ``//``), which may consume any number of levels, including zero.

A state is a set of step positions; entering an element advances the
parent's set, ε-closing through glue steps — so ``/a//@id`` correctly
selects ``a``'s own attributes (the "self" case of ``//``) as well as
every descendant's. Matching one element costs O(states), independent
of document size.

Only the subset actually used by authorization objects is streamable:
child/descendant name tests, attribute tails, and attribute-comparison
predicates. Anything else (ancestor axes, positional predicates,
functions...) raises :class:`StreamPathUnsupported`; the server facade
falls back to the DOM pipeline, so unsupported policies stay *correct*,
just not streamed.

Node tests that can only select text or comment nodes compile to a
null program on purpose: authorizations binned on such nodes have no
effect in the DOM pipeline either (value visibility always follows the
parent element's final sign), so dropping them preserves equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Union

from repro.errors import ReproError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    Literal,
    LocationPath,
    NodeTestKind,
    Step,
    UnionExpr,
)
from repro.xpath.compile import RelativeMode, compile_xpath

__all__ = [
    "StreamPathUnsupported",
    "AttrPredicate",
    "ElementStep",
    "DESCENDANT_GLUE",
    "PathProgram",
    "StreamPattern",
    "PatternDispatch",
    "DispatchNode",
    "compile_stream_pattern",
]


class StreamPathUnsupported(ReproError):
    """The expression falls outside the streamable XPath subset."""


@dataclass(frozen=True)
class AttrPredicate:
    """``[@name]``, ``[./@name = "v"]`` or ``[@name != "v"]``.

    *name* ``None`` means ``@*``. *op* ``None`` is a bare existence
    test. Comparison semantics follow the evaluator's node-set rules:
    ``=`` holds iff a matching attribute exists with that exact value,
    ``!=`` iff one exists with a different value.
    """

    name: Optional[str]
    op: Optional[str] = None
    value: Optional[str] = None

    def matches(self, attributes: dict[str, str]) -> bool:
        if self.name is not None:
            if self.name not in attributes:
                return False
            candidates = (attributes[self.name],)
        else:
            if not attributes:
                return False
            candidates = tuple(attributes.values())
        if self.op is None:
            return True
        if self.op == "=":
            return any(value == self.value for value in candidates)
        return any(value != self.value for value in candidates)


@dataclass(frozen=True)
class ElementStep:
    """One ``child::`` step: name test (``None`` = wildcard) plus
    attribute predicates (all must hold)."""

    name: Optional[str]
    predicates: tuple[AttrPredicate, ...] = ()

    def matches(self, name: str, attributes: dict[str, str]) -> bool:
        if self.name is not None and self.name != name:
            return False
        return all(p.matches(attributes) for p in self.predicates)


class _Glue:
    """Sentinel for a ``descendant-or-self::node()`` step."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "//"


DESCENDANT_GLUE = _Glue()

_StepT = Union[ElementStep, _Glue]


@dataclass(frozen=True)
class _AttrTail:
    """A trailing ``@name`` / ``@*`` step selecting attributes."""

    name: Optional[str]

    def matches(self, attr_name: str) -> bool:
        return self.name is None or self.name == attr_name


@dataclass
class PathProgram:
    """One compiled location path.

    A state is a frozenset of positions into *steps*; position
    ``len(steps)`` is the accepting position. A null program (a path
    that can never select an element or attribute) has ``null`` set and
    empty machinery.
    """

    steps: tuple[_StepT, ...] = ()
    attr: Optional[_AttrTail] = None
    null: bool = False

    _EMPTY: frozenset = frozenset()

    def initial(self) -> frozenset:
        """The document node's state, before any element."""
        if self.null:
            return self._EMPTY
        return self._closure({0})

    def advance(
        self, states: frozenset, name: str, attributes: dict[str, str]
    ) -> frozenset:
        """The state of a child element reached from *states*."""
        if not states:
            return self._EMPTY
        out: set[int] = set()
        steps = self.steps
        for position in states:
            if position >= len(steps):
                continue
            step = steps[position]
            if step is DESCENDANT_GLUE:
                out.add(position)  # stay inside the glue...
                # (...position+1 was already added by the ε-closure)
            elif step.matches(name, attributes):
                out.add(position + 1)
        return self._closure(out)

    def accepts_element(self, states: frozenset) -> bool:
        """Whether the element owning *states* is selected."""
        return self.attr is None and len(self.steps) in states

    def attr_active(self, states: frozenset) -> bool:
        """Whether this element's attributes are candidates."""
        return self.attr is not None and len(self.steps) in states

    def matches_attribute(self, states: frozenset, attr_name: str) -> bool:
        return self.attr_active(states) and self.attr.matches(attr_name)

    def _closure(self, positions: set) -> frozenset:
        """ε-closure: glue steps also match the empty descent."""
        pending = list(positions)
        out = set(positions)
        steps = self.steps
        while pending:
            position = pending.pop()
            if position < len(steps) and steps[position] is DESCENDANT_GLUE:
                nxt = position + 1
                if nxt not in out:
                    out.add(nxt)
                    pending.append(nxt)
        return frozenset(out)


#: ``/*`` — what a bare-URI authorization object denotes (the document's
#: root element; DESIGN.md decision 4).
ROOT_PROGRAM = PathProgram(steps=(ElementStep(None),))

_NULL = PathProgram(null=True)


@dataclass
class StreamPattern:
    """The compiled form of one authorization object's path."""

    source: Optional[str]
    programs: list[PathProgram] = field(default_factory=list)

    def initial(self) -> list[frozenset]:
        return [program.initial() for program in self.programs]

    def advance(
        self, states: list[frozenset], name: str, attributes: dict[str, str]
    ) -> list[frozenset]:
        return [
            program.advance(state, name, attributes)
            for program, state in zip(self.programs, states)
        ]

    def accepts_element(self, states: list[frozenset]) -> bool:
        return any(
            program.accepts_element(state)
            for program, state in zip(self.programs, states)
        )

    def any_attr_active(self, states: list[frozenset]) -> bool:
        return any(
            program.attr_active(state)
            for program, state in zip(self.programs, states)
        )

    def matches_attribute(self, states: list[frozenset], attr_name: str) -> bool:
        return any(
            program.matches_attribute(state, attr_name)
            for program, state in zip(self.programs, states)
        )

    def alive(self, states: list[frozenset]) -> bool:
        """Whether any program can still match somewhere below."""
        return any(state for state in states)


#: Per-node transition-memo cap. Nodes (interned state tuples) are
#: bounded by the reachable subset construction, but *transitions* are
#: keyed by element name and would otherwise grow with the document's
#: vocabulary — a streamed document must not accumulate O(distinct
#: names) memory. Past the cap, lookups still work; they just recompute.
_TRANS_CACHE_CAP = 4096


class DispatchNode:
    """One interned joint state of every compiled program.

    ``states`` is the flat tuple of per-program NFA states (one
    frozenset per program, across all patterns in pattern order).
    Everything an element event needs is precomputed at interning time:

    - ``accepts`` — indices of the *patterns* (not programs) whose
      element part selects a node in this state, in pattern order — the
      same order the labelers bin authorizations in;
    - ``attr_entries`` — ``(pattern_index, tail_names)`` pairs for the
      patterns with an active attribute tail here (``None`` in
      *tail_names* is ``@*``);
    - ``preds`` / ``pred_bit`` — the distinct attribute predicates any
      outgoing transition depends on, and their bit positions in the
      transition-key mask;
    - ``trans`` — the memoized ``(child_name, predicate_mask)`` →
      :class:`DispatchNode` transitions.

    Nodes compare and hash by identity; the dispatch interns them so
    identical joint states are the same object.
    """

    __slots__ = ("states", "preds", "pred_bit", "trans", "accepts", "attr_entries")

    def __init__(self, states: tuple) -> None:
        self.states = states
        self.trans: dict = {}
        self.preds: tuple = ()
        self.pred_bit: dict = {}
        self.accepts: tuple = ()
        self.attr_entries: tuple = ()


class PatternDispatch:
    """A lazily-built DFA over the joint state of many patterns.

    The per-element work of the streaming labeler — advance every
    pattern's NFA, collect accepting patterns, collect active attribute
    tails — collapses to one dict lookup per element once a transition
    is warm: ``(name, predicate_mask)`` → child node, where the mask
    packs the outcomes of the few attribute predicates this state
    actually depends on (``0`` when the element has no attributes,
    since no predicate matches an empty attribute set).

    The same object drives both backends: the streaming labeler walks
    it event-by-event and :class:`repro.core.labeling.TreeLabeler` walks
    it node-by-node, so one construction binds authorizations for
    either pipeline.
    """

    __slots__ = ("_programs", "_nodes", "initial")

    def __init__(self, patterns: list[StreamPattern]) -> None:
        self._programs: list[tuple[int, PathProgram]] = [
            (index, program)
            for index, pattern in enumerate(patterns)
            for program in pattern.programs
        ]
        self._nodes: dict[tuple, DispatchNode] = {}
        self.initial = self._intern(
            tuple(program.initial() for _, program in self._programs)
        )

    def advance(
        self, node: DispatchNode, name: str, attributes: dict[str, str]
    ) -> DispatchNode:
        """The child node entered from *node* by an element event."""
        mask = 0
        if attributes and node.preds:
            for bit, predicate in enumerate(node.preds):
                if predicate.matches(attributes):
                    mask |= 1 << bit
        key = (name, mask)
        child = node.trans.get(key)
        if child is None:
            child = self._build(node, name, mask)
            if len(node.trans) < _TRANS_CACHE_CAP:
                node.trans[key] = child
        return child

    def _build(self, node: DispatchNode, name: str, mask: int) -> DispatchNode:
        pred_bit = node.pred_bit
        new_states = []
        for (_, program), states in zip(self._programs, node.states):
            out: set[int] = set()
            steps = program.steps
            for position in states:
                if position >= len(steps):
                    continue
                step = steps[position]
                if step is DESCENDANT_GLUE:
                    out.add(position)  # position+1 came from the ε-closure
                    continue
                if step.name is not None and step.name != name:
                    continue
                for predicate in step.predicates:
                    if not (mask >> pred_bit[predicate]) & 1:
                        break
                else:
                    out.add(position + 1)
            new_states.append(program._closure(out))
        return self._intern(tuple(new_states))

    def _intern(self, states: tuple) -> DispatchNode:
        node = self._nodes.get(states)
        if node is not None:
            return node
        node = DispatchNode(states)
        self._nodes[states] = node
        preds: list[AttrPredicate] = []
        pred_bit: dict[AttrPredicate, int] = {}
        accepts: list[int] = []
        attr_tails: dict[int, list] = {}
        for (pattern_index, program), state in zip(self._programs, states):
            accepting = len(program.steps) in state
            if accepting:
                if program.attr is None:
                    if not accepts or accepts[-1] != pattern_index:
                        accepts.append(pattern_index)
                else:
                    tails = attr_tails.setdefault(pattern_index, [])
                    if program.attr.name not in tails:
                        tails.append(program.attr.name)
            for position in state:
                if position >= len(program.steps):
                    continue
                step = program.steps[position]
                if step is not DESCENDANT_GLUE:
                    for predicate in step.predicates:
                        if predicate not in pred_bit:
                            pred_bit[predicate] = len(preds)
                            preds.append(predicate)
        node.preds = tuple(preds)
        node.pred_bit = pred_bit
        node.accepts = tuple(accepts)
        node.attr_entries = tuple(
            (pattern_index, tuple(tails))
            for pattern_index, tails in attr_tails.items()
        )
        return node


def compile_stream_pattern(
    path: Optional[str],
    relative_mode: RelativeMode = "descendant",
    exact: bool = False,
) -> StreamPattern:
    """Compile an authorization path for streaming evaluation.

    ``None`` (a bare-URI object) denotes the document's root element.
    Raises :class:`StreamPathUnsupported` for expressions outside the
    streamable subset.

    With ``exact=True`` the compilation additionally rejects paths the
    stream matcher represents *lossily* rather than equivalently —
    paths whose final selecting step could bind text, comment or
    document nodes under the XPath evaluator (``text()``/``comment()``/
    ``node()`` tests on the child or descendant axes, bare ``/``,
    trailing ``//`` or ``.``). For a pattern compiled exactly, the set
    of element/attribute nodes the matcher accepts equals the node-set
    ``Authorization.select_nodes`` would bin — which is what lets
    :class:`repro.core.labeling.TreeLabeler` bind every authorization
    in one tree walk instead of one XPath evaluation each.
    """
    if path is None:
        return StreamPattern(source=None, programs=[ROOT_PROGRAM])
    return _compile_cached(path, relative_mode, exact)


@lru_cache(maxsize=1024)
def _compile_cached(
    path: str, relative_mode: RelativeMode, exact: bool
) -> StreamPattern:
    # compile_xpath parses (with its own memoization) and applies the
    # same relative-path anchoring as the DOM pipeline, so both backends
    # see the identical AST.
    ast = compile_xpath(path, relative_mode).ast
    parts = _union_parts(ast, path)
    if exact:
        for part in parts:
            _check_exact(part, path)
    programs = [_compile_path(part, path) for part in parts]
    return StreamPattern(source=path, programs=programs)


def _check_exact(ast: Expr, source: str) -> None:
    """Reject a union part whose stream compilation would be lossy.

    Only the *final selecting step* can diverge: intermediate
    ``text()``/``comment()`` steps make the whole path select nothing
    under both engines (such nodes have no children), and intermediate
    ``node()`` tests behave like ``*`` because only elements have
    children. A final step, though, decides what gets binned — so it
    must provably select only elements (child/descendant axis with a
    name or ``*`` test) or only attributes (the attribute axis, whose
    principal node type filters everything else out).
    """
    if not isinstance(ast, LocationPath):
        raise StreamPathUnsupported(
            f"cannot stream {type(ast).__name__} expression {source!r}"
        )
    steps = list(ast.steps)
    # Trailing self::node() steps are ε: they keep the previous step's
    # selection. (Self steps with other tests are rejected downstream.)
    while (
        steps
        and steps[-1].axis is Axis.SELF
        and steps[-1].test.kind is NodeTestKind.NODE
        and not steps[-1].predicates
    ):
        steps.pop()
    if not steps:
        raise StreamPathUnsupported(
            f"cannot bind {source!r} exactly: selects the document node"
        )
    last = steps[-1]
    if last.axis is Axis.ATTRIBUTE:
        return
    if last.axis in (Axis.CHILD, Axis.DESCENDANT) and last.test.kind in (
        NodeTestKind.NAME,
        NodeTestKind.WILDCARD,
    ):
        return
    raise StreamPathUnsupported(
        f"cannot bind {source!r} exactly: the final step may select "
        "non-element nodes"
    )


def _union_parts(ast: Expr, source: str) -> list[Expr]:
    if isinstance(ast, UnionExpr):
        return list(ast.parts)
    return [ast]


def _compile_path(ast: Expr, source: str) -> PathProgram:
    if not isinstance(ast, LocationPath):
        raise StreamPathUnsupported(
            f"cannot stream {type(ast).__name__} expression {source!r}"
        )
    steps: list[_StepT] = []
    attr: Optional[_AttrTail] = None
    for index, step in enumerate(ast.steps):
        last = index == len(ast.steps) - 1
        if attr is not None:
            # Attributes are terminal; nothing may follow.
            raise StreamPathUnsupported(
                f"step after attribute step in {source!r}"
            )
        if step.axis is Axis.DESCENDANT_OR_SELF:
            if step.test.kind is not NodeTestKind.NODE or step.predicates:
                raise StreamPathUnsupported(
                    f"cannot stream predicated descendant-or-self in {source!r}"
                )
            steps.append(DESCENDANT_GLUE)
            continue
        if step.axis is Axis.DESCENDANT:
            steps.append(DESCENDANT_GLUE)
            element = _element_step(step, source)
            if element is None:  # text()/comment(): nothing selectable
                return _NULL
            steps.append(element)
            continue
        if step.axis is Axis.CHILD:
            element = _element_step(step, source)
            if element is None:
                return _NULL
            steps.append(element)
            continue
        if step.axis is Axis.SELF:
            # self::node() consumes nothing — an ε-step ('.' in a path).
            if step.test.kind is NodeTestKind.NODE and not step.predicates:
                continue
            raise StreamPathUnsupported(
                f"cannot stream self step with a test in {source!r}"
            )
        if step.axis is Axis.ATTRIBUTE:
            if step.predicates:
                raise StreamPathUnsupported(
                    f"cannot stream predicated attribute step in {source!r}"
                )
            if not last:
                raise StreamPathUnsupported(
                    f"step after attribute step in {source!r}"
                )
            if step.test.kind is NodeTestKind.NAME:
                attr = _AttrTail(step.test.name)
            elif step.test.kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
                attr = _AttrTail(None)
            else:  # text()/comment() on the attribute axis: empty set
                return _NULL
            continue
        raise StreamPathUnsupported(
            f"cannot stream axis {step.axis.value!r} in {source!r}"
        )
    return PathProgram(steps=tuple(steps), attr=attr)


def _element_step(step: Step, source: str) -> Optional[ElementStep]:
    """An :class:`ElementStep` for a child/descendant step, or ``None``
    when the node test can only select text/comment nodes (whose labels
    never affect the view)."""
    kind = step.test.kind
    if kind in (NodeTestKind.TEXT, NodeTestKind.COMMENT):
        return None
    if kind is NodeTestKind.NAME:
        name = step.test.name
    elif kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
        name = None
    else:  # pragma: no cover - exhaustive over NodeTestKind
        raise StreamPathUnsupported(f"cannot stream node test in {source!r}")
    predicates = tuple(
        _attr_predicate(predicate, source) for predicate in step.predicates
    )
    return ElementStep(name=name, predicates=predicates)


def _attr_predicate(predicate: Expr, source: str) -> AttrPredicate:
    if isinstance(predicate, LocationPath):
        name = _attr_path_name(predicate)
        if name is not _UNSUPPORTED:
            return AttrPredicate(name=name)
    if isinstance(predicate, BinaryExpr) and predicate.op in ("=", "!="):
        left, right = predicate.left, predicate.right
        if isinstance(right, Literal) and isinstance(left, LocationPath):
            path, literal = left, right
        elif isinstance(left, Literal) and isinstance(right, LocationPath):
            path, literal = right, left
        else:
            raise StreamPathUnsupported(
                f"cannot stream predicate in {source!r}"
            )
        name = _attr_path_name(path)
        if name is not _UNSUPPORTED:
            return AttrPredicate(name=name, op=predicate.op, value=literal.value)
    raise StreamPathUnsupported(f"cannot stream predicate in {source!r}")


_UNSUPPORTED = object()


def _attr_path_name(path: LocationPath):
    """The attribute name of an ``@k`` / ``./@k`` predicate path.

    Returns ``None`` for ``@*``, or :data:`_UNSUPPORTED` when the path
    is not a pure own-attribute reference.
    """
    if path.absolute:
        return _UNSUPPORTED
    steps = path.steps
    if len(steps) == 2:
        first = steps[0]
        if not (
            first.axis is Axis.SELF
            and first.test.kind is NodeTestKind.NODE
            and not first.predicates
        ):
            return _UNSUPPORTED
        steps = steps[1:]
    if len(steps) != 1:
        return _UNSUPPORTED
    step = steps[0]
    if step.axis is not Axis.ATTRIBUTE or step.predicates:
        return _UNSUPPORTED
    if step.test.kind is NodeTestKind.NAME:
        return step.test.name
    if step.test.kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
        return None
    return _UNSUPPORTED
