"""Incremental serialization of the streamed view.

:class:`StreamWriter` produces, byte for byte, what
``serialize(view_document, doctype=False)`` produces for the DOM
pipeline's view: the XML declaration on its own line, then the root
element's subtree in the compact style of
:mod:`repro.xml.serializer` — ``<name/>`` for childless elements,
attributes in insertion order, :func:`~repro.xml.escape.escape_text` /
:func:`~repro.xml.escape.escape_attribute` escaping.

The writer keeps the current start tag open (``<name attrs...``) until
it learns whether the element has content; any content call — including
an *empty* text node, which the DOM serializer still treats as content
(``<a></a>``, not ``<a/>``) — closes it with ``>``. Completed output is
handed to *sink* in chunks of roughly *chunk_size* characters, so the
first visible bytes leave before the document has finished arriving.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.xml.escape import escape_attribute, escape_text

__all__ = ["StreamWriter"]


class StreamWriter:
    """Serialize one view incrementally.

    Parameters
    ----------
    sink:
        Called with each completed chunk of output text (``None``
        collects only).
    chunk_size:
        Flush threshold in characters; output is pushed to *sink* once
        at least this much has accumulated (and once more at the end).
    collect:
        Keep the full text for :meth:`getvalue`. The server needs it
        for ``AccessResponse.xml_text``; pure relay use can turn it off
        so memory stays independent of the view size.
    """

    def __init__(
        self,
        sink: Optional[Callable[[str], None]] = None,
        chunk_size: int = 65536,
        collect: bool = True,
    ) -> None:
        if sink is None and not collect:
            raise ValueError(
                "StreamWriter with collect=False and no sink would discard "
                "all output; pass a sink or keep collect=True"
            )
        self._sink = sink
        self._chunk_size = max(1, chunk_size)
        self._collect = collect
        self._parts: list[str] = []
        self._buffered = 0
        self._collected: list[str] = []
        self._open_tag = False  # start tag emitted but not yet closed
        self._stack: list[str] = []
        self._chars_written = 0

    @property
    def chars_written(self) -> int:
        """Characters emitted so far (flushed or pending)."""
        return self._chars_written + self._buffered

    # -- document ------------------------------------------------------------

    def start_document(
        self,
        xml_version: str = "1.0",
        encoding: Optional[str] = None,
        standalone: Optional[bool] = None,
    ) -> None:
        declaration = f'<?xml version="{xml_version}"'
        if encoding:
            declaration += f' encoding="{encoding}"'
        if standalone is not None:
            declaration += f' standalone="{"yes" if standalone else "no"}"'
        self._write(declaration + "?>\n")

    def end_document(self) -> str:
        """Flush everything; return the collected text (or ``""``)."""
        self._flush()
        return "".join(self._collected)

    def getvalue(self) -> str:
        """The text written so far (requires ``collect=True``)."""
        return "".join(self._collected) + "".join(self._parts)

    # -- elements ------------------------------------------------------------

    def start_element(self, name: str, attributes=()) -> None:
        self._close_open_tag()
        # Append pieces straight into the shared parts buffer — no
        # per-element intermediate join.
        parts = self._parts
        parts.append("<" + name)
        buffered = self._buffered + len(name) + 1
        items = attributes.items() if hasattr(attributes, "items") else attributes
        for attr_name, value in items:
            piece = f' {attr_name}="{escape_attribute(value)}"'
            parts.append(piece)
            buffered += len(piece)
        self._buffered = buffered
        self._stack.append(name)
        self._open_tag = True
        if buffered >= self._chunk_size:
            self._flush()

    def end_element(self) -> None:
        name = self._stack.pop()
        if self._open_tag:
            self._open_tag = False
            self._write("/>")
        else:
            self._write(f"</{name}>")

    # -- content -------------------------------------------------------------

    def text(self, data: str) -> None:
        # Even empty data counts as content: the DOM tree has a Text("")
        # node there, so the serializer emits <a></a>.
        self._close_open_tag()
        self._write(escape_text(data))

    def comment(self, data: str) -> None:
        self._close_open_tag()
        self._write(f"<!--{data}-->")

    def processing_instruction(self, target: str, data: str = "") -> None:
        self._close_open_tag()
        self._write(f"<?{target} {data}?>" if data else f"<?{target}?>")

    # -- plumbing ------------------------------------------------------------

    def _close_open_tag(self) -> None:
        if self._open_tag:
            self._open_tag = False
            self._write(">")

    def _write(self, text: str) -> None:
        if not text:
            return
        self._parts.append(text)
        self._buffered += len(text)
        if self._buffered >= self._chunk_size:
            self._flush()

    def _flush(self) -> None:
        if not self._parts:
            return
        chunk = "".join(self._parts)
        self._parts.clear()  # reuse the list across flushes
        self._buffered = 0
        self._chars_written += len(chunk)
        if self._collect:
            self._collected.append(chunk)
        if self._sink is not None:
            self._sink(chunk)
