"""repro.stream — streaming (event-based) view enforcement.

An alternative enforcement backend to the DOM pipeline of
:mod:`repro.core`: the document flows through as a pull-based event
stream (:mod:`repro.stream.reader`), authorization path expressions are
compiled to NFA-style matchers evaluated per event
(:mod:`repro.stream.paths`), labels propagate in a single pass with a
pending buffer only for elements whose visibility is not yet decidable
(:mod:`repro.stream.labeler`), and the view serializes incrementally
(:mod:`repro.stream.writer`). Memory stays bounded by
``ResourceLimits.max_stream_buffer_bytes`` instead of the document
size, and the first visible byte leaves before the last input byte
arrives.

The streamed view is byte-identical to the DOM pipeline's
(``serialize(compute_view(...), doctype=False)``); the differential
suite under ``tests/stream/`` enforces this across the generated
corpus. Paths outside the streamable XPath subset raise
:class:`~repro.stream.paths.StreamPathUnsupported`, which the server
facade turns into a transparent fallback to the DOM pipeline.
"""

from repro.stream.builder import DocumentBuilder, document_from_events
from repro.stream.events import (
    Characters,
    CommentEvent,
    DoctypeDecl,
    EndDocument,
    EndElement,
    PIEvent,
    StartDocument,
    StartElement,
    StreamEvent,
)
from repro.stream.labeler import StreamLabeler, StreamStats
from repro.stream.paths import (
    StreamPathUnsupported,
    StreamPattern,
    compile_stream_pattern,
)
from repro.stream.reader import StreamReader, iter_events
from repro.stream.writer import StreamWriter

__all__ = [
    "DocumentBuilder",
    "document_from_events",
    "Characters",
    "CommentEvent",
    "DoctypeDecl",
    "EndDocument",
    "EndElement",
    "PIEvent",
    "StartDocument",
    "StartElement",
    "StreamEvent",
    "StreamLabeler",
    "StreamStats",
    "StreamPathUnsupported",
    "StreamPattern",
    "compile_stream_pattern",
    "StreamReader",
    "iter_events",
    "StreamWriter",
]
