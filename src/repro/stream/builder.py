"""Rebuild a :mod:`repro.xml.nodes` tree from a stream of events.

:class:`DocumentBuilder` is the bridge between the incremental reader
and code that still wants a DOM: ``document_from_events(iter_events(
chunks))`` produces a tree node-for-node identical to
:func:`repro.xml.parser.parse_document` of the concatenated text —
including the parser's quirks that matter for view parity:

- only elements and text nodes created outside CDATA are charged
  against ``max_node_count`` (attributes, comments and PIs are free);
- the ignorable-whitespace drop is decided per *markup-delimited
  segment* (the raw run between two pieces of markup), not per text
  node, so ``<a> <![CDATA[x]]></a>`` with the drop enabled keeps only
  ``x`` — the :attr:`~repro.stream.events.Characters.new_segment` flag
  carries the segment boundaries across event splits;
- CDATA-born text merges into a preceding text node without a new
  node charge and is never dropped, whitespace-only or not.

The reader already enforces the input/depth/buffer guards and syntax;
the builder adds only the node-count guard, which is a property of
*materializing* the tree and deliberately does not apply to the
streaming enforcement path.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import XMLLimitExceeded, XMLSyntaxError
from repro.limits import Deadline, ResourceLimits
from repro.xml.nodes import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)

from repro.stream.events import (
    Characters,
    CommentEvent,
    DoctypeDecl,
    EndDocument,
    EndElement,
    PIEvent,
    StartDocument,
    StartElement,
    StreamEvent,
)

__all__ = ["DocumentBuilder", "document_from_events"]


class DocumentBuilder:
    """Accumulate events into a :class:`Document`; feed(), then finish()."""

    #: Node creations between two deadline checks (mirrors XMLParser).
    _DEADLINE_STRIDE = 1024

    def __init__(
        self,
        keep_comments: bool = True,
        keep_ignorable_whitespace: bool = True,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self._keep_comments = keep_comments
        self._keep_ws = keep_ignorable_whitespace
        self._limits = limits
        self._deadline = (
            deadline if deadline is not None and not deadline.unbounded else None
        )
        self._document = Document()
        self._stack: list[Element] = []
        self._nodes = 0
        self._finished = False
        # Segment buffer, used only when dropping ignorable whitespace:
        # the drop is decided on the whole markup-delimited segment.
        self._segment: list[str] = []
        self._segment_pending = False

    # -- public -------------------------------------------------------------

    def feed(self, events: Iterable[StreamEvent]) -> None:
        for event in events:
            if isinstance(event, Characters):
                self._on_characters(event)
                continue
            self._flush_segment()
            if isinstance(event, StartElement):
                self._on_start(event)
            elif isinstance(event, EndElement):
                self._stack.pop()
            elif isinstance(event, CommentEvent):
                if self._keep_comments:
                    self._append(Comment(event.data))
            elif isinstance(event, PIEvent):
                self._append(ProcessingInstruction(event.target, event.data))
            elif isinstance(event, StartDocument):
                self._document.xml_version = event.xml_version
                self._document.encoding = event.encoding
                self._document.standalone = event.standalone
            elif isinstance(event, DoctypeDecl):
                self._document.doctype_name = event.name
                self._document.system_id = event.system_id
                self._document.dtd = event.dtd
            elif isinstance(event, EndDocument):
                self._finished = True

    def finish(self) -> Document:
        """The completed tree (after the reader's ``EndDocument``)."""
        if not self._finished:
            raise XMLSyntaxError("event stream ended without EndDocument")
        return self._document

    # -- event handling -----------------------------------------------------

    def _on_start(self, event: StartElement) -> None:
        self._count_node()
        element = Element(event.name)
        for name, value in event.attributes.items():
            element.set_attribute(name, value)
        self._append(element)
        self._stack.append(element)

    def _on_characters(self, event: Characters) -> None:
        if not self._stack:
            # The reader only lets whitespace through outside the root.
            if event.data.strip():
                raise XMLSyntaxError("character data outside the root element")
            return
        if event.cdata:
            # CDATA is its own markup item: it terminates any pending
            # segment and its text is kept (and uncharged) verbatim.
            self._flush_segment()
            self._merge_text(event.data, charge=False)
            return
        if self._keep_ws:
            # No drop decision to defer: append as the data arrives.
            self._merge_text(event.data, charge=True)
            return
        if event.new_segment:
            self._flush_segment()
            self._segment_pending = True
        self._segment.append(event.data)

    def _flush_segment(self) -> None:
        if not self._segment_pending:
            return
        data = "".join(self._segment)
        self._segment.clear()
        self._segment_pending = False
        if not data or data.strip() == "":
            return  # ignorable whitespace, dropped whole
        self._merge_text(data, charge=True)

    def _merge_text(self, data: str, charge: bool) -> None:
        parent = self._stack[-1]
        last = parent.children[-1] if parent.children else None
        if isinstance(last, Text):
            last.data += data
        else:
            if charge:
                self._count_node()
            parent.append(Text(data))

    # -- plumbing -----------------------------------------------------------

    def _append(self, node) -> None:
        if self._stack:
            self._stack[-1].append(node)
        else:
            self._document.append(node)

    def _count_node(self) -> None:
        self._nodes += 1
        limits = self._limits
        if (
            limits is not None
            and limits.max_node_count is not None
            and self._nodes > limits.max_node_count
        ):
            raise XMLLimitExceeded(
                f"document exceeds the {limits.max_node_count}-node limit",
                limit="max_node_count",
                value=self._nodes,
                maximum=limits.max_node_count,
            )
        if self._deadline is not None and self._nodes % self._DEADLINE_STRIDE == 0:
            self._deadline.check("tree build")


def document_from_events(
    events: Iterable[StreamEvent],
    uri: Optional[str] = None,
    keep_comments: bool = True,
    keep_ignorable_whitespace: bool = True,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """Materialize *events* (e.g. from :func:`iter_events`) as a tree."""
    builder = DocumentBuilder(
        keep_comments=keep_comments,
        keep_ignorable_whitespace=keep_ignorable_whitespace,
        limits=limits,
        deadline=deadline,
    )
    builder.feed(events)
    document = builder.finish()
    document.uri = uri
    return document
