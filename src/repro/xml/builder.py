"""A fluent programmatic API for building document trees.

Workloads, examples and tests build documents with :func:`E` instead of
string templates::

    doc = new_document(
        E("laboratory", {"name": "CSlab"},
          E("project", {"name": "Access Models", "type": "public"},
            E("manager", E("flname", "Alice Smith")),
            E("paper", {"category": "public"}, E("title", "An XML paper")),
          ),
        ),
        uri="http://www.lab.com/CSlab.xml",
    )

:func:`E` accepts, after the tag name, an optional attribute dict and any
number of children: elements, strings (turned into text nodes), or other
node objects.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ReproError
from repro.xml.nodes import Comment, Document, Element, Node, ProcessingInstruction, Text

__all__ = ["E", "new_document", "text", "comment", "pi"]

Child = Union[Node, str, None]


def E(name: str, *items: Union[Child, dict[str, str]]) -> Element:
    """Build an :class:`Element` named *name*.

    Parameters
    ----------
    name:
        Element tag name.
    items:
        Any mix of: one or more ``dict`` arguments (merged into the
        attribute set), strings (appended as text nodes), nodes
        (appended as children), and ``None`` (skipped, convenient for
        conditional construction).
    """
    element = Element(name)
    for item in items:
        if item is None:
            continue
        if isinstance(item, dict):
            for attr_name, attr_value in item.items():
                element.set_attribute(attr_name, str(attr_value))
        elif isinstance(item, str):
            element.append(Text(item))
        elif isinstance(item, Node):
            if isinstance(item, Document):
                raise ReproError("cannot nest a document inside an element")
            element.append(item)
        else:
            raise ReproError(
                f"cannot add {type(item).__name__} as element content"
            )
    return element


def new_document(
    root: Element,
    uri: Optional[str] = None,
    doctype_name: Optional[str] = None,
    system_id: Optional[str] = None,
    dtd=None,
) -> Document:
    """Wrap *root* in a :class:`Document`.

    *doctype_name* defaults to the root element name whenever a
    *system_id* or a *dtd* object is supplied.
    """
    document = Document()
    document.uri = uri
    if system_id is not None or dtd is not None or doctype_name is not None:
        document.doctype_name = doctype_name or root.name
    document.system_id = system_id
    document.dtd = dtd
    document.append(root)
    return document


def text(data: str) -> Text:
    """Build a text node (alias for readability in builder expressions)."""
    return Text(data)


def comment(data: str) -> Comment:
    """Build a comment node."""
    return Comment(data)


def pi(target: str, data: str = "") -> ProcessingInstruction:
    """Build a processing-instruction node."""
    return ProcessingInstruction(target, data)
