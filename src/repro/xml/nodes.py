"""A DOM-like object model for XML documents.

The paper (Section 7) represents documents "as object trees, according to
the Document Object Model (DOM) Level One (Core) specification". This
module provides the equivalent model used throughout the library:

- :class:`Document` — the document node, owning a prolog and one root
  element;
- :class:`Element` — named node with ordered attributes and children;
- :class:`Attribute` — a name/value pair, itself a node of the tree (the
  paper's tree model hangs attributes, like sub-elements, off their
  element);
- :class:`Text` — character data ("values" in the paper's tree model);
- :class:`Comment` and :class:`ProcessingInstruction` — the remaining
  information items a parser can produce.

Nodes are plain mutable Python objects, hashable by identity, so that the
labeling algorithm can key side tables by node. Trees are built either by
the parser (:mod:`repro.xml.parser`) or programmatically via
:mod:`repro.xml.builder`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import ReproError
from repro.xml.chars import is_name

__all__ = [
    "Node",
    "Document",
    "Element",
    "Attribute",
    "Text",
    "Comment",
    "ProcessingInstruction",
]


class Node:
    """Base class of every tree node.

    Attributes
    ----------
    parent:
        The owning node (``None`` for a detached node or a document).
        For an :class:`Attribute` the parent is its element; for the root
        element it is the :class:`Document`.
    """

    __slots__ = ("parent", "__weakref__")

    def __init__(self) -> None:
        self.parent: Optional[Node] = None

    # -- tree navigation ------------------------------------------------

    @property
    def document(self) -> Optional["Document"]:
        """The document this node ultimately belongs to, if any."""
        node: Optional[Node] = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        """Yield the parent, grandparent... up to (and including) the
        document node."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_element(self) -> Optional["Element"]:
        """The topmost :class:`Element` above (or equal to) this node."""
        best: Optional[Element] = self if isinstance(self, Element) else None
        for anc in self.ancestors():
            if isinstance(anc, Element):
                best = anc
        return best

    # -- identity --------------------------------------------------------

    def __hash__(self) -> int:  # identity hashing, explicit for clarity
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    # -- copying ----------------------------------------------------------

    def clone(self, deep: bool = True) -> "Node":
        """Return a copy of this node, detached from any parent."""
        raise NotImplementedError


class _ParentNode(Node):
    """Shared behaviour of nodes that own an ordered child list."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    def append(self, child: Node) -> Node:
        """Append *child* (detaching it from any previous parent)."""
        if child.parent is not None:
            child.detach()  # type: ignore[attr-defined]
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert *child* at *index* in the child list."""
        if child.parent is not None:
            child.detach()  # type: ignore[attr-defined]
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: Node) -> None:
        """Remove *child* from the child list.

        Raises
        ------
        ReproError
            If *child* is not among this node's children.
        """
        for i, existing in enumerate(self.children):
            if existing is child:
                del self.children[i]
                child.parent = None
                return
        raise ReproError("node to remove is not a child of this node")

    def child_elements(self) -> Iterator["Element"]:
        """Yield only the :class:`Element` children, in order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child


class Document(_ParentNode):
    """The document node: prolog items plus exactly one root element.

    Attributes
    ----------
    doctype_name:
        Name from the ``<!DOCTYPE ...>`` declaration, or ``None``.
    system_id:
        The SYSTEM identifier of the external DTD, or ``None``.
    dtd:
        The parsed :class:`repro.dtd.model.DTD` for this document, if a
        DOCTYPE with an internal subset was parsed or a DTD was attached
        explicitly (the server attaches the schema-level DTD this way).
    uri:
        Where the document came from; used by the authorization engine to
        select applicable XACLs.
    standalone / xml_version / encoding:
        Values from the XML declaration (serialization round-trips them).
    """

    __slots__ = (
        "doctype_name",
        "system_id",
        "dtd",
        "uri",
        "xml_version",
        "encoding",
        "standalone",
    )

    def __init__(self) -> None:
        super().__init__()
        self.doctype_name: Optional[str] = None
        self.system_id: Optional[str] = None
        self.dtd = None  # type: ignore[assignment]  # repro.dtd.model.DTD
        self.uri: Optional[str] = None
        self.xml_version: str = "1.0"
        self.encoding: Optional[str] = None
        self.standalone: Optional[bool] = None

    @property
    def root(self) -> Optional["Element"]:
        """The document's root element (``None`` if empty)."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    def set_root(self, element: "Element") -> "Element":
        """Install *element* as the root, replacing any existing one."""
        existing = self.root
        if existing is not None:
            self.remove(existing)
        return self.append(element)

    def clone(self, deep: bool = True) -> "Document":
        copy = Document()
        copy.doctype_name = self.doctype_name
        copy.system_id = self.system_id
        copy.dtd = self.dtd
        copy.uri = self.uri
        copy.xml_version = self.xml_version
        copy.encoding = self.encoding
        copy.standalone = self.standalone
        if deep:
            for child in self.children:
                copy.append(child.clone(deep=True))
        return copy

    def __repr__(self) -> str:
        root = self.root
        name = root.name if root is not None else None
        return f"<Document root={name!r} uri={self.uri!r}>"


class Element(_ParentNode):
    """An XML element with ordered attributes and children.

    Attributes are stored in an insertion-ordered mapping from attribute
    name to :class:`Attribute` node; XML forbids duplicate attribute
    names on one element, so a mapping is faithful.
    """

    __slots__ = ("name", "attributes")

    def __init__(self, name: str) -> None:
        if not is_name(name):
            raise ReproError(f"invalid element name: {name!r}")
        super().__init__()
        self.name = name
        self.attributes: dict[str, Attribute] = {}

    # -- attribute handling ----------------------------------------------

    def set_attribute(self, name: str, value: str) -> "Attribute":
        """Create or update the attribute *name*, returning its node."""
        attr = self.attributes.get(name)
        if attr is None:
            attr = Attribute(name, value)
            attr.parent = self
            self.attributes[name] = attr
        else:
            attr.value = value
        return attr

    def get_attribute(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the *value* of attribute *name*, or *default*."""
        attr = self.attributes.get(name)
        return attr.value if attr is not None else default

    def attribute_node(self, name: str) -> Optional["Attribute"]:
        """Return the :class:`Attribute` node named *name*, or ``None``."""
        return self.attributes.get(name)

    def remove_attribute(self, name: str) -> None:
        """Delete attribute *name* if present (no error if absent)."""
        attr = self.attributes.pop(name, None)
        if attr is not None:
            attr.parent = None

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes

    # -- content helpers ---------------------------------------------------

    def text(self) -> str:
        """The concatenation of all descendant text, in document order.

        This matches the XPath 1.0 string-value of an element node and is
        what authorization conditions on element "text" compare against.
        """
        parts: list[str] = []
        stack: list[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                parts.append(node.data)
            elif isinstance(node, Element):
                stack.extend(reversed(node.children))
        return "".join(parts)

    def direct_text(self) -> str:
        """The concatenation of this element's *immediate* text children."""
        return "".join(
            child.data for child in self.children if isinstance(child, Text)
        )

    def find_children(self, name: str) -> Iterator["Element"]:
        """Yield direct child elements named *name*."""
        for child in self.child_elements():
            if child.name == name:
                yield child

    def detach(self) -> "Element":
        """Remove this element from its parent (no-op when detached)."""
        parent = self.parent
        if isinstance(parent, _ParentNode):
            parent.remove(self)
        self.parent = None
        return self

    def clone(self, deep: bool = True) -> "Element":
        copy = Element(self.name)
        for name, attr in self.attributes.items():
            copy.set_attribute(name, attr.value)
        if not deep:
            return copy
        # Iterative deep copy: handles arbitrarily deep documents
        # without exhausting the Python stack.
        stack: list[tuple[Element, Element]] = [(self, copy)]
        while stack:
            source, target = stack.pop()
            for child in source.children:
                if isinstance(child, Element):
                    child_copy = Element(child.name)
                    for name, attr in child.attributes.items():
                        child_copy.set_attribute(name, attr.value)
                    target.append(child_copy)
                    stack.append((child, child_copy))
                else:
                    target.append(child.clone(deep=True))
        return copy

    def __repr__(self) -> str:
        return f"<Element {self.name!r} attrs={len(self.attributes)} children={len(self.children)}>"


class Attribute(Node):
    """An attribute node: a named value hanging off an element.

    In the paper's tree model attributes are first-class nodes (drawn as
    squares in Figure 1) and can be authorization objects on their own.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str) -> None:
        if not is_name(name):
            raise ReproError(f"invalid attribute name: {name!r}")
        super().__init__()
        self.name = name
        self.value = value

    @property
    def element(self) -> Optional[Element]:
        """The owning element (alias of ``parent`` with a precise type)."""
        parent = self.parent
        return parent if isinstance(parent, Element) else None

    def detach(self) -> "Attribute":
        element = self.element
        if element is not None and element.attributes.get(self.name) is self:
            del element.attributes[self.name]
        self.parent = None
        return self

    def clone(self, deep: bool = True) -> "Attribute":
        return Attribute(self.name, self.value)

    def __repr__(self) -> str:
        return f"<Attribute {self.name}={self.value!r}>"


class _LeafNode(Node):
    """Shared behaviour of childless, parent-detachable nodes."""

    __slots__ = ()

    def detach(self) -> "Node":
        parent = self.parent
        if isinstance(parent, _ParentNode):
            parent.remove(self)
        self.parent = None
        return self


class Text(_LeafNode):
    """A run of character data."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def clone(self, deep: bool = True) -> "Text":
        return Text(self.data)

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<Text {preview!r}>"


class Comment(_LeafNode):
    """An XML comment (``<!-- ... -->``)."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def clone(self, deep: bool = True) -> "Comment":
        return Comment(self.data)

    def __repr__(self) -> str:
        return f"<Comment {self.data!r}>"


class ProcessingInstruction(_LeafNode):
    """A processing instruction (``<?target data?>``)."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        if not is_name(target):
            raise ReproError(f"invalid PI target: {target!r}")
        super().__init__()
        self.target = target
        self.data = data

    def clone(self, deep: bool = True) -> "ProcessingInstruction":
        return ProcessingInstruction(self.target, self.data)

    def __repr__(self) -> str:
        return f"<PI {self.target!r} {self.data!r}>"


def ensure_element(node: Node, context: str) -> Element:
    """Narrowing helper: assert *node* is an element or raise."""
    if not isinstance(node, Element):
        raise ReproError(f"{context}: expected an element, got {type(node).__name__}")
    return node


def iter_nodes(nodes: Iterable[Node]) -> Iterator[Node]:
    """Flatten an iterable of nodes, skipping ``None`` entries."""
    for node in nodes:
        if node is not None:
            yield node
