"""XML 1.0 character classification.

The XML recommendation restricts which characters may appear in documents
(``Char``), which may start a name (``NameStartChar``) and which may
continue one (``NameChar``). This module implements those productions as
predicates used by the parser, the serializer and the DTD engine.

The classes implemented here follow the (simpler) Fifth Edition rules,
which are a superset of the original 1998 productions and are what modern
processors implement.
"""

from __future__ import annotations

import re

__all__ = [
    "is_xml_char",
    "is_name_start_char",
    "is_name_char",
    "is_name",
    "is_nmtoken",
    "is_whitespace",
    "WHITESPACE",
    "NAME_RE",
    "INVALID_XML_CHAR_RE",
]

#: The four XML whitespace characters (production ``S``).
WHITESPACE = " \t\r\n"

# NameStartChar ranges from the XML 1.0 (5th ed.) recommendation.
_NAME_START_RANGES = (
    (0x3A, 0x3A),  # ':'
    (0x41, 0x5A),  # A-Z
    (0x5F, 0x5F),  # '_'
    (0x61, 0x7A),  # a-z
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

# Additional ranges allowed after the first character (production NameChar).
_NAME_EXTRA_RANGES = (
    (0x2D, 0x2E),  # '-' '.'
    (0x30, 0x39),  # 0-9
    (0xB7, 0xB7),  # middle dot
    (0x300, 0x36F),
    (0x203F, 0x2040),
)


def _in_ranges(code: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for low, high in ranges:
        if low <= code <= high:
            return True
    return False


def _char_class(ranges: tuple[tuple[int, int], ...]) -> str:
    """A regex character-class body covering exactly *ranges*."""
    parts = []
    for low, high in ranges:
        if low == high:
            parts.append(re.escape(chr(low)))
        else:
            parts.append(f"{re.escape(chr(low))}-{re.escape(chr(high))}")
    return "".join(parts)


_NAME_START_CLASS = _char_class(_NAME_START_RANGES)
_NAME_CLASS = _NAME_START_CLASS + _char_class(_NAME_EXTRA_RANGES)

#: Matches one complete XML ``Name`` at the given position — the bulk
#: equivalent of an :func:`is_name_start_char` check followed by an
#: :func:`is_name_char` scan, used by the hot tokenizer paths.
NAME_RE = re.compile(f"[{_NAME_START_CLASS}][{_NAME_CLASS}]*")

#: Finds the first character *not* allowed by production ``Char`` — the
#: bulk complement of :func:`is_xml_char`. ``search`` returning ``None``
#: means the whole string is clean (one C-level scan instead of one
#: Python call per character).
INVALID_XML_CHAR_RE = re.compile(
    "[^\t\n\r -퟿-�\U00010000-\U0010ffff]"
)


def is_xml_char(ch: str) -> bool:
    """Return ``True`` if *ch* may appear anywhere in an XML document.

    Implements production ``Char``: tab, LF, CR, and everything from
    U+0020 upward except the surrogate block and the two non-characters
    U+FFFE / U+FFFF.
    """
    code = ord(ch)
    if code in (0x9, 0xA, 0xD):
        return True
    if 0x20 <= code <= 0xD7FF:
        return True
    if 0xE000 <= code <= 0xFFFD:
        return True
    return 0x10000 <= code <= 0x10FFFF


def is_name_start_char(ch: str) -> bool:
    """Return ``True`` if *ch* may start an XML name."""
    return _in_ranges(ord(ch), _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """Return ``True`` if *ch* may appear inside an XML name."""
    code = ord(ch)
    return _in_ranges(code, _NAME_START_RANGES) or _in_ranges(
        code, _NAME_EXTRA_RANGES
    )


def is_name(text: str) -> bool:
    """Return ``True`` if *text* is a valid XML ``Name``."""
    if not text:
        return False
    if not is_name_start_char(text[0]):
        return False
    return all(is_name_char(ch) for ch in text[1:])


def is_nmtoken(text: str) -> bool:
    """Return ``True`` if *text* is a valid XML ``Nmtoken``.

    Unlike a ``Name``, a name token may start with any name character
    (digits, dots, hyphens included).
    """
    if not text:
        return False
    return all(is_name_char(ch) for ch in text)


def is_whitespace(text: str) -> bool:
    """Return ``True`` if *text* is non-empty and all XML whitespace."""
    if not text:
        return False
    return all(ch in WHITESPACE for ch in text)
