"""Structural diffing of document trees.

:func:`tree_diff` walks two trees in parallel and reports every
difference as a human-readable line anchored at a node path. Used by
tests to produce actionable failures and by users to compare two
requesters' views ("what exactly does Alice see that Bob doesn't?").
"""

from __future__ import annotations

from typing import Optional

from repro.xml.nodes import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xml.traversal import node_path

__all__ = ["tree_diff", "trees_equal"]


def tree_diff(
    left: Optional[Node],
    right: Optional[Node],
    max_differences: int = 50,
) -> list[str]:
    """Differences between two trees, as ``path: description`` lines.

    Whitespace-only text nodes are ignored (views and pretty-printed
    documents differ in insignificant whitespace); attribute *order* is
    ignored (XML gives it no meaning); everything else — names, values,
    text, child order — is compared.
    """
    differences: list[str] = []
    _diff(left, right, differences, max_differences)
    return differences


def trees_equal(left: Optional[Node], right: Optional[Node]) -> bool:
    """Whether the two trees are structurally identical (see tree_diff)."""
    return not tree_diff(left, right, max_differences=1)


def _significant_children(node: Node) -> list[Node]:
    if not isinstance(node, (Element, Document)):
        return []
    return [
        child
        for child in node.children
        if not (isinstance(child, Text) and not child.data.strip())
    ]


def _describe(node: Optional[Node]) -> str:
    if node is None:
        return "(absent)"
    if isinstance(node, Element):
        return f"<{node.name}>"
    if isinstance(node, Text):
        preview = node.data if len(node.data) <= 30 else node.data[:27] + "..."
        return f"text {preview!r}"
    if isinstance(node, Comment):
        return f"comment {node.data!r}"
    if isinstance(node, ProcessingInstruction):
        return f"PI <?{node.target}?>"
    if isinstance(node, Document):
        return "(document)"
    return type(node).__name__


def _diff(
    left: Optional[Node],
    right: Optional[Node],
    out: list[str],
    limit: int,
) -> None:
    if len(out) >= limit:
        return
    if left is None and right is None:
        return
    if left is None or right is None:
        anchor = left if left is not None else right
        out.append(
            f"{node_path(anchor)}: only in "
            f"{'left' if left is not None else 'right'}: {_describe(anchor)}"
        )
        return
    if type(left) is not type(right):
        out.append(
            f"{node_path(left)}: node kinds differ: "
            f"{_describe(left)} vs {_describe(right)}"
        )
        return
    if isinstance(left, Element):
        assert isinstance(right, Element)
        if left.name != right.name:
            out.append(
                f"{node_path(left)}: element names differ: "
                f"<{left.name}> vs <{right.name}>"
            )
            return
        _diff_attributes(left, right, out, limit)
        left_children = _significant_children(left)
        right_children = _significant_children(right)
        for l_child, r_child in zip(left_children, right_children):
            _diff(l_child, r_child, out, limit)
            if len(out) >= limit:
                return
        for extra in left_children[len(right_children):]:
            out.append(f"{node_path(extra)}: only in left: {_describe(extra)}")
            if len(out) >= limit:
                return
        for extra in right_children[len(left_children):]:
            out.append(f"{node_path(extra)}: only in right: {_describe(extra)}")
            if len(out) >= limit:
                return
    elif isinstance(left, Text):
        assert isinstance(right, Text)
        if left.data.strip() != right.data.strip():
            out.append(
                f"{node_path(left)}: text differs: "
                f"{left.data!r} vs {right.data!r}"
            )
    elif isinstance(left, Comment):
        assert isinstance(right, Comment)
        if left.data != right.data:
            out.append(f"{node_path(left)}: comment differs")
    elif isinstance(left, ProcessingInstruction):
        assert isinstance(right, ProcessingInstruction)
        if (left.target, left.data) != (right.target, right.data):
            out.append(f"{node_path(left)}: processing instruction differs")
    elif isinstance(left, Document):
        assert isinstance(right, Document)
        _diff(left.root, right.root, out, limit)


def _diff_attributes(left: Element, right: Element, out: list[str], limit: int) -> None:
    left_attrs = {name: attr.value for name, attr in left.attributes.items()}
    right_attrs = {name: attr.value for name, attr in right.attributes.items()}
    for name in sorted(set(left_attrs) | set(right_attrs)):
        if len(out) >= limit:
            return
        if name not in left_attrs:
            out.append(
                f"{node_path(left)}/@{name}: only in right "
                f"(= {right_attrs[name]!r})"
            )
        elif name not in right_attrs:
            out.append(
                f"{node_path(left)}/@{name}: only in left "
                f"(= {left_attrs[name]!r})"
            )
        elif left_attrs[name] != right_attrs[name]:
            out.append(
                f"{node_path(left)}/@{name}: values differ: "
                f"{left_attrs[name]!r} vs {right_attrs[name]!r}"
            )
