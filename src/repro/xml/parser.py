"""A well-formedness XML 1.0 parser producing :mod:`repro.xml.nodes` trees.

This is the "parsing step" of the paper's security processor (Section 7,
step 1): syntax-check the requested document and compile it into an
object tree. The parser handles:

- the XML declaration and prolog,
- ``<!DOCTYPE name SYSTEM "...">`` with an optional internal subset,
  which is handed to :mod:`repro.dtd.parser` (general entities declared
  there become available to the document),
- elements, attributes (with value normalization), character data,
- CDATA sections, comments, processing instructions,
- character references and entity references,
- end-of-line normalization (CR and CRLF become LF, per the spec).

It enforces well-formedness: matching tags, a single root element, no
duplicate attributes, legal characters, ``]]>`` not appearing in
character data, and so on. Validity (conformance to a DTD) is a separate
concern handled by :mod:`repro.dtd.validator`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import LimitExceeded, XMLLimitExceeded, XMLSyntaxError
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.xml.chars import WHITESPACE, is_name_char, is_name_start_char, is_xml_char
from repro.xml.escape import resolve_references
from repro.xml.nodes import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)

__all__ = [
    "parse_document",
    "parse_document_chunks",
    "parse_fragment",
    "XMLParser",
]


def parse_document(
    text: str,
    uri: Optional[str] = None,
    keep_comments: bool = True,
    keep_ignorable_whitespace: bool = True,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """Parse *text* into a :class:`Document`.

    Parameters
    ----------
    text:
        The complete XML document as a string.
    uri:
        Recorded on the resulting document (used later to select the
        applicable XACLs).
    keep_comments:
        When false, comments are dropped from the tree.
    keep_ignorable_whitespace:
        When false, text nodes that are pure whitespace are dropped;
        convenient for structural comparisons in tests.
    limits:
        Optional :class:`~repro.limits.ResourceLimits` enforced during
        parsing (input size, tree depth, node count, entity expansion).
        ``None`` keeps only the library's built-in entity-bomb caps.
    deadline:
        Optional shared wall-clock :class:`~repro.limits.Deadline`,
        checked periodically while building the tree.

    Raises
    ------
    XMLSyntaxError
        If *text* is not a well-formed XML document.
    XMLLimitExceeded, DeadlineExceeded
        If a resource guard from *limits*/*deadline* trips.
    """
    parser = XMLParser(
        text,
        keep_comments=keep_comments,
        keep_ignorable_whitespace=keep_ignorable_whitespace,
        limits=limits,
        deadline=deadline,
    )
    with span("parse.xml"):
        document = parser.parse()
    document.uri = uri
    return document


def parse_document_chunks(
    chunks: Iterable[str],
    uri: Optional[str] = None,
    keep_comments: bool = True,
    keep_ignorable_whitespace: bool = True,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """Parse a document arriving as text *chunks* into a :class:`Document`.

    Equivalent to ``parse_document("".join(chunks), ...)`` but built on
    the incremental tokenizer, so chunk boundaries may fall anywhere —
    inside a tag, in the middle of an entity or character reference, or
    between ``\\r`` and ``\\n`` — without changing the result, and the
    input is never concatenated into one string. Produces the same
    trees, raises the same errors, and honors the same *limits* and
    *deadline* as :func:`parse_document`; additionally,
    ``max_stream_buffer_bytes`` bounds how much unfinished markup the
    tokenizer may hold back between chunks.
    """
    # Imported lazily: repro.stream builds on repro.xml, so a top-level
    # import here would be circular.
    from repro.stream.builder import DocumentBuilder
    from repro.stream.reader import StreamReader

    reader = StreamReader(limits=limits, deadline=deadline)
    builder = DocumentBuilder(
        keep_comments=keep_comments,
        keep_ignorable_whitespace=keep_ignorable_whitespace,
        limits=limits,
        deadline=deadline,
    )
    with span("parse.xml.chunks"):
        for chunk in chunks:
            builder.feed(reader.feed(chunk))
        builder.feed(reader.close())
    document = builder.finish()
    document.uri = uri
    return document


def parse_fragment(text: str) -> Element:
    """Parse a single-element fragment and return its root element.

    A convenience for tests and examples; equivalent to wrapping the
    fragment as a document and taking the root.
    """
    document = parse_document(text)
    root = document.root
    if root is None:
        raise XMLSyntaxError("fragment has no root element")
    return root


class XMLParser:
    """Single-use recursive-descent parser over an input string."""

    #: How many node creations between two deadline checks.
    _DEADLINE_STRIDE = 1024

    def __init__(
        self,
        text: str,
        keep_comments: bool = True,
        keep_ignorable_whitespace: bool = True,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        # Normalize line endings once, up front (XML 1.0 section 2.11).
        # The input budget charges *normalized* characters — as the
        # streaming reader does — so the same document costs the same
        # through either backend regardless of its line endings.
        if "\r" in text:
            text = text.replace("\r\n", "\n").replace("\r", "\n")
        if limits is not None and limits.max_input_bytes is not None:
            if len(text) > limits.max_input_bytes:
                raise XMLLimitExceeded(
                    f"document is {len(text)} characters, over the "
                    f"{limits.max_input_bytes}-character input limit",
                    limit="max_input_bytes",
                    value=len(text),
                    maximum=limits.max_input_bytes,
                )
        self._text = text
        self._pos = 0
        self._len = len(text)
        self._keep_comments = keep_comments
        self._keep_ws = keep_ignorable_whitespace
        self._entities: dict[str, str] = {}
        self._limits = limits
        self._deadline = deadline if deadline is not None and not deadline.unbounded else None
        self._nodes = 0
        self._max_chars = limits.max_entity_expansion_chars if limits else None
        self._max_depth = limits.max_entity_expansion_depth if limits else None

    def _count_node(self) -> None:
        """Charge one created node against the node and deadline guards."""
        self._nodes += 1
        limits = self._limits
        if (
            limits is not None
            and limits.max_node_count is not None
            and self._nodes > limits.max_node_count
        ):
            self._fail_limit(
                f"document exceeds the {limits.max_node_count}-node limit",
                limit="max_node_count",
                value=self._nodes,
                maximum=limits.max_node_count,
            )
        if self._deadline is not None and self._nodes % self._DEADLINE_STRIDE == 0:
            self._deadline.check("XML parse")

    def _fail_limit(
        self,
        message: str,
        limit: str,
        value: int,
        maximum: int,
    ) -> None:
        line, column = self._position()
        raise XMLLimitExceeded(
            message, line, column, limit=limit, value=value, maximum=maximum
        )

    # -- public entry ------------------------------------------------------

    def parse(self) -> Document:
        document = Document()
        self._parse_prolog(document)
        if self._pos >= self._len or self._peek() != "<":
            self._fail("expected root element")
        root = self._parse_element()
        document.append(root)
        self._parse_misc_trailer(document)
        if self._pos < self._len:
            self._fail("unexpected content after root element")
        return document

    # -- low-level scanning -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < self._len else ""

    def _advance(self, count: int = 1) -> None:
        self._pos += count

    def _starts_with(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _expect(self, token: str) -> None:
        if not self._starts_with(token):
            self._fail(f"expected {token!r}")
        self._pos += len(token)

    def _skip_whitespace(self, required: bool = False) -> None:
        start = self._pos
        while self._pos < self._len and self._text[self._pos] in WHITESPACE:
            self._pos += 1
        if required and self._pos == start:
            self._fail("expected whitespace")

    def _position(self, pos: Optional[int] = None) -> tuple[int, int]:
        index = self._pos if pos is None else pos
        line = self._text.count("\n", 0, index) + 1
        last_newline = self._text.rfind("\n", 0, index)
        column = index - last_newline
        return line, column

    def _fail(self, message: str, pos: Optional[int] = None) -> None:
        line, column = self._position(pos)
        raise XMLSyntaxError(message, line, column)

    def _read_name(self) -> str:
        start = self._pos
        if self._pos >= self._len or not is_name_start_char(self._text[self._pos]):
            self._fail("expected a name")
        self._pos += 1
        while self._pos < self._len and is_name_char(self._text[self._pos]):
            self._pos += 1
        return self._text[start : self._pos]

    # -- prolog ---------------------------------------------------------------

    def _parse_prolog(self, document: Document) -> None:
        if self._starts_with("<?xml") and self._peek(5) in WHITESPACE:
            self._parse_xml_declaration(document)
        while True:
            self._skip_whitespace()
            if self._starts_with("<!--"):
                comment = self._parse_comment()
                if self._keep_comments:
                    document.append(comment)
            elif self._starts_with("<!DOCTYPE"):
                if document.doctype_name is not None:
                    self._fail("multiple DOCTYPE declarations")
                self._parse_doctype(document)
            elif self._starts_with("<?"):
                document.append(self._parse_pi())
            else:
                return

    def _parse_xml_declaration(self, document: Document) -> None:
        self._expect("<?xml")
        attrs = self._parse_pseudo_attributes(terminator="?>")
        version = attrs.get("version")
        if version is None:
            self._fail("XML declaration must specify a version")
        document.xml_version = version
        document.encoding = attrs.get("encoding")
        standalone = attrs.get("standalone")
        if standalone is not None:
            if standalone not in ("yes", "no"):
                self._fail("standalone must be 'yes' or 'no'")
            document.standalone = standalone == "yes"
        self._expect("?>")

    def _parse_pseudo_attributes(self, terminator: str) -> dict[str, str]:
        attrs: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._starts_with(terminator):
                return attrs
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            attrs[name] = self._read_quoted_literal()

    def _read_quoted_literal(self) -> str:
        quote = self._peek()
        if quote not in "'\"":
            self._fail("expected a quoted literal")
        self._advance()
        end = self._text.find(quote, self._pos)
        if end == -1:
            self._fail("unterminated literal")
        value = self._text[self._pos : end]
        self._pos = end + 1
        return value

    def _parse_doctype(self, document: Document) -> None:
        self._expect("<!DOCTYPE")
        self._skip_whitespace(required=True)
        document.doctype_name = self._read_name()
        self._skip_whitespace()
        if self._starts_with("SYSTEM"):
            self._advance(6)
            self._skip_whitespace(required=True)
            document.system_id = self._read_quoted_literal()
            self._skip_whitespace()
        elif self._starts_with("PUBLIC"):
            self._advance(6)
            self._skip_whitespace(required=True)
            self._read_quoted_literal()  # public id (kept out of the model)
            self._skip_whitespace(required=True)
            document.system_id = self._read_quoted_literal()
            self._skip_whitespace()
        if self._peek() == "[":
            self._advance()
            subset_start = self._pos
            depth = 1
            while self._pos < self._len:
                ch = self._text[self._pos]
                if ch == "]":
                    depth -= 1
                    if depth == 0:
                        break
                elif ch == "[":
                    depth += 1
                elif ch in "'\"":
                    closing = self._text.find(ch, self._pos + 1)
                    if closing == -1:
                        self._fail("unterminated literal in internal subset")
                    self._pos = closing
                self._pos += 1
            if self._pos >= self._len:
                self._fail("unterminated internal DTD subset")
            subset = self._text[subset_start : self._pos]
            self._advance()  # the closing ']'
            self._attach_internal_subset(document, subset, subset_start)
            self._skip_whitespace()
        self._expect(">")

    def _attach_internal_subset(
        self, document: Document, subset: str, subset_start: int
    ) -> None:
        # Imported lazily: repro.dtd depends on repro.xml.nodes, so a
        # top-level import here would be circular.
        from repro.dtd.parser import parse_dtd

        try:
            dtd = parse_dtd(subset, limits=self._limits)
        except LimitExceeded as exc:  # keep the typed guard trip
            line, column = self._position(subset_start)
            raise XMLLimitExceeded(
                f"error in internal DTD subset: {exc}",
                line,
                column,
                limit=exc.limit,
                value=exc.value,
                maximum=exc.maximum,
            ) from exc
        except Exception as exc:  # re-anchor DTD errors in this document
            line, column = self._position(subset_start)
            raise XMLSyntaxError(
                f"error in internal DTD subset: {exc}", line, column
            ) from exc
        document.dtd = dtd
        self._entities.update(dtd.general_entities)

    def _parse_misc_trailer(self, document: Document) -> None:
        while True:
            self._skip_whitespace()
            if self._starts_with("<!--"):
                comment = self._parse_comment()
                if self._keep_comments:
                    document.append(comment)
            elif self._starts_with("<?"):
                document.append(self._parse_pi())
            else:
                return

    # -- elements -----------------------------------------------------------

    def _parse_element(self) -> Element:
        """Parse one element (and its whole subtree), iteratively.

        An explicit open-element stack instead of recursion keeps
        arbitrarily deep documents (a classic parser DoS vector) within
        constant Python stack usage.
        """
        element, closed = self._parse_start_tag()
        if closed:
            return element
        stack: list[Element] = [element]
        max_depth = self._limits.max_tree_depth if self._limits else None
        while stack:
            if max_depth is not None and len(stack) > max_depth:
                self._fail_limit(
                    f"element nesting exceeds the {max_depth}-level depth limit",
                    limit="max_tree_depth",
                    value=len(stack),
                    maximum=max_depth,
                )
            current = stack[-1]
            closed_name = self._parse_content_until_tag(current)
            if closed_name is not None:
                if closed_name != current.name:
                    self._fail(
                        f"mismatched end tag: expected </{current.name}>, "
                        f"found </{closed_name}>"
                    )
                stack.pop()
                continue
            child, child_closed = self._parse_start_tag()
            current.append(child)
            if not child_closed:
                stack.append(child)
        return element

    def _parse_start_tag(self) -> tuple[Element, bool]:
        """Parse ``<name attrs...>`` or ``<name attrs.../>``.

        Returns (element, already-closed) — closed for the empty-tag
        form.
        """
        start_pos = self._pos
        self._expect("<")
        name = self._read_name()
        self._count_node()
        try:
            element = Element(name)
        except Exception:
            self._fail(f"invalid element name {name!r}", start_pos)
        self._parse_attributes(element)
        if self._starts_with("/>"):
            self._advance(2)
            return element, True
        self._expect(">")
        return element, False

    def _parse_content_until_tag(self, element: Element) -> Optional[str]:
        """Consume content of *element* until a start tag or its end tag.

        Returns the end-tag name when ``</name>`` was consumed, or
        ``None`` when stopping just before a child start tag (not
        consumed).
        """
        while True:
            if self._pos >= self._len:
                self._fail(f"unterminated element <{element.name}>")
            next_tag = self._text.find("<", self._pos)
            if next_tag == -1:
                self._fail(f"unterminated element <{element.name}>")
            if next_tag > self._pos:
                self._add_text(element, self._text[self._pos : next_tag], self._pos)
                self._pos = next_tag
            if self._starts_with("</"):
                self._advance(2)
                closing = self._read_name()
                self._skip_whitespace()
                self._expect(">")
                return closing
            if self._starts_with("<!--"):
                comment = self._parse_comment()
                if self._keep_comments:
                    element.append(comment)
            elif self._starts_with("<![CDATA["):
                self._parse_cdata(element)
            elif self._starts_with("<?"):
                element.append(self._parse_pi())
            elif self._starts_with("<!"):
                self._fail("declarations are not allowed in content")
            else:
                return None

    def _parse_attributes(self, element: Element) -> None:
        while True:
            before = self._pos
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "") or self._starts_with("/>"):
                return
            if before == self._pos:
                self._fail("expected whitespace before attribute")
            attr_pos = self._pos
            name = self._read_name()
            if element.has_attribute(name):
                self._fail(f"duplicate attribute {name!r}", attr_pos)
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            value = self._read_attribute_value(attr_pos)
            element.set_attribute(name, value)

    def _read_attribute_value(self, attr_pos: int) -> str:
        quote = self._peek()
        if quote not in "'\"":
            self._fail("attribute value must be quoted")
        self._advance()
        end = self._text.find(quote, self._pos)
        if end == -1:
            self._fail("unterminated attribute value", attr_pos)
        raw = self._text[self._pos : end]
        if "<" in raw:
            self._fail("'<' not allowed in attribute value", attr_pos)
        self._pos = end + 1
        line, column = self._position(attr_pos)
        # Attribute-value normalization: *literal* whitespace becomes a
        # plain space; whitespace produced by character references (e.g.
        # '&#10;') survives, so normalize before resolving.
        raw = raw.replace("\t", " ").replace("\n", " ")
        return resolve_references(
            raw, self._entities, line, column, self._max_chars, self._max_depth
        )

    def _add_text(self, element: Element, raw: str, raw_pos: int) -> None:
        if "]]>" in raw:
            self._fail("']]>' not allowed in character data", raw_pos)
        for ch in raw:
            if not is_xml_char(ch):
                self._fail(
                    f"invalid character U+{ord(ch):04X} in character data", raw_pos
                )
        line, column = self._position(raw_pos)
        data = resolve_references(
            raw, self._entities, line, column, self._max_chars, self._max_depth
        )
        if not self._keep_ws and (not data or data.strip() == ""):
            return
        # Merge adjacent text nodes (references may split runs).
        last = element.children[-1] if element.children else None
        if isinstance(last, Text):
            last.data += data
        else:
            self._count_node()
            element.append(Text(data))

    # -- comments / CDATA / PIs ------------------------------------------------

    def _parse_comment(self) -> Comment:
        start = self._pos
        self._expect("<!--")
        end = self._text.find("--", self._pos)
        if end == -1:
            self._fail("unterminated comment", start)
        data = self._text[self._pos : end]
        self._pos = end
        self._expect("-->")
        return Comment(data)

    def _parse_cdata(self, element: Element) -> None:
        start = self._pos
        self._expect("<![CDATA[")
        end = self._text.find("]]>", self._pos)
        if end == -1:
            self._fail("unterminated CDATA section", start)
        data = self._text[self._pos : end]
        self._pos = end + 3
        last = element.children[-1] if element.children else None
        if isinstance(last, Text):
            last.data += data
        else:
            element.append(Text(data))

    def _parse_pi(self) -> ProcessingInstruction:
        start = self._pos
        self._expect("<?")
        target = self._read_name()
        if target.lower() == "xml":
            self._fail("processing instruction target may not be 'xml'", start)
        data = ""
        if self._peek() in WHITESPACE:
            self._skip_whitespace()
            end = self._text.find("?>", self._pos)
            if end == -1:
                self._fail("unterminated processing instruction", start)
            data = self._text[self._pos : end]
            self._pos = end
        self._expect("?>")
        return ProcessingInstruction(target, data)
