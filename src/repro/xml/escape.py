"""Escaping and unescaping of XML character data and attribute values.

The serializer uses :func:`escape_text` and :func:`escape_attribute` to
produce well-formed output for arbitrary string content; the parser uses
:func:`resolve_references` to expand character references and the five
predefined entities (plus caller-supplied general entities).
"""

from __future__ import annotations

from repro.errors import XMLLimitExceeded, XMLSyntaxError
from repro.xml.chars import is_name, is_xml_char

__all__ = [
    "PREDEFINED_ENTITIES",
    "escape_text",
    "escape_attribute",
    "incomplete_reference_suffix",
    "resolve_references",
]

#: The five entities every XML processor must know.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ATTR_REPLACEMENTS = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "\n": "&#10;",
    "\t": "&#9;",
    "\r": "&#13;",
}


def escape_text(text: str) -> str:
    """Escape *text* for use as element character data.

    ``&``, ``<`` and ``>`` are replaced by entity references (``>`` is
    only mandatory in the ``]]>`` sequence but escaping it always is
    harmless and simpler).
    """
    # Chained str.replace runs at C speed; '&' must go first so the
    # entities it introduces are not re-escaped.
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    return text


def escape_attribute(value: str) -> str:
    """Escape *value* for use inside a double-quoted attribute value.

    Beyond markup characters, literal whitespace other than a space is
    escaped as a character reference so it survives attribute-value
    normalization on re-parse.
    """
    if not any(ch in value for ch in '&<>"\n\t\r'):
        return value
    return "".join(_ATTR_REPLACEMENTS.get(ch, ch) for ch in value)


def incomplete_reference_suffix(text: str) -> int:
    """Length of a trailing, possibly-unterminated reference in *text*.

    Incremental consumers (chunked parsers, the streaming reader) must
    not hand ``resolve_references`` a buffer that ends in the middle of
    an ``&name;`` / ``&#NN;`` token: the missing ``;`` may arrive in the
    next chunk. This returns how many characters at the end of *text*
    belong to an ``&`` reference that has not yet seen its ``;`` —
    ``0`` when *text* is safe to resolve as-is. The held-back suffix is
    at most one reference long, so callers' carry buffers stay bounded
    by the longest legal reference plus one chunk.
    """
    amp = text.rfind("&")
    if amp == -1 or ";" in text[amp:]:
        return 0
    return len(text) - amp


#: Default cap on the total characters one reference-resolution call may
#: produce, defeating exponential ("billion laughs") entity bombs.
MAX_EXPANSION_CHARS = 10_000_000
#: Default cap on nested entity expansion depth, defeating reference cycles.
MAX_EXPANSION_DEPTH = 64


class _ExpansionBudget:
    """Shared accounting across one resolve_references call tree."""

    __slots__ = ("chars", "max_chars")

    def __init__(self, max_chars: int) -> None:
        self.chars = 0
        self.max_chars = max_chars

    def charge(self, amount: int, line: int, column: int) -> None:
        self.chars += amount
        if self.chars > self.max_chars:
            raise XMLLimitExceeded(
                "entity expansion exceeds the "
                f"{self.max_chars}-character limit (entity bomb?)",
                line,
                column,
                limit="max_entity_expansion_chars",
                value=self.chars,
                maximum=self.max_chars,
            )


def resolve_references(
    text: str,
    entities: dict[str, str] | None = None,
    line: int = 0,
    column: int = 0,
    max_chars: int | None = None,
    max_depth: int | None = None,
) -> str:
    """Expand character and entity references in *text*.

    Parameters
    ----------
    text:
        Raw character data possibly containing ``&name;``, ``&#NN;`` or
        ``&#xHH;`` references.
    entities:
        Extra general entities (name -> replacement text) declared by the
        document's DTD. Predefined entities are always available and
        cannot be overridden.
    line, column:
        Position of *text* in the source, used for error messages only.
    max_chars, max_depth:
        Expansion budget overrides; default to the module-level
        :data:`MAX_EXPANSION_CHARS` / :data:`MAX_EXPANSION_DEPTH`.

    Raises
    ------
    XMLSyntaxError
        On an unterminated reference, an unknown entity name, or a
        character reference denoting a character outside the XML range.
    XMLLimitExceeded
        On an entity-reference cycle or an expansion exceeding the
        character budget (the classic entity-bomb DoS). Also an
        :class:`XMLSyntaxError`, so a single handler covers both.
    """
    if "&" not in text:
        return text
    budget = _ExpansionBudget(
        MAX_EXPANSION_CHARS if max_chars is None else max_chars
    )
    limit_depth = MAX_EXPANSION_DEPTH if max_depth is None else max_depth
    return _resolve(text, entities, line, column, budget, 0, limit_depth)


def _resolve(
    text: str,
    entities: dict[str, str] | None,
    line: int,
    column: int,
    budget: _ExpansionBudget,
    depth: int,
    max_depth: int,
) -> str:
    if depth > max_depth:
        raise XMLLimitExceeded(
            "entity references nest too deeply (reference cycle?)",
            line,
            column,
            limit="max_entity_expansion_depth",
            value=depth,
            maximum=max_depth,
        )
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        # Bulk-copy the literal run up to the next reference; only the
        # '&...;' tokens themselves need per-token handling.
        amp = text.find("&", i)
        if amp == -1:
            out.append(text[i:])
            budget.charge(n - i, line, column)
            break
        if amp > i:
            out.append(text[i:amp])
            budget.charge(amp - i, line, column)
        end = text.find(";", amp + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", line, column)
        body = text[amp + 1 : end]
        expansion = _expand_one(body, entities, line, column, budget, depth, max_depth)
        out.append(expansion)
        i = end + 1
    return "".join(out)


def _expand_one(
    body: str,
    entities: dict[str, str] | None,
    line: int,
    column: int,
    budget: _ExpansionBudget,
    depth: int,
    max_depth: int,
) -> str:
    if body.startswith("#x") or body.startswith("#X"):
        try:
            code = int(body[2:], 16)
        except ValueError:
            raise XMLSyntaxError(
                f"bad hexadecimal character reference '&{body};'", line, column
            ) from None
        budget.charge(1, line, column)
        return _char_from_code(code, body, line, column)
    if body.startswith("#"):
        try:
            code = int(body[1:], 10)
        except ValueError:
            raise XMLSyntaxError(
                f"bad decimal character reference '&{body};'", line, column
            ) from None
        budget.charge(1, line, column)
        return _char_from_code(code, body, line, column)
    if body in PREDEFINED_ENTITIES:
        budget.charge(1, line, column)
        return PREDEFINED_ENTITIES[body]
    if entities and body in entities:
        # General entities may themselves contain references; expand
        # recursively under the shared depth/size budget.
        return _resolve(
            entities[body], entities, line, column, budget, depth + 1, max_depth
        )
    if not is_name(body):
        raise XMLSyntaxError(f"malformed entity reference '&{body};'", line, column)
    raise XMLSyntaxError(f"unknown entity '&{body};'", line, column)


def _char_from_code(code: int, body: str, line: int, column: int) -> str:
    try:
        ch = chr(code)
    except (ValueError, OverflowError):
        raise XMLSyntaxError(
            f"character reference '&{body};' out of range", line, column
        ) from None
    if not is_xml_char(ch):
        raise XMLSyntaxError(
            f"character reference '&{body};' is not a valid XML character",
            line,
            column,
        )
    return ch
