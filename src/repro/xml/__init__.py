"""XML substrate: node model, parser, serializer, builder, traversal.

This package is the from-scratch replacement for the DOM library the
paper assumes (Section 7). Public surface::

    from repro.xml import (
        parse_document, serialize, pretty, E, new_document,
        Document, Element, Attribute, Text, Comment, ProcessingInstruction,
    )
"""

from repro.xml.builder import E, comment, new_document, pi, text
from repro.xml.diff import tree_diff, trees_equal
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serializer import pretty, serialize
from repro.xml.traversal import (
    count_nodes,
    depth,
    descendants,
    document_order,
    iter_attributes,
    iter_elements,
    node_path,
    postorder,
    preorder,
)

__all__ = [
    "Attribute",
    "Comment",
    "Document",
    "E",
    "Element",
    "Node",
    "ProcessingInstruction",
    "Text",
    "comment",
    "count_nodes",
    "depth",
    "descendants",
    "document_order",
    "iter_attributes",
    "iter_elements",
    "new_document",
    "node_path",
    "parse_document",
    "parse_fragment",
    "pi",
    "postorder",
    "preorder",
    "pretty",
    "serialize",
    "text",
    "tree_diff",
    "trees_equal",
]
