"""Tree traversal utilities.

The compute-view algorithm is a preorder labeling pass followed by a
postorder pruning pass (paper, Sections 6.1-6.2); the XPath evaluator
needs document-order enumeration. All of those walks live here so every
subsystem agrees on what "document order" means: an element precedes its
attributes, attributes precede the element's children, and attributes of
one element are ordered by declaration order (a deterministic refinement
of XML's "attribute order is implementation-defined").
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.xml.nodes import (
    Attribute,
    Document,
    Element,
    Node,
    Text,
    _ParentNode,
)

__all__ = [
    "preorder",
    "postorder",
    "document_order",
    "descendants",
    "iter_elements",
    "iter_attributes",
    "count_nodes",
    "node_path",
    "depth",
]


def preorder(node: Node, include_attributes: bool = True) -> Iterator[Node]:
    """Yield *node* and its descendants in preorder.

    Attributes of an element are yielded right after the element itself,
    before its children, when *include_attributes* is true.
    """
    stack: list[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Element):
            stack.extend(reversed(current.children))
            if include_attributes:
                # Pushed last (reversed) so attributes pop first, in
                # declaration order, before the element's children.
                stack.extend(reversed(list(current.attributes.values())))
        elif isinstance(current, _ParentNode):
            stack.extend(reversed(current.children))


def postorder(node: Node, include_attributes: bool = True) -> Iterator[Node]:
    """Yield *node* and its descendants in postorder (children first)."""
    # Iterative two-stack postorder keeps recursion limits out of the way
    # for very deep synthetic documents used in benchmarks.
    stack: list[tuple[Node, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            yield current
            continue
        stack.append((current, True))
        if isinstance(current, Element):
            for child in reversed(current.children):
                stack.append((child, False))
            if include_attributes:
                for attr in reversed(list(current.attributes.values())):
                    stack.append((attr, False))
        elif isinstance(current, _ParentNode):
            for child in reversed(current.children):
                stack.append((child, False))


def document_order(root: Node) -> dict[Node, int]:
    """Return a mapping node -> position in document order under *root*.

    Used by the XPath evaluator to sort node-sets; computed per query so
    tree mutations never leave a stale cache behind.
    """
    return {node: i for i, node in enumerate(preorder(root))}


def descendants(node: Node, include_self: bool = False) -> Iterator[Node]:
    """Yield the descendants of *node* (elements/text/comments/PIs only,
    no attributes), optionally starting with *node* itself."""
    walker = preorder(node, include_attributes=False)
    first = next(walker)
    if include_self:
        yield first
    yield from walker


def iter_elements(node: Node) -> Iterator[Element]:
    """Yield every element at or under *node*, in document order."""
    for current in preorder(node, include_attributes=False):
        if isinstance(current, Element):
            yield current


def iter_attributes(node: Node) -> Iterator[Attribute]:
    """Yield every attribute at or under *node*, in document order."""
    for element in iter_elements(node):
        yield from element.attributes.values()


def count_nodes(node: Node, include_attributes: bool = True) -> int:
    """Number of nodes in the subtree rooted at *node*."""
    return sum(1 for _ in preorder(node, include_attributes=include_attributes))


def depth(node: Node) -> int:
    """Number of ancestors between *node* and the document node."""
    return sum(1 for _ in node.ancestors())


def node_path(node: Node) -> str:
    """A human-readable absolute path for *node* (for messages/tests).

    Elements are identified by name and 1-based sibling position among
    same-named siblings (``/laboratory/project[2]``); attributes append
    ``/@name``; text nodes append ``/text()``.
    """
    parts: list[str] = []
    current: Optional[Node] = node
    while current is not None and not isinstance(current, Document):
        parent = current.parent
        if isinstance(current, Element):
            label = current.name
            if isinstance(parent, _ParentNode):
                same = [
                    child
                    for child in parent.children
                    if isinstance(child, Element) and child.name == current.name
                ]
                if len(same) > 1:
                    index = next(
                        i for i, child in enumerate(same, 1) if child is current
                    )
                    label = f"{current.name}[{index}]"
            parts.append(label)
        elif isinstance(current, Attribute):
            parts.append(f"@{current.name}")
        elif isinstance(current, Text):
            parts.append("text()")
        else:
            parts.append(type(current).__name__.lower())
        current = parent
    return "/" + "/".join(reversed(parts))


def walk_filter(
    node: Node, predicate: Callable[[Node], bool]
) -> Iterator[Node]:
    """Yield the nodes under *node* (preorder) satisfying *predicate*."""
    for current in preorder(node):
        if predicate(current):
            yield current
